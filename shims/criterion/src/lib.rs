//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `iter` /
//! `iter_batched`).  Instead of criterion's statistics machinery it runs
//! each benchmark `sample_size` times and prints the median and minimum
//! wall-clock time — enough to eyeball regressions locally; the paper-scale
//! numbers come from the dedicated `fig*`/`table*` binaries, not from these
//! benches.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim samples a fixed count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        times: Vec::with_capacity(samples),
        samples,
    };
    f(&mut bencher);
    let mut times = bencher.times;
    if times.is_empty() {
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {label:<50} median {median:>12.3?}  min {min:>12.3?}");
}

/// Identifies one benchmark within a group (`function_name/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// How `iter_batched` amortizes setup; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; accepted and ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing handle passed to every benchmark closure.
pub struct Bencher {
    times: Vec<Duration>,
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
