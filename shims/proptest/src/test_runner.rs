//! Deterministic RNG and per-test configuration.

/// Per-test configuration (subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated input cases per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// splitmix64 generator, seeded from the test name so every test draws an
/// independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded draw (Lemire); bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_name_dependent() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounded_draws_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn default_config_has_cases() {
        assert!(Config::default().cases > 0);
        assert_eq!(Config::with_cases(9).cases, 9);
    }
}
