//! Collection strategies (subset of proptest's `collection` module).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.next_below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::from_name("veclen");
        let s = vec(any::<u8>(), 3..9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn empty_capable_range_can_produce_empty() {
        let mut rng = TestRng::from_name("vecempty");
        let s = vec(any::<u8>(), 0..3);
        let mut saw_empty = false;
        for _ in 0..100 {
            saw_empty |= s.generate(&mut rng).is_empty();
        }
        assert!(saw_empty);
    }
}
