//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro over `pattern in strategy` arguments, range / `any` /
//! tuple / [`collection::vec`] strategies, [`prelude::ProptestConfig`] and
//! the `prop_assert*` macros.
//!
//! Inputs are generated from a deterministic splitmix64 stream seeded by the
//! test name, so failures are reproducible run-to-run (the real proptest's
//! shrinking machinery is intentionally out of scope — on failure the full
//! offending case is printed by the assertion itself).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal test that runs its body for `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u32..17,
            y in -5i64..5,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_and_tuples(
            v in vec(any::<u16>(), 2..50),
            pairs in vec((0u8..4, any::<u32>()), 0..10),
        ) {
            prop_assert!((2..50).contains(&v.len()));
            prop_assert!(pairs.len() < 10);
            prop_assert!(pairs.iter().all(|&(a, _)| a < 4));
        }

        #[test]
        fn mut_bindings_work(mut v in vec(any::<u32>(), 0..20)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = vec(any::<u64>(), 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
