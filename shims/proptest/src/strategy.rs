//! Value-generation strategies (subset of proptest's `Strategy`).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Generates one value per test case.  Unlike the real proptest there is no
/// value tree / shrinking; `generate` draws the value directly.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy references generate what the strategy generates (lets tests
/// reuse one strategy object).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let mut rng = TestRng::from_name("cover");
        let s = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "seen: {seen:?}");
    }

    #[test]
    fn signed_ranges_include_negatives() {
        let mut rng = TestRng::from_name("signed");
        let s = -10i64..-5;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((-10..-5).contains(&v));
        }
    }

    #[test]
    fn any_draws_varied_values() {
        let mut rng = TestRng::from_name("any");
        let s = any::<u32>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_name("tuple");
        let s = (0u8..2, any::<u16>(), 0.0f64..1.0);
        let (a, _b, c) = s.generate(&mut rng);
        assert!(a < 2);
        assert!((0.0..1.0).contains(&c));
    }
}
