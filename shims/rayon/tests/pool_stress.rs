//! Stress and property tests for the work-stealing pool: deep nesting,
//! panic propagation and recovery, nested `install`, and a property test
//! that random fork-join trees compute thread-count-independent results.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::{current_num_threads, join, scope, ThreadPoolBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Perfect binary fork-join tree of the given depth; every leaf increments
/// the counter once and contributes its path index to the sum.
fn fork_tree(depth: u32, path: u64, leaves: &AtomicUsize) -> u64 {
    if depth == 0 {
        leaves.fetch_add(1, Ordering::Relaxed);
        return path;
    }
    let (l, r) = join(
        || fork_tree(depth - 1, path * 2, leaves),
        || fork_tree(depth - 1, path * 2 + 1, leaves),
    );
    l.wrapping_add(r)
}

#[test]
fn nested_join_depth_16() {
    // 2^16 leaves; the sum over all leaf paths of a perfect tree of depth d
    // is sum(0..2^d) = 2^d * (2^d - 1) / 2.
    let depth = 16u32;
    let leaves = AtomicUsize::new(0);
    let sum = fork_tree(depth, 0, &leaves);
    let n = 1u64 << depth;
    assert_eq!(leaves.load(Ordering::Relaxed), n as usize);
    assert_eq!(sum, n * (n - 1) / 2);
}

#[test]
fn nested_join_depth_16_on_small_pool() {
    // The same tree on a 2-worker pool: exercises steal-while-waiting hard
    // (every level can lose its second half to the other worker).
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let depth = 16u32;
    let leaves = AtomicUsize::new(0);
    let n = 1u64 << depth;
    let sum = pool.install(|| fork_tree(depth, 0, &leaves));
    assert_eq!(leaves.load(Ordering::Relaxed), n as usize);
    assert_eq!(sum, n * (n - 1) / 2);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string payload>")
}

#[test]
fn panic_in_first_closure_propagates() {
    let err = catch_unwind(|| join(|| panic!("left boom"), || 7)).unwrap_err();
    assert_eq!(panic_message(&*err), "left boom");
}

#[test]
fn panic_in_second_closure_propagates() {
    let err = catch_unwind(|| join(|| 7, || panic!("right boom"))).unwrap_err();
    assert_eq!(panic_message(&*err), "right boom");
}

#[test]
fn both_closures_panicking_propagates_first() {
    // Rayon's contract: when both halves panic, the first closure's payload
    // is the one re-thrown (the second's is dropped).
    let err = catch_unwind(|| join(|| panic!("first wins"), || panic!("second is swallowed")))
        .unwrap_err();
    assert_eq!(panic_message(&*err), "first wins");
}

#[test]
fn completed_half_survives_sibling_panic() {
    // The non-panicking half must have fully run (fork-join may not abandon
    // work), observable through the side effect.
    let done = AtomicUsize::new(0);
    let err = catch_unwind(AssertUnwindSafe(|| {
        join(
            || {
                done.fetch_add(1, Ordering::SeqCst);
            },
            || panic!("sibling"),
        )
    }))
    .unwrap_err();
    assert_eq!(panic_message(&*err), "sibling");
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

#[test]
fn pool_is_reusable_after_panics() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    for round in 0..8 {
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                join(
                    || panic!("round {round}"),
                    || fork_tree(6, 0, &AtomicUsize::new(0)),
                )
            })
        }))
        .unwrap_err();
        assert!(panic_message(&*err).starts_with("round"));
        // The same pool must still schedule real work correctly.
        let leaves = AtomicUsize::new(0);
        let sum = pool.install(|| fork_tree(8, 0, &leaves));
        assert_eq!(leaves.load(Ordering::Relaxed), 256);
        assert_eq!(sum, 256 * 255 / 2);
    }
}

#[test]
fn global_pool_survives_scope_panic() {
    let err = catch_unwind(|| {
        scope(|s| {
            s.spawn(|_| panic!("spawned boom"));
        })
    })
    .unwrap_err();
    assert_eq!(panic_message(&*err), "spawned boom");
    // Global pool still works.
    let (a, b) = join(|| 1, || 2);
    assert_eq!(a + b, 3);
}

#[test]
fn install_inside_install_same_pool_runs_inline() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let nested = pool.install(|| {
        assert_eq!(current_num_threads(), 3);
        // Re-entrant install on the same pool must not deadlock (it runs
        // inline on the current worker).
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            fork_tree(8, 0, &AtomicUsize::new(0))
        })
    });
    assert_eq!(nested, 256 * 255 / 2);
}

#[test]
fn install_inside_install_across_pools() {
    let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let inner = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let (seen_outer, seen_inner, sum) = outer.install(|| {
        let seen_outer = current_num_threads();
        let (seen_inner, sum) = inner.install(|| {
            (
                current_num_threads(),
                fork_tree(10, 0, &AtomicUsize::new(0)),
            )
        });
        // Back on the outer pool's worker after the inner install returns.
        assert_eq!(current_num_threads(), 2);
        (seen_outer, seen_inner, sum)
    });
    assert_eq!(seen_outer, 2);
    assert_eq!(seen_inner, 4);
    assert_eq!(sum, 1024 * 1023 / 2);
}

#[test]
fn scope_spawns_from_spawns() {
    // Spawns that spawn: the scope must wait for transitively spawned work.
    let hits = AtomicUsize::new(0);
    scope(|s| {
        for _ in 0..8 {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), 16);
}

#[test]
fn rayon_num_threads_env_var_sets_default_pool_size() {
    // `num_threads(0)` means "use the default", which honours the env var.
    std::env::set_var("RAYON_NUM_THREADS", "3");
    let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(pool.current_num_threads(), 3);
    // An explicit count always wins over the env var.
    let explicit = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    assert_eq!(explicit.current_num_threads(), 2);
}

/// A deterministic "computation" over a fork-join tree whose shape is
/// driven by the input data: result must not depend on scheduling.
fn tree_reduce(data: &[u64]) -> u64 {
    if data.len() <= 3 {
        return data.iter().fold(0x9E37_79B9u64, |acc, &x| {
            acc.rotate_left(7) ^ x.wrapping_mul(0x100_0000_01B3)
        });
    }
    // Data-dependent split point: uneven trees stress the deque harder.
    let split = 1 + (data[0] as usize % (data.len() - 1));
    let (l, r) = join(
        || tree_reduce(&data[..split]),
        || tree_reduce(&data[split..]),
    );
    l.rotate_left(13).wrapping_add(r.rotate_right(17)) ^ (data.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_fork_join_trees_are_thread_count_independent(
        data in proptest::collection::vec(0u64..u64::MAX, 1..512),
    ) {
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            results.push(pool.install(|| tree_reduce(&data)));
        }
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[0], results[2]);
    }

    #[test]
    fn par_sort_identical_across_thread_counts(
        keys in proptest::collection::vec(0u32..64, 1..2000),
    ) {
        let records: Vec<(u32, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let mut expected = records.clone();
        expected.sort_by_key(|r| r.0);
        for threads in [1usize, 2, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let mut got = records.clone();
            pool.install(|| got.par_sort_by(|a, b| a.0.cmp(&b.0)));
            prop_assert_eq!(&got, &expected, "threads = {}", threads);
        }
    }
}
