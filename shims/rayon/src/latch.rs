//! Completion signals between forked work and whoever waits on it.
//!
//! Three implementations for three waiting styles:
//!
//! * [`SpinLatch`] — probed by a **pool worker** that keeps stealing while
//!   it waits (`join` with a stolen second half).  Setting it wakes the
//!   pool's sleepers so a parked waiter notices promptly.
//! * [`CountLatch`] — a [`SpinLatch`] with a counter, for `scope`: set once
//!   per spawned job, "ready" when all of them (plus the scope body) are
//!   done.
//! * [`LockLatch`] — mutex + condvar, for **external threads** blocked on
//!   the pool (`ThreadPool::install`, `join` called off-pool).  External
//!   threads have no deque, so they block instead of stealing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::registry::Registry;

/// A one-shot "this work is done" flag.
///
/// Implementations must guarantee that `set` performs no access to the
/// latch's memory after the point where a `probe` on another thread can
/// return `true` — the prober may free the latch immediately (it lives in a
/// [`StackJob`](crate::job::StackJob) on a stack frame that is about to be
/// popped).
pub(crate) trait Latch {
    /// Has the latch been set?
    fn probe(&self) -> bool;
    /// Sets the latch, waking any waiter.
    fn set(&self);
}

/// Latch probed by a stealing worker; setting it pokes the pool's sleep
/// protocol so a parked prober wakes.
pub(crate) struct SpinLatch {
    flag: AtomicBool,
    registry: Arc<Registry>,
}

impl SpinLatch {
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        Self {
            flag: AtomicBool::new(false),
            registry,
        }
    }
}

impl Latch for SpinLatch {
    #[inline]
    fn probe(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    fn set(&self) {
        // Clone the registry handle BEFORE publishing: the instant the flag
        // reads true, the prober may pop the stack frame holding this latch,
        // so the wake-up must go through a reference we already own.
        let registry = Arc::clone(&self.registry);
        self.flag.store(true, Ordering::Release);
        registry.wake_all();
    }
}

/// Counting latch for `scope`: ready when the count returns to zero.
pub(crate) struct CountLatch {
    count: AtomicUsize,
    registry: Arc<Registry>,
}

impl CountLatch {
    /// Starts at 1: the scope body itself counts as one outstanding unit.
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        Self {
            count: AtomicUsize::new(1),
            registry,
        }
    }

    pub(crate) fn increment(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }
}

impl Latch for CountLatch {
    #[inline]
    fn probe(&self) -> bool {
        self.count.load(Ordering::SeqCst) == 0
    }

    fn set(&self) {
        let registry = Arc::clone(&self.registry);
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            registry.wake_all();
        }
    }
}

/// Blocking latch for threads outside the pool.
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Blocks the calling thread until the latch is set.
    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().expect("LockLatch poisoned");
        while !*done {
            done = self.cv.wait(done).expect("LockLatch poisoned");
        }
    }
}

impl Latch for LockLatch {
    fn probe(&self) -> bool {
        *self.done.lock().expect("LockLatch poisoned")
    }

    fn set(&self) {
        let mut done = self.done.lock().expect("LockLatch poisoned");
        *done = true;
        // Notify while holding the lock: the waiter cannot observe `done`
        // and free the latch between our store and the notify.
        self.cv.notify_all();
    }
}
