//! Offline stand-in for [rayon](https://docs.rs/rayon) with a real
//! work-stealing fork-join pool.
//!
//! The build environment has no access to crates.io, so this in-repo shim
//! provides the rayon surface the workspace uses — [`join`], [`scope`],
//! [`current_num_threads`], [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! and the slice methods of [`prelude`] — implemented the way rayon itself
//! is:
//!
//! * Each pool worker owns a **Chase–Lev deque** (`src/deque.rs`): it pushes
//!   and pops forked work LIFO at the bottom, while idle siblings steal
//!   FIFO from the top.  External threads submit through a global
//!   *injector* queue.
//! * [`join`] pushes its second closure onto the local deque and runs the
//!   first inline.  If the second half is still local afterwards it is
//!   popped and run inline (so a 1-thread pool degenerates to plain
//!   recursion); if a thief took it, the worker **steals other work while
//!   waiting** instead of blocking the OS thread.
//! * Idle workers **park** on an eventcount (mutex + condvar) and are
//!   unparked by pushes and latch completions; a bounded park timeout
//!   serves as a liveness backstop.
//! * Panics propagate exactly like rayon's: a join waits for both halves
//!   before unwinding, a scope waits for all spawned tasks, and the pool
//!   survives (and is reusable after) any panic in user code.
//!
//! The worker count of the implicit global pool honours the
//! **`RAYON_NUM_THREADS`** environment variable (a positive integer), else
//! the number of available cores.  Swapping the real rayon back in is a
//! one-line change in the workspace manifest; no source file mentions the
//! shim by name.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

mod deque;
mod job;
mod latch;
pub mod prelude;
mod registry;
mod scope;

pub use scope::{scope, Scope};

use job::StackJob;
use latch::{Latch, SpinLatch};
use registry::{current_registry, Registry, WorkerThread};

/// Number of worker threads of the current pool: the pool this thread
/// belongs to when called on a pool worker (e.g. inside
/// [`ThreadPool::install`]), else the global pool (creating it on first
/// use).
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Rayon's exact contract: `b` is made available for other workers to
/// steal while `a` runs on the current thread.  If nobody stole `b`, it
/// runs here too (LIFO pop), so the sequential fallback is ordinary
/// recursion.  If either closure panics, the panic is re-thrown only after
/// **both** have come to a halt — required because the closures may borrow
/// from the caller's stack frame.  When both panic, `a`'s payload wins.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WorkerThread::current();
    if worker.is_null() {
        // Off-pool: move the whole join onto a pool worker and block.
        return current_registry().in_worker(move |_| join(a, b));
    }
    // SAFETY: `worker` points into the live stack frame of this thread's
    // worker main loop.
    join_on_worker(unsafe { &*worker }, a, b)
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b, SpinLatch::new(Arc::clone(&worker.registry)));
    // SAFETY: this frame outlives the job — we do not return (or unwind)
    // before the latch confirms execution.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    worker.push(job_b_ref);

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Wait for b: pop local work (running b inline if we get to it before
    // any thief), and once the deque is exhausted, steal elsewhere until
    // b's latch trips.
    while !job_b.latch.probe() {
        match worker.take_local_job() {
            Some(job) => {
                // LIFO order: anything above b in the deque was pushed
                // during `a` (e.g. scope spawns) and is safe to run here.
                let was_b = job.same_job(&job_b_ref);
                unsafe { job.execute() };
                if was_b {
                    break;
                }
            }
            None => {
                worker.wait_until(&job_b.latch);
                break;
            }
        }
    }

    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        Err(payload) => {
            // `a` panicked; `b` has completed (we waited), so unwinding
            // past the shared frame is now safe.  If b also panicked, its
            // payload is dropped — a's came first.
            drop(job_b);
            panic::resume_unwind(payload)
        }
    }
}

/// Builder for a [`ThreadPool`] (or the global pool).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "all available cores" (or
    /// `RAYON_NUM_THREADS` when set).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            registry::default_num_threads()
        } else {
            self.num_threads
        }
    }

    /// Builds a dedicated pool with its own worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            registry: Registry::new(self.resolved_threads()),
        })
    }

    /// Installs the pool globally.  Fails if the global pool was already
    /// initialized (first parallel call or an earlier `build_global`).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let registry = Registry::new(self.resolved_threads());
        registry::set_global_registry(registry).map_err(|rejected| {
            // The freshly built pool lost the race; shut its workers down.
            rejected.terminate_and_join();
            ThreadPoolBuildError::GlobalPoolAlreadyInitialized
        })
    }
}

/// A dedicated work-stealing pool; see [`ThreadPool::install`].
///
/// Dropping the pool shuts its workers down (it must be quiescent: every
/// `install` has returned).
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Runs `op` on a worker of this pool and returns its result: all
    /// [`join`]/[`scope`] calls inside run on this pool's workers and
    /// therefore respect its thread budget.  Nested `install` on the same
    /// pool runs inline.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        self.registry.in_worker(|_| op())
    }

    /// Number of worker threads of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate_and_join();
    }
}

#[derive(Debug)]
pub enum ThreadPoolBuildError {
    GlobalPoolAlreadyInitialized,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadPoolBuildError::GlobalPoolAlreadyInitialized => {
                write!(f, "the global thread pool has already been initialized")
            }
        }
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nests_deeply() {
        fn sum(lo: usize, hi: usize) -> usize {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        let n = 100_000;
        assert_eq!(sum(0, n), n * (n - 1) / 2);
    }

    #[test]
    fn join_actually_runs_both_closures() {
        let hits = AtomicUsize::new(0);
        join(
            || hits.fetch_add(1, Ordering::SeqCst),
            || hits.fetch_add(1, Ordering::SeqCst),
        );
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn install_bounds_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert_eq!(pool.current_num_threads(), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        join(|| panic!("boom"), || ());
    }

    #[test]
    fn scope_spawns_run_before_scope_returns() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }
}
