//! Offline stand-in for [rayon](https://docs.rs/rayon).
//!
//! The build environment has no access to crates.io, so this in-repo shim
//! provides the small rayon surface the workspace uses — [`join`],
//! [`current_num_threads`], [`ThreadPoolBuilder`] / [`ThreadPool::install`]
//! and the slice methods of [`prelude`] — with real parallelism:
//!
//! * A *pool* is a token budget (`threads - 1` tokens).  [`join`] grabs a
//!   token when one is available and runs its first closure on a scoped OS
//!   thread, otherwise it degrades to sequential execution.  Recursive
//!   fork-join code therefore keeps at most `threads` runnable threads
//!   alive, mirroring rayon's behaviour closely enough for a correctness
//!   and laptop-scale-performance reproduction.
//! * The current pool propagates into spawned workers, so
//!   [`ThreadPool::install`] bounds the parallelism of everything running
//!   inside it (used by the scalability experiments).
//!
//! Swapping back to the real rayon is a one-line change in the workspace
//! manifest; no source file mentions the shim by name.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, OnceLock};

pub mod prelude;

struct PoolInner {
    threads: usize,
    /// Tokens for *extra* concurrent workers (threads - 1).
    tokens: AtomicIsize,
}

impl PoolInner {
    fn new(threads: usize) -> Arc<Self> {
        let threads = threads.max(1);
        Arc::new(PoolInner {
            threads,
            tokens: AtomicIsize::new(threads as isize - 1),
        })
    }

    fn try_acquire(&self) -> bool {
        let mut cur = self.tokens.load(Ordering::Relaxed);
        while cur > 0 {
            match self.tokens.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
        false
    }

    fn release(&self) {
        self.tokens.fetch_add(1, Ordering::Release);
    }
}

/// Releases a pool token when dropped, even if the worker panics.
struct Token<'p>(&'p PoolInner);

impl Drop for Token<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

thread_local! {
    static CURRENT_POOL: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
}

static GLOBAL_POOL: OnceLock<Arc<PoolInner>> = OnceLock::new();

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn current_pool() -> Arc<PoolInner> {
    CURRENT_POOL
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| {
            Arc::clone(GLOBAL_POOL.get_or_init(|| PoolInner::new(default_threads())))
        })
}

/// Number of worker threads of the current (installed or global) pool.
pub fn current_num_threads() -> usize {
    current_pool().threads
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Exactly rayon's contract: `a` may run on another thread while `b` runs on
/// the current one; panics are propagated after both complete.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    if !pool.try_acquire() {
        return (a(), b());
    }
    let worker_pool = Arc::clone(&pool);
    std::thread::scope(move |s| {
        let handle = s.spawn(move || {
            CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::clone(&worker_pool)));
            let _token = Token(&worker_pool);
            a()
        });
        let rb = b();
        match handle.join() {
            Ok(ra) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Builder for a [`ThreadPool`] (or the global pool).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "all available cores".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            inner: PoolInner::new(self.resolved_threads()),
        })
    }

    /// Installs the pool globally.  Fails if the global pool was already
    /// initialized (first parallel call or an earlier `build_global`).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let pool = PoolInner::new(self.resolved_threads());
        GLOBAL_POOL
            .set(pool)
            .map_err(|_| ThreadPoolBuildError::GlobalPoolAlreadyInitialized)
    }
}

/// A bounded-parallelism scope; see [`ThreadPool::install`].
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl ThreadPool {
    /// Runs `op` with this pool as the ambient pool: all [`join`] calls
    /// (transitively) respect this pool's thread budget.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let inner = Arc::clone(&self.inner);
        std::thread::scope(move |s| {
            let handle = s.spawn(move || {
                CURRENT_POOL.with(|c| *c.borrow_mut() = Some(inner));
                op()
            });
            match handle.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.inner.threads
    }
}

#[derive(Debug)]
pub enum ThreadPoolBuildError {
    GlobalPoolAlreadyInitialized,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadPoolBuildError::GlobalPoolAlreadyInitialized => {
                write!(f, "the global thread pool has already been initialized")
            }
        }
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nests_deeply() {
        fn sum(lo: usize, hi: usize) -> usize {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        let n = 100_000;
        assert_eq!(sum(0, n), n * (n - 1) / 2);
    }

    #[test]
    fn join_actually_runs_concurrently_when_tokens_allow() {
        // With >= 2 threads the two sides can overlap; verify both run.
        let hits = AtomicUsize::new(0);
        join(
            || hits.fetch_add(1, Ordering::SeqCst),
            || hits.fetch_add(1, Ordering::SeqCst),
        );
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn install_bounds_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert_eq!(pool.current_num_threads(), 2);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        join(|| panic!("boom"), || ());
    }
}
