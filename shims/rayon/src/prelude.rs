//! The slice-parallelism subset of `rayon::prelude` used by the workspace:
//! `par_chunks_mut(..).enumerate().for_each(..)`, `par_sort_by` and
//! `par_sort_unstable_by`.
//!
//! `par_sort_by` is a fully parallel merge sort on top of the
//! work-stealing [`join`](crate::join): both the recursive *sorting* and
//! the *merging* fork, giving `O(n log n)` work and `O(log³ n)` span —
//! a sequential merge would cap the speedup at the top-level `O(n)` merge
//! pass.  Halves ping-pong between the data slice and one scratch buffer,
//! so each level moves every element exactly once.

use std::cmp::Ordering;

/// Parallel extensions on slices (subset of rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Disjoint mutable chunks of at most `chunk_size` elements, processable
    /// in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>
    where
        T: Send;

    /// Stable parallel sort (parallel merge sort with parallel merges).
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send + Sync,
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Unstable parallel sort.  Implemented with the same parallel merge
    /// sort (a stable sort is a valid unstable sort).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send + Sync,
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>
    where
        T: Send,
    {
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size.max(1)).collect(),
        }
    }

    fn par_sort_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send + Sync,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send + Sync,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }
}

/// Below this length a slice is sorted sequentially.
const SORT_GRAIN: usize = 4096;
/// Below this combined length two runs are merged sequentially.
const MERGE_GRAIN: usize = 8192;

fn par_merge_sort<T, F>(data: &mut [T], cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if data.len() <= SORT_GRAIN {
        data.sort_by(|a, b| cmp(a, b));
        return;
    }
    let mut scratch = data.to_vec();
    sort_to(data, &mut scratch, cmp, false);
}

/// Sorts `src`; the result lands in `dst` when `into_dst`, else in `src`.
/// The other slice is clobbered.  Parity alternates down the recursion so
/// the final merge writes directly where the result belongs.
fn sort_to<T, F>(src: &mut [T], dst: &mut [T], cmp: &F, into_dst: bool)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(src.len(), dst.len());
    if src.len() <= SORT_GRAIN {
        src.sort_by(|a, b| cmp(a, b));
        if into_dst {
            dst.copy_from_slice(src);
        }
        return;
    }
    let mid = src.len() / 2;
    let (src_lo, src_hi) = src.split_at_mut(mid);
    let (dst_lo, dst_hi) = dst.split_at_mut(mid);
    crate::join(
        || sort_to(src_lo, dst_lo, cmp, !into_dst),
        || sort_to(src_hi, dst_hi, cmp, !into_dst),
    );
    // The children left their sorted halves in the *other* array; merge
    // them into the one the result belongs in.
    if into_dst {
        par_merge(src_lo, src_hi, dst, cmp);
    } else {
        par_merge(dst_lo, dst_hi, src, cmp);
    }
}

/// Stable parallel merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`): split `a` at its midpoint, binary
/// search the split key in `b`, and recurse on the two independent halves.
/// On ties, elements of `a` precede elements of `b`.
fn par_merge<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    if a.len() + b.len() <= MERGE_GRAIN {
        seq_merge(a, b, out, cmp);
        return;
    }
    // Split the longer run at its midpoint for balanced recursion.
    let (a, b, a_first) = if a.len() >= b.len() {
        (a, b, true)
    } else {
        (b, a, false)
    };
    let ia = a.len() / 2;
    let pivot = &a[ia];
    // Stability: when `a` is really the first run, equal keys of `b` must
    // come after the pivot (strictly-less partition); when the runs are
    // swapped, equal keys of `b` (the true first run) must come before it.
    let ib = if a_first {
        b.partition_point(|x| cmp(x, pivot) == Ordering::Less)
    } else {
        b.partition_point(|x| cmp(x, pivot) != Ordering::Greater)
    };
    let (out_lo, out_hi) = out.split_at_mut(ia + ib);
    let (a_lo, a_hi) = a.split_at(ia);
    let (b_lo, b_hi) = b.split_at(ib);
    crate::join(
        || {
            if a_first {
                par_merge(a_lo, b_lo, out_lo, cmp)
            } else {
                par_merge(b_lo, a_lo, out_lo, cmp)
            }
        },
        || {
            if a_first {
                par_merge(a_hi, b_hi, out_hi, cmp)
            } else {
                par_merge(b_hi, a_hi, out_hi, cmp)
            }
        },
    );
}

/// Sequential stable merge: on ties, `a`'s element first.
fn seq_merge<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        *slot = if i < a.len() && (j >= b.len() || cmp(&b[j], &a[i]) != Ordering::Less) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
    }
    debug_assert!(i == a.len() && j == b.len());
}

/// Lazy parallel iterator over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            items: self.chunks.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        run_items(self.chunks, &|chunk| f(chunk));
    }
}

/// `par_chunks_mut(..).enumerate()`.
pub struct EnumeratedParChunksMut<'a, T> {
    items: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> EnumeratedParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        run_items(self.items, &f);
    }
}

/// Binary fork-join fan-out over a vector of work items.
fn run_items<I, F>(mut items: Vec<I>, f: &F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    if items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let right = items.split_off(items.len() / 2);
    crate::join(|| run_items(items, f), || run_items(right, f));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_enumerate_covers_everything() {
        let mut v: Vec<usize> = vec![0; 10_000];
        v.par_chunks_mut(128).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 128);
        }
    }

    #[test]
    fn par_sorts_sort_and_stable_variant_is_stable() {
        let input: Vec<(u32, u32)> = (0..50_000u32).map(|i| ((i * 7919) % 100, i)).collect();

        let mut a = input.clone();
        a.par_sort_by(|x, y| x.0.cmp(&y.0));
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);
        assert_eq!(a, want, "par_sort_by must be stable");

        let mut b = input;
        b.par_sort_unstable_by(|x, y| x.0.cmp(&y.0));
        assert!(b.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn par_sort_is_stable_across_merge_splits() {
        // Few distinct keys and a large n force ties to straddle every
        // parallel-merge split point.
        let input: Vec<(u8, u32)> = (0..200_000u32).map(|i| ((i % 3) as u8, i)).collect();
        let mut got = input.clone();
        got.par_sort_by(|x, y| x.0.cmp(&y.0));
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want);
    }

    #[test]
    fn par_sort_handles_tiny_and_presorted() {
        let mut empty: Vec<u32> = vec![];
        empty.par_sort_by(|a, b| a.cmp(b));
        assert!(empty.is_empty());

        let mut one = vec![7u32];
        one.par_sort_by(|a, b| a.cmp(b));
        assert_eq!(one, vec![7]);

        let mut sorted: Vec<u32> = (0..100_000).collect();
        sorted.par_sort_by(|a, b| a.cmp(b));
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

        let mut reversed: Vec<u32> = (0..100_000).rev().collect();
        reversed.par_sort_by(|a, b| a.cmp(b));
        assert!(reversed.windows(2).all(|w| w[0] <= w[1]));
    }
}
