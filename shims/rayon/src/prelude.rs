//! The slice-parallelism subset of `rayon::prelude` used by the workspace:
//! `par_chunks_mut(..).enumerate().for_each(..)`, `par_sort_by` and
//! `par_sort_unstable_by`.

use std::cmp::Ordering;

/// Parallel extensions on slices (subset of rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Disjoint mutable chunks of at most `chunk_size` elements, processable
    /// in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>
    where
        T: Send;

    /// Stable parallel sort (parallel merge sort).
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send,
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Unstable parallel sort.  Implemented with the same parallel merge
    /// sort (a stable sort is a valid unstable sort).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send,
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>
    where
        T: Send,
    {
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size.max(1)).collect(),
        }
    }

    fn par_sort_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy + Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }
}

const SORT_GRAIN: usize = 8192;

fn par_merge_sort<T, F>(data: &mut [T], cmp: &F)
where
    T: Copy + Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if data.len() <= SORT_GRAIN {
        data.sort_by(|a, b| cmp(a, b));
        return;
    }
    let mid = data.len() / 2;
    {
        let (lo, hi) = data.split_at_mut(mid);
        crate::join(|| par_merge_sort(lo, cmp), || par_merge_sort(hi, cmp));
    }
    // Stable merge of the two sorted halves through a temporary buffer.
    let mut tmp = Vec::with_capacity(data.len());
    let (mut i, mut j) = (0, mid);
    while i < mid && j < data.len() {
        if cmp(&data[j], &data[i]) == Ordering::Less {
            tmp.push(data[j]);
            j += 1;
        } else {
            tmp.push(data[i]);
            i += 1;
        }
    }
    tmp.extend_from_slice(&data[i..mid]);
    tmp.extend_from_slice(&data[j..]);
    data.copy_from_slice(&tmp);
}

/// Lazy parallel iterator over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            items: self.chunks.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        run_items(self.chunks, &|chunk| f(chunk));
    }
}

/// `par_chunks_mut(..).enumerate()`.
pub struct EnumeratedParChunksMut<'a, T> {
    items: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> EnumeratedParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        run_items(self.items, &f);
    }
}

fn run_items<I, F>(mut items: Vec<I>, f: &F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    if items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let right = items.split_off(items.len() / 2);
    crate::join(|| run_items(items, f), || run_items(right, f));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_enumerate_covers_everything() {
        let mut v: Vec<usize> = vec![0; 10_000];
        v.par_chunks_mut(128).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 128);
        }
    }

    #[test]
    fn par_sorts_sort_and_stable_variant_is_stable() {
        let input: Vec<(u32, u32)> = (0..50_000u32).map(|i| ((i * 7919) % 100, i)).collect();

        let mut a = input.clone();
        a.par_sort_by(|x, y| x.0.cmp(&y.0));
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);
        assert_eq!(a, want, "par_sort_by must be stable");

        let mut b = input;
        b.par_sort_unstable_by(|x, y| x.0.cmp(&y.0));
        assert!(b.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
