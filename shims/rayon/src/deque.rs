//! A Chase–Lev work-stealing deque specialized to [`JobRef`]s.
//!
//! The owning worker pushes and pops at the *bottom* (LIFO — newest task
//! first, which keeps the working set cache-hot and makes nested `join`
//! unwind like ordinary recursion); thieves steal from the *top* (FIFO —
//! oldest, typically largest task first).  The implementation follows the
//! dynamic circular deque of Chase & Lev with the memory-ordering fixes of
//! Lê et al. ("Correct and Efficient Work-Stealing for Weak Memory
//! Models", PPoPP 2013).
//!
//! Two simplifications versus a general-purpose implementation:
//!
//! * Elements are [`JobRef`]s — two plain words, `Copy`, no drop glue —
//!   stored as a pair of **relaxed atomics** per slot.  A stalled thief
//!   can race the owner's wrap-around `push` on the same slot, so the
//!   loads/stores must be atomic to be defined behaviour; a *torn* pair
//!   (one old word, one new) can only be observed by a thief whose
//!   validating CAS on `top` is guaranteed to fail (the owner only
//!   overwrites index `i` after `top` has advanced past `i`, and `top`
//!   never goes backwards), so torn values are always discarded.
//! * Buffer growth **retires** the old buffer instead of freeing it (a
//!   stalled thief may still read a slot from it; the value it reads is
//!   identical in old and new buffers, and its CAS on `top` arbitrates
//!   ownership).  Retired buffers are freed when the deque drops.  Total
//!   overhead is bounded: capacities double, so all retired buffers
//!   together are smaller than the live one.

use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use crate::job::JobRef;

const INITIAL_CAPACITY: usize = 64;

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// Nothing to steal.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Got a job.
    Success(JobRef),
}

/// One deque slot: the two words of a [`JobRef`] as independent relaxed
/// atomics (see the module docs for why a torn pair is harmless).
struct Slot {
    pointer: AtomicPtr<()>,
    execute_fn: AtomicPtr<()>,
}

struct Buffer {
    mask: usize,
    slots: Box<[Slot]>,
}

impl Buffer {
    fn alloc(capacity: usize) -> Box<Buffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| Slot {
                pointer: AtomicPtr::new(ptr::null_mut()),
                execute_fn: AtomicPtr::new(ptr::null_mut()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            mask: capacity - 1,
            slots,
        })
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Publishes a job into the slot for `index` (owner only; visibility
    /// to thieves is carried by the subsequent `bottom` release store).
    #[inline]
    fn put(&self, index: isize, job: JobRef) {
        let (pointer, execute_fn) = job.raw_parts();
        let slot = &self.slots[index as usize & self.mask];
        slot.pointer.store(pointer, Ordering::Relaxed);
        slot.execute_fn.store(execute_fn, Ordering::Relaxed);
    }

    /// Reads the slot for `index`.
    ///
    /// # Safety
    /// The value may be torn by a concurrent wrap-around `put` and must
    /// only be *used* after winning the validating CAS on `top` (which is
    /// guaranteed to fail whenever a tear was possible).
    #[inline]
    unsafe fn get(&self, index: isize) -> JobRef {
        let slot = &self.slots[index as usize & self.mask];
        JobRef::from_raw_parts(
            slot.pointer.load(Ordering::Relaxed),
            slot.execute_fn.load(Ordering::Relaxed),
        )
    }
}

struct Inner {
    /// Next index a thief will steal from.
    top: AtomicIsize,
    /// Next index the owner will push to.
    bottom: AtomicIsize,
    /// Current circular buffer; swapped on growth.
    buffer: AtomicPtr<Buffer>,
    /// Old buffer *allocations* kept alive until drop (see module docs):
    /// a stalled thief may still hold a pointer into one, so they must not
    /// be freed while the deque lives.
    retired: Mutex<Vec<*mut Buffer>>,
}

// SAFETY: all cross-thread access to the slot array is mediated by the
// Chase–Lev protocol on `top`/`bottom`; `JobRef` is `Send`.
unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

impl Drop for Inner {
    fn drop(&mut self) {
        // Reconstruct and free the live buffer and every retired one.  Any
        // JobRefs still in the deque are plain words (leaked heap jobs
        // would be a caller bug: the pool only terminates quiescent).
        let buf = self.buffer.load(Ordering::Relaxed);
        if !buf.is_null() {
            drop(unsafe { Box::from_raw(buf) });
        }
        for &old in self
            .retired
            .lock()
            .expect("deque retired-list poisoned")
            .iter()
        {
            drop(unsafe { Box::from_raw(old) });
        }
    }
}

/// The owner's handle: push/pop at the bottom.
pub(crate) struct WorkerDeque {
    inner: Arc<Inner>,
}

/// A thief's handle: steal from the top.
#[derive(Clone)]
pub(crate) struct Stealer {
    inner: Arc<Inner>,
}

/// Creates a deque, returning the owner handle and a stealer.
pub(crate) fn deque() -> (WorkerDeque, Stealer) {
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Box::into_raw(Buffer::alloc(INITIAL_CAPACITY))),
        retired: Mutex::new(Vec::new()),
    });
    (
        WorkerDeque {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

impl WorkerDeque {
    /// Pushes a job at the bottom (owner only).
    pub(crate) fn push(&self, job: JobRef) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        if b - t >= unsafe { (*buf).capacity() } as isize {
            buf = self.grow(t, b, buf);
        }
        unsafe { (*buf).put(b, job) };
        // Release: the slot write must be visible before the new bottom.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Doubles the buffer, copying live indices `t..b`; retires the old one.
    fn grow(&self, t: isize, b: isize, old: *mut Buffer) -> *mut Buffer {
        let inner = &*self.inner;
        let new = Buffer::alloc(unsafe { (*old).capacity() } * 2);
        for i in t..b {
            unsafe { new.put(i, (*old).get(i)) };
        }
        let new_ptr = Box::into_raw(new);
        inner.buffer.store(new_ptr, Ordering::Release);
        inner
            .retired
            .lock()
            .expect("deque retired-list poisoned")
            .push(old);
        new_ptr
    }

    /// Pops the newest job from the bottom (owner only; LIFO).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // The fence orders our bottom decrement against the thief's top
        // read: either the thief sees the decrement or we see its CAS.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            let job = unsafe { (*buf).get(b) };
            if t == b {
                // Single element left: race a concurrent thief for it.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(job)
            } else {
                Some(job)
            }
        } else {
            // Already empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }
}

impl Stealer {
    /// Tries to steal the oldest job from the top.
    pub(crate) fn steal(&self) -> Steal {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t < b {
            let buf = inner.buffer.load(Ordering::Acquire);
            let job = unsafe { (*buf).get(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(job)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}
