//! Structured fork-join scopes: spawn any number of tasks that may borrow
//! from the enclosing stack frame; the scope does not return until all of
//! them finished.
//!
//! `scope` moves the calling thread onto a pool worker (injecting if called
//! off-pool), runs the body, then *steals while waiting* for the spawn
//! counter to return to zero — the same non-blocking wait as `join`.
//! Panics (from the body or any spawned task) are deferred until every task
//! has completed, then the first one is resumed; this keeps borrowed stack
//! data alive for exactly as long as tasks may touch it.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crate::job::HeapJob;
use crate::latch::{CountLatch, Latch};
use crate::registry::{current_registry, Registry, WorkerThread};

/// The kind of closure a scope accepts; used only as a variance marker.
type ScopeBody<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A fork-join scope handed to the closure of [`scope`]; lets it spawn
/// tasks that borrow anything outliving `'scope`.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Outstanding units: the body itself plus every live spawn.
    pending: CountLatch,
    /// First panic from a spawned task, if any (the body's own panic is
    /// handled separately and wins).
    panic: AtomicPtr<Box<dyn Any + Send + 'static>>,
    /// Invariant over `'scope`: spawned closures may borrow from the frame
    /// that created the scope.
    marker: PhantomData<ScopeBody<'scope>>,
}

/// Creates a scope on the current (or global) pool and runs `op` in it.
///
/// Every task spawned via [`Scope::spawn`] is guaranteed to have finished
/// when `scope` returns, which is what makes the `'scope` borrows sound.
///
/// ```
/// let mut parts = [0usize; 3];
/// let (a, rest) = parts.split_at_mut(1);
/// let (b, c) = rest.split_at_mut(1);
/// rayon::scope(|s| {
///     s.spawn(|_| a[0] = 1);
///     s.spawn(|_| b[0] = 2);
///     s.spawn(|_| c[0] = 3);
/// });
/// assert_eq!(parts, [1, 2, 3]);
/// ```
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let registry = current_registry();
    registry.in_worker(|worker| {
        let scope = Scope {
            registry: Arc::clone(&worker.registry),
            pending: CountLatch::new(Arc::clone(&worker.registry)),
            panic: AtomicPtr::new(std::ptr::null_mut()),
            marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // The body is done (one way or the other): drop its unit and wait —
        // stealing, not blocking — for the spawned tasks.
        scope.pending.set();
        worker.wait_until(&scope.pending);
        match result {
            Ok(r) => {
                scope.maybe_propagate_panic();
                r
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    })
}

/// `Send`-able raw pointer to a scope; the scope is guaranteed alive until
/// its pending count reaches zero, which every spawned job decrements only
/// as its last action.
struct ScopePtr(*const ());

// SAFETY: see above — lifetime is protected by the pending counter.
unsafe impl Send for ScopePtr {}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the scope; it may run on any pool worker, at any
    /// time before `scope` returns.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.increment();
        let scope_ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job = HeapJob::new(move || {
            // SAFETY: the pending counter keeps the scope alive; we only
            // decrement it (below) after the last use of `scope`.
            let scope = unsafe { &*(scope_ptr.0 as *const Scope<'scope>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.store_panic(payload);
            }
            scope.pending.set();
        });
        // SAFETY: HeapJob owns itself; executed exactly once by the pool.
        // The 'scope lifetime is erased here and re-established by the
        // wait in `scope` before the borrowed frame is popped.
        let job_ref = unsafe { job.into_job_ref() };
        let worker = WorkerThread::current();
        unsafe {
            if !worker.is_null() && Arc::ptr_eq(&(*worker).registry, &self.registry) {
                (*worker).push(job_ref);
            } else {
                self.registry.inject(job_ref);
            }
        }
    }

    /// Records the first spawned-task panic; later ones are dropped (they
    /// cannot all be rethrown).
    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let boxed = Box::into_raw(Box::new(payload));
        if self
            .panic
            .compare_exchange(
                std::ptr::null_mut(),
                boxed,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            // Someone else already stored a panic; free ours.
            drop(unsafe { Box::from_raw(boxed) });
        }
    }

    fn maybe_propagate_panic(&self) {
        let ptr = self.panic.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !ptr.is_null() {
            let payload = *unsafe { Box::from_raw(ptr) };
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        // If the scope unwound via the body's panic, a spawned-task panic
        // may still be parked here; free it.
        let ptr = self.panic.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !ptr.is_null() {
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}
