//! The thread pool itself: worker threads, their deques, the global
//! injector, and the park/unpark protocol.
//!
//! # Structure
//!
//! A [`Registry`] owns `num_threads` OS worker threads.  Each worker has a
//! Chase–Lev deque ([`crate::deque`]); everyone can steal from everyone via
//! the shared [`Stealer`] array.  Threads **outside** the pool submit work
//! through the *injector*, a mutex-protected FIFO, and block on a
//! [`LockLatch`] until it completes ([`Registry::in_worker`]).
//!
//! # Finding work
//!
//! A worker looks for work in priority order: its own deque (LIFO), the
//! injector, then stealing from siblings starting at a random victim.  A
//! worker that finds nothing parks on the [`Sleep`] eventcount; every push
//! (deque or injector) and every latch set wakes sleepers when any are
//! registered.  Parks use a bounded timeout as a liveness backstop: a push
//! racing a sleeper's registration may skip the wakeup, costing at most
//! one park-timeout of latency, never a stranded job.
//!
//! # Waiting without blocking
//!
//! A worker whose `join` lost its second half to a thief must not block the
//! OS thread — it *becomes* a thief itself ([`WorkerThread::wait_until`]),
//! executing other jobs until its latch trips.  This is what makes the pool
//! a real fork-join scheduler rather than a thread-per-task scheme.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::deque::{deque, Steal, Stealer, WorkerDeque};
use crate::job::{JobRef, StackJob};
use crate::latch::{Latch, LockLatch};

/// How many times a waiter yields before parking on the eventcount.
const YIELDS_BEFORE_SLEEP: u32 = 32;
/// Park timeout: pure liveness backstop against weak-memory corner cases,
/// not the wake mechanism — long enough that idle pools are effectively
/// silent (~10 wakeups/s per worker), short enough to bound any stall.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

/// An eventcount.  A sleeper (1) snapshots the epoch, (2) **registers**
/// itself, (3) re-checks for work one final time, and only then (4) parks
/// while the epoch is unchanged.  A waker makes its work visible, then
/// skips entirely when no sleeper is registered — safe because the
/// register (a SeqCst RMW) precedes the sleeper's final work re-check: if
/// the waker missed the registration, the sleeper's re-check is ordered
/// after the push and finds the work itself.
pub(crate) struct Sleep {
    epoch: AtomicUsize,
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl Sleep {
    fn new() -> Self {
        Self {
            epoch: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Step 1: snapshot the epoch.
    fn prepare(&self) -> usize {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Step 2: announce intent to sleep.  Must be followed by one more
    /// work re-check, then either [`Sleep::sleep`] or [`Sleep::cancel`].
    fn register(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
    }

    /// Withdraws a registration because the final re-check found work.
    fn cancel(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Step 4: parks until the epoch moves past `epoch` (or the backstop
    /// timeout).  Consumes the registration.
    fn sleep(&self, epoch: usize) {
        let mut guard = self.mutex.lock().expect("sleep mutex poisoned");
        while self.epoch.load(Ordering::SeqCst) == epoch {
            let (g, timeout) = self
                .cv
                .wait_timeout(guard, PARK_TIMEOUT)
                .expect("sleep mutex poisoned");
            guard = g;
            if timeout.timed_out() {
                break;
            }
        }
        drop(guard);
        self.cancel();
    }

    /// Publishes "new work exists" and wakes all sleepers.  Returns
    /// whether any sleeper was registered (i.e. a real wakeup happened).
    ///
    /// Fast path: with no registered sleeper this is a single load — no
    /// RMW, no lock — so the per-`join` cost on a busy pool is negligible.
    /// See the type docs for why skipping is race-free.
    fn notify_all(&self) -> bool {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return false;
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Taking the mutex orders us against a sleeper between its epoch
        // re-check and its wait.
        drop(self.mutex.lock().expect("sleep mutex poisoned"));
        self.cv.notify_all();
        true
    }
}

/// Handles into the global [`obs`] registry for scheduler metrics,
/// registered lazily the first time the pool runs with tracing enabled.
///
/// Metric names are global, so two pools with the same worker index share
/// a counter; values aggregate across pools.
struct PoolMetrics {
    /// `pool.w{i}.steals` — successful steals *by* worker `i`.
    steals: Vec<obs::Counter>,
    /// `pool.parks` — times any worker parked on the eventcount.
    parks: obs::Counter,
    /// `pool.wakes` — notifies that found at least one registered sleeper.
    wakes: obs::Counter,
    /// `pool.injector_depth` — jobs currently queued in the injector.
    injector_depth: obs::Gauge,
}

/// Shared state of one thread pool.
pub(crate) struct Registry {
    num_threads: usize,
    stealers: Vec<Stealer>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Lock-free emptiness hint for the injector.
    injector_len: AtomicUsize,
    sleep: Sleep,
    terminating: AtomicBool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Scheduler metric handles; empty until tracing is first enabled.
    metrics: OnceLock<PoolMetrics>,
}

impl Registry {
    /// Builds a pool with `num_threads` workers (min 1) and starts them.
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        let num_threads = num_threads.max(1);
        let (workers, stealers): (Vec<WorkerDeque>, Vec<Stealer>) =
            (0..num_threads).map(|_| deque()).unzip();
        let registry = Arc::new(Registry {
            num_threads,
            stealers,
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep: Sleep::new(),
            terminating: AtomicBool::new(false),
            handles: Mutex::new(Vec::with_capacity(num_threads)),
            metrics: OnceLock::new(),
        });
        let mut handles = registry.handles.lock().expect("handles poisoned");
        for (index, worker_deque) in workers.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("dtsort-worker-{index}"))
                .spawn(move || worker_main(registry, index, worker_deque))
                .expect("failed to spawn pool worker thread");
            handles.push(handle);
        }
        drop(handles);
        registry
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Scheduler metrics, or `None` when tracing is disabled.  Handles
    /// register into the global registry on first enabled call.
    #[inline]
    fn metrics(&self) -> Option<&PoolMetrics> {
        if !obs::enabled() {
            return None;
        }
        Some(self.metrics.get_or_init(|| {
            let reg = obs::global();
            PoolMetrics {
                steals: (0..self.num_threads)
                    .map(|i| reg.counter(&format!("pool.w{i}.steals")))
                    .collect(),
                parks: reg.counter("pool.parks"),
                wakes: reg.counter("pool.wakes"),
                injector_depth: reg.gauge("pool.injector_depth"),
            }
        }))
    }

    /// Wakes every parked worker (new work or a latch tripped).
    pub(crate) fn wake_all(&self) {
        if self.sleep.notify_all() {
            if let Some(m) = self.metrics() {
                m.wakes.incr();
            }
        }
    }

    /// Queues a job from outside the pool (or for pool-wide fan-out).
    pub(crate) fn inject(&self, job: JobRef) {
        {
            let mut q = self.injector.lock().expect("injector poisoned");
            q.push_back(job);
            let depth = self.injector_len.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(m) = self.metrics() {
                m.injector_depth.set(depth as i64);
            }
        }
        self.wake_all();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        if self.injector_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut q = self.injector.lock().expect("injector poisoned");
        let job = q.pop_front();
        if job.is_some() {
            let depth = self.injector_len.fetch_sub(1, Ordering::SeqCst) - 1;
            if let Some(m) = self.metrics() {
                m.injector_depth.set(depth as i64);
            }
        }
        job
    }

    /// Runs `op` on a worker of **this** pool and returns its result.
    ///
    /// If the current thread already is such a worker, runs inline.
    /// Otherwise injects a stack job and blocks the calling thread on a
    /// [`LockLatch`] — this is the bridge every external entry point
    /// (`install`, off-pool `join`/`scope`) goes through.
    pub(crate) fn in_worker<OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce(&WorkerThread) -> R + Send,
        R: Send,
    {
        unsafe {
            let worker = WorkerThread::current();
            if !worker.is_null() && Arc::ptr_eq(&(*worker).registry, self) {
                return op(&*worker);
            }
            let job = StackJob::new(
                || {
                    let worker = WorkerThread::current();
                    debug_assert!(!worker.is_null(), "injected job ran off-pool");
                    // Deref covered by the enclosing unsafe block: an
                    // injected job only ever runs on a pool worker.
                    op(&*worker)
                },
                LockLatch::new(),
            );
            self.inject(job.as_job_ref());
            job.latch.wait();
            job.into_result()
        }
    }

    /// Asks workers to exit once the pool is quiescent.
    fn terminate(&self) {
        self.terminating.store(true, Ordering::SeqCst);
        self.sleep.notify_all();
    }

    /// Terminates and joins all workers.  Called from `ThreadPool::drop`;
    /// must not run on a worker of this pool.
    pub(crate) fn terminate_and_join(&self) {
        self.terminate();
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

thread_local! {
    /// Points at the `WorkerThread` living on this thread's stack, while a
    /// worker main loop is running; null on non-pool threads.
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(ptr::null()) };
}

/// Per-worker state, allocated on the worker thread's own stack.
pub(crate) struct WorkerThread {
    pub(crate) registry: Arc<Registry>,
    index: usize,
    deque: WorkerDeque,
    /// xorshift state for random victim selection.
    rng: Cell<u64>,
}

impl WorkerThread {
    /// The current thread's worker state, or null off-pool.
    #[inline]
    pub(crate) fn current() -> *const WorkerThread {
        WORKER.with(Cell::get)
    }

    /// Pushes a locally forked job and advertises it to sleeping siblings.
    #[inline]
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.wake_all();
    }

    /// Pops the most recently pushed local job, if any.
    #[inline]
    pub(crate) fn take_local_job(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    fn next_rand(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    /// One full work-finding round: local deque, injector, then stealing.
    fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.deque.pop() {
            return Some(job);
        }
        if let Some(job) = self.registry.pop_injected() {
            return Some(job);
        }
        self.steal()
    }

    /// Sweeps the other workers' deques starting at a random victim,
    /// retrying as long as some victim reports a lost race.
    fn steal(&self) -> Option<JobRef> {
        let stealers = &self.registry.stealers;
        let n = stealers.len();
        if n <= 1 {
            return None;
        }
        loop {
            let start = (self.next_rand() % n as u64) as usize;
            let mut contended = false;
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == self.index {
                    continue;
                }
                match stealers[victim].steal() {
                    Steal::Success(job) => {
                        if let Some(m) = self.registry.metrics() {
                            m.steals[self.index].incr();
                        }
                        return Some(job);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
        }
    }

    /// Keeps this worker busy until `latch` trips: executes local jobs,
    /// injected jobs and stolen jobs; parks (with the eventcount) only when
    /// there is nothing to do anywhere.
    pub(crate) fn wait_until<L: Latch>(&self, latch: &L) {
        let mut yields = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                unsafe { job.execute() };
                yields = 0;
                continue;
            }
            if yields < YIELDS_BEFORE_SLEEP {
                yields += 1;
                std::thread::yield_now();
                continue;
            }
            let epoch = self.registry.sleep.prepare();
            self.registry.sleep.register();
            if latch.probe() {
                self.registry.sleep.cancel();
                return;
            }
            if let Some(job) = self.find_work() {
                self.registry.sleep.cancel();
                unsafe { job.execute() };
                yields = 0;
                continue;
            }
            if let Some(m) = self.registry.metrics() {
                m.parks.incr();
            }
            self.registry.sleep.sleep(epoch);
        }
    }
}

/// Body of every pool worker thread.
fn worker_main(registry: Arc<Registry>, index: usize, deque: WorkerDeque) {
    let worker = WorkerThread {
        registry: Arc::clone(&registry),
        index,
        deque,
        rng: Cell::new(
            0x9E37_79B9_7F4A_7C15 ^ (index as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        ),
    };
    WORKER.with(|w| w.set(&worker));
    loop {
        if let Some(job) = worker.find_work() {
            unsafe { job.execute() };
            continue;
        }
        if registry.terminating.load(Ordering::SeqCst) {
            break;
        }
        let epoch = registry.sleep.prepare();
        registry.sleep.register();
        if let Some(job) = worker.find_work() {
            registry.sleep.cancel();
            unsafe { job.execute() };
            continue;
        }
        if registry.terminating.load(Ordering::SeqCst) {
            registry.sleep.cancel();
            break;
        }
        if let Some(m) = registry.metrics() {
            m.parks.incr();
        }
        registry.sleep.sleep(epoch);
    }
    WORKER.with(|w| w.set(ptr::null()));
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Worker count for the global pool: `RAYON_NUM_THREADS` if set and
/// positive, else the number of available cores.
pub(crate) fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The global pool, built on first use.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Registry::new(default_num_threads()))
}

/// Installs `registry` as the global pool; fails if one already exists.
pub(crate) fn set_global_registry(registry: Arc<Registry>) -> Result<(), Arc<Registry>> {
    GLOBAL.set(registry)
}

/// The registry the current thread belongs to: its own pool's on a worker,
/// the global one elsewhere.
pub(crate) fn current_registry() -> Arc<Registry> {
    let worker = WorkerThread::current();
    if worker.is_null() {
        Arc::clone(global_registry())
    } else {
        unsafe { Arc::clone(&(*worker).registry) }
    }
}
