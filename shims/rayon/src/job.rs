//! Type-erased units of work for the work-stealing pool.
//!
//! A *job* is "a closure somebody will run exactly once, possibly on another
//! thread".  [`join`](crate::join) allocates its deferred closure on the
//! **caller's stack** ([`StackJob`]) — the fork-join discipline guarantees
//! the frame outlives the job — while `scope` spawns outlive their spawning
//! frame and therefore live on the heap ([`HeapJob`]).  Both are reached
//! through the two-word [`JobRef`], which is what actually sits in the
//! deques and the injector.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// A type-erased, copyable handle to a job: a data pointer plus the
/// monomorphized function that executes it.
///
/// # Safety contract
/// The pointee must stay alive until the job has executed (stack jobs rely
/// on the fork-join protocol for this; heap jobs own themselves and are
/// freed by their `execute`).  A `JobRef` must be executed **exactly once**.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is just a pointer pair; the execution contract above is
// what makes moving it across threads sound, and every construction site
// upholds it.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Wraps a pointer to a [`Job`] implementor.
    ///
    /// # Safety
    /// `data` must outlive the job's execution (see the type-level contract).
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn: <T as Job>::execute,
        }
    }

    /// Runs the job.
    ///
    /// # Safety
    /// Must be called exactly once, while the pointee is still alive.
    #[inline]
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }

    /// Do the two refs denote the same job instance?  (Pointer identity;
    /// function pointers are not compared — they need not be unique.)
    #[inline]
    pub(crate) fn same_job(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.pointer, other.pointer)
    }

    /// Decomposes into two plain words for atomic storage in deque slots.
    #[inline]
    pub(crate) fn raw_parts(&self) -> (*mut (), *mut ()) {
        (self.pointer.cast_mut(), self.execute_fn as *mut ())
    }

    /// Recomposes a ref stored via [`JobRef::raw_parts`].
    ///
    /// # Safety
    /// Both words must come from the same `raw_parts` call (the deque's
    /// CAS-on-`top` protocol guarantees a *used* pair was never torn).
    #[inline]
    pub(crate) unsafe fn from_raw_parts(pointer: *mut (), execute_fn: *mut ()) -> JobRef {
        JobRef {
            pointer,
            execute_fn: std::mem::transmute::<*mut (), unsafe fn(*const ())>(execute_fn),
        }
    }
}

/// Implemented by every concrete job representation.
pub(crate) trait Job {
    /// Runs the job behind the erased pointer.
    ///
    /// # Safety
    /// `this` must point to a live instance of the implementing type, and
    /// the call must happen at most once.
    unsafe fn execute(this: *const ());
}

/// Either the closure's return value or the panic it unwound with.
pub(crate) enum JobResult<R> {
    /// The job has not finished yet (or was never run).
    None,
    /// The closure returned normally.
    Ok(R),
    /// The closure panicked; the payload is re-thrown at the join point.
    Panic(Box<dyn Any + Send>),
}

/// A job whose closure and result slot live on the stack of the thread that
/// created it — the representation behind [`join`](crate::join) and the
/// inject-and-wait entry path.
///
/// The owner pushes `as_job_ref()` somewhere, waits for `latch`, then calls
/// [`StackJob::into_result`].  The latch being set is the happens-before
/// edge that makes the result slot readable.
pub(crate) struct StackJob<L: Latch, F, R>
where
    F: FnOnce() -> R,
{
    /// Set (by whoever executes the job) once `result` is written.
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        Self {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// Type-erased handle to this job.
    ///
    /// # Safety
    /// The returned ref must be executed before `self` is dropped, and at
    /// most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Takes the result, re-throwing the closure's panic if it had one.
    ///
    /// Must only be called after the latch was observed set.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => panic::resume_unwind(p),
            JobResult::None => unreachable!("StackJob::into_result before execution"),
        }
    }
}

impl<L: Latch, F, R> Job for StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    unsafe fn execute(this: *const ()) {
        let this = &*(this as *const Self);
        let func = (*this.func.get()).take().expect("StackJob executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panic(payload),
        };
        *this.result.get() = result;
        // The set must be the final access: once the owner observes it, the
        // job's stack frame may be popped.  Latch implementations guarantee
        // `set` itself never touches latch memory after publishing.
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job, used by `scope` spawns whose
/// closures outlive the frame that spawned them.  Owns itself: `execute`
/// reconstructs the `Box` and frees it.
pub(crate) struct HeapJob<F>
where
    F: FnOnce(),
{
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce(),
{
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(Self { func })
    }

    /// Consumes the box into an erased ref; the job frees itself on
    /// execution.
    ///
    /// # Safety
    /// The returned ref must be executed exactly once, or the job leaks.
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef::new(Box::into_raw(self))
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce(),
{
    unsafe fn execute(this: *const ()) {
        let this = Box::from_raw(this as *mut Self);
        (this.func)();
    }
}
