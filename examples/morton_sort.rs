//! Morton (z-order) sort, the second application of the paper's Section 6.2.
//!
//! Generates a Varden-style variable-density 2D point cloud (dense clusters
//! plus background noise), computes the z-value of every point by bit
//! interleaving, and sorts the points along the z-order curve with
//! DovetailSort.  Dense clusters produce many duplicate z-values, which is
//! exactly the duplicate-heavy regime DovetailSort targets.
//!
//! Run with `cargo run --release --example morton_sort`.

use apps::morton::{morton2, morton_sort_2d, morton_sort_2d_with};
use std::time::Instant;
use workloads::points::{varden_points_2d, VardenConfig};

fn main() {
    let n = 2_000_000;
    println!("generating {n} Varden-style variable-density points...");
    let points = varden_points_2d(n, &VardenConfig::default(), 7);

    // How duplicate-heavy is this input after quantization?
    let mut codes: Vec<u64> = points.iter().map(|p| morton2(p.x, p.y)).collect();
    codes.sort_unstable();
    codes.dedup();
    println!(
        "{} distinct z-values among {n} points ({:.1}% duplicates)",
        codes.len(),
        100.0 * (1.0 - codes.len() as f64 / n as f64)
    );

    let t0 = Instant::now();
    let sorted = morton_sort_2d(&points);
    println!("DovetailSort Morton sort: {:?}", t0.elapsed());

    let t1 = Instant::now();
    let sorted_ss = morton_sort_2d_with(&points, baselines::samplesort::sort_pairs);
    println!("samplesort Morton sort:   {:?}", t1.elapsed());

    // Verify: the z-values of the output are non-decreasing and the two
    // back-ends agree on the z-value sequence.
    let zs: Vec<u64> = sorted.iter().map(|p| morton2(p.x, p.y)).collect();
    assert!(zs.windows(2).all(|w| w[0] <= w[1]));
    let zs2: Vec<u64> = sorted_ss.iter().map(|p| morton2(p.x, p.y)).collect();
    assert_eq!(zs, zs2);

    // Locality: neighbours in z-order are spatially close on average.
    let mut total_dist = 0.0f64;
    for w in sorted.windows(2).take(100_000) {
        let dx = w[0].x as f64 - w[1].x as f64;
        let dy = w[0].y as f64 - w[1].y as f64;
        total_dist += (dx * dx + dy * dy).sqrt();
    }
    println!(
        "average distance between consecutive points in z-order (first 100k): {:.0} (coordinate range is ~10^6)",
        total_dist / 100_000.0
    );
}
