//! Group-by on a duplicate-heavy stream — the semisort-style workload that
//! motivates heavy-key detection (paper Sections 1 and 2.5).
//!
//! Simulates a clickstream where a few pages receive most of the traffic
//! (Zipfian page popularity), groups the events by page with
//! DovetailSort-backed `group_by_key`, and compares DovetailSort against the
//! "Plain" radix sort (no heavy-key detection) on the same input.
//!
//! Run with `cargo run --release --example duplicate_groupby`.

use apps::groupby::group_by_key;
use pisort::SortConfig;
use std::time::Instant;
use workloads::dist::{generate_keys, Distribution};

fn main() {
    let n = 4_000_000;
    println!("generating {n} click events with Zipf-1.2 page popularity...");
    let pages = generate_keys(&Distribution::Zipfian { s: 1.2 }, n, 32, 3);
    let mut events: Vec<(u64, u32)> = pages
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();

    // Group the events by page.
    let t0 = Instant::now();
    let groups = group_by_key(&mut events);
    println!(
        "grouped into {} distinct pages in {:?}",
        groups.len(),
        t0.elapsed()
    );
    let top = groups.iter().max_by_key(|g| g.len()).unwrap();
    println!(
        "hottest page owns {:.1}% of all events",
        100.0 * top.len() as f64 / n as f64
    );

    // The underlying sort: with vs without heavy-key detection.
    let input: Vec<(u64, u32)> = pages
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let mut a = input.clone();
    let t1 = Instant::now();
    let stats = pisort::sort_pairs_with_stats(&mut a, &SortConfig::default());
    let dt_time = t1.elapsed();
    let mut b = input;
    let t2 = Instant::now();
    pisort::sort_pairs_with(&mut b, &SortConfig::plain());
    let plain_time = t2.elapsed();
    assert_eq!(
        a, b,
        "both configurations must produce the same stable order"
    );
    println!(
        "DovetailSort: {dt_time:?} ({} heavy keys, {:.1}% of records bypassed recursion)",
        stats.heavy_keys,
        100.0 * stats.heavy_records as f64 / n as f64
    );
    println!("Plain radix sort (no heavy-key detection): {plain_time:?}");
}
