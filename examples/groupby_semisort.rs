//! Group-by on the semisort engine — grouping without sorting.
//!
//! Simulates a clickstream where a few pages receive most of the traffic
//! (Zipfian page popularity) and answers three aggregate queries with the
//! `semisort::GroupBy` API: visits per page, last visitor per page, and the
//! top pages by traffic.  Then streams the same workload through
//! `stream::StreamGroupBy` under a small memory budget to show that
//! duplicate-heavy streams spill only partial aggregates, never their
//! duplicates.
//!
//! Run with `cargo run --release --example groupby_semisort`.

use semisort::GroupBy;
use std::time::Instant;
use stream::{CountAgg, StreamGroupBy};
use workloads::dist::{generate_keys, Distribution};

fn main() {
    let n = 2_000_000;
    println!("generating {n} click events with Zipf-1.2 page popularity...");
    let pages = generate_keys(&Distribution::Zipfian { s: 1.2 }, n, 32, 7);
    let events: Vec<(u64, u32)> = pages
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();

    // ---- In-memory group-by: one semisort, many aggregates. -------------
    let t0 = Instant::now();
    let grouped = GroupBy::new(events.clone());
    println!(
        "grouped {} events into {} pages in {:?} (no total order established)",
        grouped.len(),
        grouped.num_groups(),
        t0.elapsed()
    );

    // Visits per page, then the top-3 pages by traffic.
    let mut visits = grouped.counts();
    visits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("top pages by visits:");
    for &(page, count) in visits.iter().take(3) {
        println!(
            "  page {page:>10}: {count} visits ({:.1}%)",
            100.0 * count as f64 / n as f64
        );
    }

    // Last visitor per page via a custom fold (values fold in input order).
    let last_visitor = grouped.fold(0u32, |_, &v| v);
    let hottest = visits[0].0;
    let last = last_visitor.iter().find(|&&(p, _)| p == hottest).unwrap().1;
    println!("last visitor of the hottest page: event #{last}");

    // ---- Streaming group-by under a 4 MiB budget. -----------------------
    let t1 = Instant::now();
    let mut gb: StreamGroupBy<u64, CountAgg> =
        StreamGroupBy::with_config(CountAgg, dtsort::StreamConfig::with_memory_budget(4 << 20));
    for chunk in events.chunks(64 * 1024) {
        let keyed: Vec<(u64, ())> = chunk.iter().map(|&(p, _)| (p, ())).collect();
        gb.push(&keyed).unwrap();
    }
    let stats = gb.stats().clone();
    let streamed = gb.finish_vec().unwrap();
    println!(
        "streaming count over {} runs in {:?}: {} partials spilled for {} records \
         ({:.1}x collapse before disk)",
        stats.spilled_runs,
        t1.elapsed(),
        stats.partial_aggregates,
        stats.records_pushed,
        stats.records_pushed as f64 / stats.partial_aggregates.max(1) as f64
    );
    assert_eq!(streamed.len(), grouped.num_groups());
    let mut check: Vec<(u64, u64)> = grouped
        .counts()
        .into_iter()
        .map(|(k, c)| (k, c as u64))
        .collect();
    check.sort_unstable();
    assert_eq!(streamed, check, "streaming and in-memory group-by agree");
    println!(
        "streaming and in-memory aggregates agree on all {} pages",
        streamed.len()
    );
}
