//! Streaming sort and dedup over **variable-length string payloads**: the
//! sorter spills `(u64, String)` records through the length-prefixed run
//! format and k-way merges them back under a bounded memory budget, then
//! the group-by dedups the same stream to its first payload per key.
//!
//! Run with: `cargo run --release --example stream_strings`

use pisort::dtsort::StreamConfig;
use pisort::stream::{FirstAgg, StreamGroupBy};
use pisort::workloads::dist::Distribution;
use pisort::workloads::StringBatchStream;
use pisort::StreamSorter;

fn main() {
    let n = 400_000usize;
    let (min_len, max_len) = (16usize, 160usize);
    // Give the sorter a budget far below the payload volume so several
    // runs spill to disk (payload bytes, not record count, trigger them).
    let budget = 4 << 20;
    let dist = Distribution::Zipfian { s: 1.1 };
    println!(
        "stream-sorting {n} string records ({min_len}-{max_len} B payloads) \
         under a {} MiB budget",
        budget >> 20,
    );

    let mut sorter: StreamSorter<u64, String> =
        StreamSorter::with_config(StreamConfig::with_memory_budget(budget));
    for batch in StringBatchStream::new(&dist, n, 32, 16 * 1024, 42, min_len, max_len) {
        sorter.push(&batch).expect("pushing a batch");
    }
    println!(
        "ingested: {} runs spilled ({} MiB), {} heavy keys carried",
        sorter.stats().spilled_runs,
        sorter.stats().spilled_bytes >> 20,
        sorter.stats().carried_heavy_keys,
    );

    // Drain the merged stream, verifying order on the fly.
    let start = std::time::Instant::now();
    let (mut count, mut bytes, mut last) = (0usize, 0usize, 0u64);
    for (key, value) in sorter.finish().expect("final merge") {
        assert!(key >= last, "stream must be non-decreasing");
        last = key;
        count += 1;
        bytes += value.len();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(count, n);
    println!(
        "merged {count} records ({} MiB of payload) in {secs:.3} s \
         ({:.2} Mrec/s); max key {last}",
        bytes >> 20,
        count as f64 / secs / 1e6,
    );

    // Same stream, deduplicated: first payload per key, one spilled record
    // per distinct key per run.
    let mut gb: StreamGroupBy<u64, FirstAgg<String>> =
        StreamGroupBy::with_config(FirstAgg::new(), StreamConfig::with_memory_budget(budget));
    for batch in StringBatchStream::new(&dist, n, 32, 16 * 1024, 42, min_len, max_len) {
        gb.push(&batch).expect("pushing a batch");
    }
    let stats = gb.stats().clone();
    let distinct = gb.finish().expect("dedup merge").count();
    println!(
        "dedup: {distinct} distinct keys of {n} records \
         ({} partials spilled across {} runs)",
        stats.partial_aggregates, stats.spilled_runs,
    );
}
