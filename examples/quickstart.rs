//! Quickstart: sorting integer keys and key-value records with DovetailSort.
//!
//! Run with `cargo run --release --example quickstart`.

use pisort::{SortConfig, StatsSnapshot};
use workloads::dist::{generate_pairs_u32, Distribution};

fn main() {
    // 1. Sorting plain integer keys.
    let mut keys = vec![170u32, 45, 75, 90, 802, 24, 2, 66];
    pisort::sort(&mut keys);
    println!("sorted keys:   {keys:?}");

    // 2. Sorting key-value records stably: records with equal keys keep
    //    their input order (here, 'c' was before 'b').
    let mut records = vec![(3u64, 'c'), (1, 'a'), (3, 'b'), (2, 'd')];
    pisort::sort_pairs(&mut records);
    println!("sorted pairs:  {records:?}");

    // 3. Sorting arbitrary Copy structs by an integer key projection.
    #[derive(Clone, Copy, Debug)]
    struct Event {
        timestamp: u64,
        #[allow(dead_code)]
        user: u32,
    }
    let mut events = vec![
        Event {
            timestamp: 1_700_000_300,
            user: 2,
        },
        Event {
            timestamp: 1_700_000_100,
            user: 7,
        },
        Event {
            timestamp: 1_700_000_200,
            user: 4,
        },
    ];
    pisort::sort_by_key(&mut events, |e| e.timestamp);
    println!("sorted events: {events:?}");

    // 4. A bigger, duplicate-heavy input: DovetailSort detects the heavy
    //    keys by sampling and reports what it did through the stats API.
    let n = 2_000_000;
    let mut data = generate_pairs_u32(&Distribution::Zipfian { s: 1.2 }, n, 1);
    let stats: StatsSnapshot = pisort::sort_pairs_with_stats(&mut data, &SortConfig::default());
    assert!(data.windows(2).all(|w| w[0].0 <= w[1].0));
    println!(
        "\nsorted {n} Zipf-1.2 records: {} heavy keys detected, {:.1}% of records bypassed recursion, \
         {:.2} record moves per input record, {} radix levels",
        stats.heavy_keys,
        100.0 * stats.heavy_records as f64 / n as f64,
        stats.records_moved() as f64 / n as f64,
        stats.max_depth,
    );
    println!(
        "root-level step times: sample {:?}, distribute {:?}, recurse {:?}, merge {:?}",
        stats.root_sample_time,
        stats.root_distribute_time,
        stats.root_recurse_time,
        stats.root_merge_time
    );
}
