//! Tracing a spilling streaming sort with the `obs` layer.
//!
//! Runs an out-of-core sort with tracing enabled, then prints the metrics
//! snapshot (counters, gauges and latency histograms the engines recorded)
//! and writes a chrome://tracing file showing run sorting on the caller
//! thread overlapping spill writes on the background writer thread — open
//! `trace_observability.json` in a Chromium browser at `chrome://tracing`
//! (or at <https://ui.perfetto.dev>) to see the pipeline.
//!
//! Run with `cargo run --release --example observability`.

use pisort::obs;
use pisort::{StreamConfig, StreamSorter};
use workloads::dist::{generate_keys, Distribution};

fn main() {
    let n = 2_000_000usize;
    // `trace: true` flips the global obs switch; `OBS_TRACE=1` in the
    // environment would do the same without touching code.
    let cfg = StreamConfig {
        // An eighth of the dataset: forces several spilled runs.
        memory_budget_bytes: n * 8 / 8,
        trace: true,
        ..StreamConfig::default()
    };

    println!("generating {n} zipf-distributed records...");
    let keys = generate_keys(&Distribution::Zipfian { s: 1.2 }, n, 32, 7);
    let records: Vec<(u64, u32)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u32))
        .collect();

    let mut sorter: StreamSorter<u64, u32> = StreamSorter::with_config(cfg);
    for chunk in records.chunks(64 * 1024) {
        sorter.push(chunk).expect("push");
    }
    let stats = sorter.stats().clone();
    println!(
        "pushed {} records, {} runs spilled so far (settled: {})",
        stats.records_pushed, stats.spilled_runs, stats.is_settled
    );
    let mut out = 0usize;
    for (k, _) in sorter.finish().expect("finish") {
        std::hint::black_box(k);
        out += 1;
    }
    assert_eq!(out, n);

    // Everything the engines recorded, as one JSON document.
    let snapshot = obs::global().snapshot();
    println!("\nmetrics snapshot:\n{}", snapshot.to_json());

    // The span timeline, as a chrome://tracing file.
    let (events, dropped) = obs::drain_spans();
    let path = std::path::Path::new("trace_observability.json");
    obs::write_chrome_trace(path, &events).expect("write trace");
    println!(
        "\nwrote {} spans to {} ({} dropped); load it at chrome://tracing",
        events.len(),
        path.display(),
        dropped
    );
}
