//! Graph transpose, the first application of the paper's Section 6.2.
//!
//! Builds a synthetic power-law directed graph (a stand-in for a social
//! network), transposes it by stably integer-sorting all edges by their
//! destination vertex, and cross-checks the result against a reference
//! bucket-based transpose.  The skewed in-degree distribution makes the
//! high-degree vertices *heavy keys* that DovetailSort handles specially.
//!
//! Run with `cargo run --release --example graph_transpose`.

use apps::transpose::{transpose, transpose_reference, transpose_with_sorter};
use std::time::Instant;
use workloads::graphs::{power_law_graph, Csr};

fn main() {
    let num_vertices = 200_000;
    let num_edges = 2_000_000;
    println!("generating a power-law graph with {num_vertices} vertices and {num_edges} edges...");
    let edges = power_law_graph(num_vertices, num_edges, 1.2, 42);
    let g = Csr::from_unsorted_edges(edges.num_vertices, &edges.edges);

    // In-degree skew: this is what turns popular vertices into heavy keys.
    let mut indeg = vec![0usize; num_vertices];
    for &(_, v) in &edges.edges {
        indeg[v as usize] += 1;
    }
    let max_indeg = indeg.iter().max().copied().unwrap_or(0);
    println!(
        "average in-degree {:.1}, maximum in-degree {max_indeg}",
        num_edges as f64 / num_vertices as f64
    );

    let t0 = Instant::now();
    let gt = transpose(&g);
    let dt = t0.elapsed();
    println!("DovetailSort-based transpose: {dt:?}");

    let t1 = Instant::now();
    let gt_plis = transpose_with_sorter(&g, baselines::plis::sort_pairs);
    println!("plain-radix-sort transpose:   {:?}", t1.elapsed());

    let t2 = Instant::now();
    let gt_ref = transpose_reference(&g);
    println!("reference (bucket) transpose: {:?}", t2.elapsed());

    assert_eq!(
        gt, gt_ref,
        "sorting-based transpose must match the reference"
    );
    assert_eq!(gt_plis, gt_ref);
    println!(
        "transpose verified: {} vertices, {} edges, max out-degree of G^T = {max_indeg}",
        gt.num_vertices(),
        gt.num_edges()
    );
}
