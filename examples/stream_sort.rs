//! Streaming out-of-core sort: sorts a dataset larger than the sorter's
//! memory budget by spilling sorted runs to disk and k-way merging them.
//!
//! Run with: `cargo run --release --example stream_sort`

use pisort::dtsort::StreamConfig;
use pisort::workloads::batches_u32;
use pisort::workloads::dist::Distribution;
use pisort::StreamSorter;

fn main() {
    let n = 4_000_000usize;
    let record_bytes = std::mem::size_of::<(u32, u32)>();
    // Give the sorter an eighth of the dataset: half buffers records, half
    // is sort scratch, so roughly 16 runs spill to disk.
    let budget = n * record_bytes / 8;
    println!(
        "stream-sorting {n} records (~{} MiB) under a {} MiB budget",
        (n * record_bytes) >> 20,
        budget >> 20,
    );

    // A Zipf-1.2 stream: heavily duplicate-dominated, the regime where
    // DovetailSort's heavy-key buckets (carried across runs) shine.
    let dist = Distribution::Zipfian { s: 1.2 };
    let mut sorter: StreamSorter<u32, u32> =
        StreamSorter::with_config(StreamConfig::with_memory_budget(budget));
    for batch in batches_u32(&dist, n, 64 * 1024, 42) {
        sorter.push(&batch).expect("pushing a batch");
    }
    println!(
        "ingested: {} runs spilled ({} MiB), {} heavy keys carried",
        sorter.stats().spilled_runs,
        sorter.stats().spilled_bytes >> 20,
        sorter.stats().carried_heavy_keys,
    );

    // Drain the merged stream, verifying order on the fly.
    let start = std::time::Instant::now();
    let mut last = 0u32;
    let mut count = 0usize;
    for (key, _value) in sorter.finish().expect("final merge") {
        assert!(key >= last, "stream must be non-decreasing");
        last = key;
        count += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(count, n);
    println!(
        "merged {count} records in {secs:.3} s ({:.2} Mrec/s); max key {last}",
        count as f64 / secs / 1e6
    );
}
