//! The session front end: one engine per session, resources leased from
//! the shared governor and spill manager.

use crate::governor::{BudgetLease, GovernorConfig, MemoryGovernor};
use crate::metrics::m;
use crate::spillmgr::{SpillDirLease, SpillDirManager, SpillManagerConfig};
use dtsort::{IntegerKey, StreamConfig};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use stream::{
    Aggregator, FaultPlan, GroupByStats, GroupedStream, SortedStream, SpillIoHandle, SpillValue,
    StreamGroupBy, StreamSorter, StreamStats, StringKey, StringSortedStream, StringStreamSorter,
};

/// A session-scoped failure: the I/O error that broke *one* session,
/// tagged with the session id and tenant so a multi-tenant caller can
/// attribute the blast radius.  The source's [`io::ErrorKind`] is
/// preserved (an injected ENOSPC still reads as
/// [`io::ErrorKind::StorageFull`]), and a typed [`stream::SpillError`]
/// underneath stays reachable through [`SessionError::source_io`].
///
/// Quarantine contract: the failure is scoped to the session that hit it.
/// The shared spill I/O pool, the governor's grant pool and every other
/// session keep running; the failed session's budget lease and spill
/// subdirectory are still reclaimed when it drops.
#[derive(Debug)]
pub struct SessionError {
    /// Server-assigned session id (matches its `session-<id>` spill dir).
    pub session_id: u64,
    /// The tenant that opened the session.
    pub tenant: String,
    source: io::Error,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "session {:08} (tenant {}) failed: {}",
            self.session_id, self.tenant, self.source
        )
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl SessionError {
    pub fn new(session_id: u64, tenant: String, source: io::Error) -> Self {
        Self {
            session_id,
            tenant,
            source,
        }
    }

    /// Repacks into an [`io::Error`] that keeps the source's kind and
    /// carries `self` in the boxed slot ([`SessionError::from_io`] gets it
    /// back).
    pub fn into_io(self) -> io::Error {
        let kind = self.source.kind();
        io::Error::new(kind, self)
    }

    /// The underlying I/O error (e.g. to downcast further into
    /// [`stream::SpillError`]).
    pub fn source_io(&self) -> &io::Error {
        &self.source
    }

    /// Recovers the typed error from an [`io::Error`] produced by
    /// [`SessionError::into_io`].
    pub fn from_io(e: &io::Error) -> Option<&SessionError> {
        e.get_ref()?.downcast_ref()
    }
}

/// Tuning knobs of the [`SortServer`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// The global memory governor's ceiling, floor and admission policy.
    pub governor: GovernorConfig,
    /// The shared spill root and disk quota.
    pub spill: SpillManagerConfig,
    /// Template for every session's [`StreamConfig`] (compression, spill
    /// mode, sort tuning, ...).  The budget and spill directory fields are
    /// overridden per session by the leases.
    pub base: StreamConfig,
}

/// A multi-session sort service over the streaming engines.
///
/// Each opened session owns one engine ([`StreamSorter`],
/// [`StreamGroupBy`] or [`StringStreamSorter`]) wired to two leases: a
/// [`BudgetLease`] from the global [`MemoryGovernor`] (a *live* grant —
/// admitting more sessions shrinks it, and the engine reacts by spilling
/// early) and a private spill subdirectory from the shared
/// [`SpillDirManager`] (so sessions can never trample each other's runs).
/// All sessions share the process-wide work-stealing pool.
///
/// ```no_run
/// use server::{ServerConfig, SortServer};
///
/// let server = SortServer::new(ServerConfig::default()).unwrap();
/// let mut session = server.open_sort::<u64, u64>("tenant-a", 64 << 20).unwrap();
/// session.push(&[(3, 0), (1, 1)]).unwrap();
/// let sorted: Vec<(u64, u64)> = session.finish().unwrap().collect();
/// assert_eq!(sorted, vec![(1, 1), (3, 0)]);
/// ```
pub struct SortServer {
    governor: Arc<MemoryGovernor>,
    spill: Arc<SpillDirManager>,
    base: StreamConfig,
    session_seq: AtomicU64,
}

impl SortServer {
    pub fn new(cfg: ServerConfig) -> io::Result<Self> {
        // One I/O backend for the whole server: sessions share its worker
        // pool and queue, and the spill manager re-splits the in-flight
        // budget as sessions come and go.
        let io = SpillIoHandle::from_config(&cfg.base);
        Ok(Self {
            governor: MemoryGovernor::new(cfg.governor),
            spill: SpillDirManager::new(cfg.spill, io)?,
            base: cfg.base,
            session_seq: AtomicU64::new(0),
        })
    }

    /// The shared memory governor (grants, reclaim and fairness counters).
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.governor
    }

    /// The shared spill-directory manager (root, quota, charge meter).
    pub fn spill_manager(&self) -> &Arc<SpillDirManager> {
        &self.spill
    }

    /// Admits a session and leases its resources; blocks or fails per the
    /// governor's admission policy.
    fn open_core(&self, tenant: &str, requested_bytes: usize) -> io::Result<SessionCore> {
        let lease = self.governor.admit(tenant, requested_bytes)?;
        let id = self.session_seq.fetch_add(1, Ordering::Relaxed);
        let dir = self.spill.lease(id)?;
        if obs::enabled() {
            m().sessions_opened.incr();
        }
        Ok(SessionCore {
            id,
            tenant: tenant.to_string(),
            lease,
            dir,
            charged: 0,
            failed: false,
            opened: Instant::now(),
        })
    }

    /// The session's view of the shared spill I/O backend — the clean
    /// pool, or a fault-injecting decorator over it.  The decorator is
    /// per *handle*, so a faulted session cannot leak faults (or broken
    /// state) into its neighbors.
    fn session_io(&self, core: &SessionCore, faults: Option<FaultPlan>) -> SpillIoHandle {
        let io = core.dir.io().clone();
        match faults {
            Some(plan) => io.with_faults(plan),
            None => io,
        }
    }

    /// The session's engine config: the base template with the leased
    /// budget handle and private spill directory wired in.
    fn session_config(&self, core: &SessionCore) -> StreamConfig {
        let mut cfg = self.base.clone();
        cfg.memory_budget_bytes = core.lease.handle().get();
        cfg.budget = Some(core.lease.handle());
        cfg.spill_dir = Some(core.dir.path().to_path_buf());
        cfg
    }

    /// Opens a sorting session over integer keys (values may be pod or
    /// variable-length, per [`SpillValue`]).
    pub fn open_sort<K: IntegerKey, V: SpillValue>(
        &self,
        tenant: &str,
        requested_bytes: usize,
    ) -> io::Result<SortSession<K, V>> {
        self.open_sort_inner(tenant, requested_bytes, None)
    }

    /// [`open_sort`](Self::open_sort) with a deterministic [`FaultPlan`]
    /// injected into *this session's* view of the shared spill I/O
    /// backend (chaos testing).  Faults — and any broken state they leave
    /// behind — stay scoped to the returned session; every other session
    /// keeps the clean pool.
    pub fn open_sort_with_faults<K: IntegerKey, V: SpillValue>(
        &self,
        tenant: &str,
        requested_bytes: usize,
        plan: FaultPlan,
    ) -> io::Result<SortSession<K, V>> {
        self.open_sort_inner(tenant, requested_bytes, Some(plan))
    }

    fn open_sort_inner<K: IntegerKey, V: SpillValue>(
        &self,
        tenant: &str,
        requested_bytes: usize,
        faults: Option<FaultPlan>,
    ) -> io::Result<SortSession<K, V>> {
        let core = self.open_core(tenant, requested_bytes)?;
        let io = self.session_io(&core, faults);
        let sorter = StreamSorter::with_config_and_io(self.session_config(&core), io);
        Ok(SortSession { sorter, core })
    }

    /// Opens a streaming group-by session.
    pub fn open_group<K: IntegerKey, G: Aggregator>(
        &self,
        tenant: &str,
        agg: G,
        requested_bytes: usize,
    ) -> io::Result<GroupSession<K, G>> {
        self.open_group_inner(tenant, agg, requested_bytes, None)
    }

    /// [`open_group`](Self::open_group) with a session-scoped
    /// [`FaultPlan`] (see [`open_sort_with_faults`](Self::open_sort_with_faults)).
    pub fn open_group_with_faults<K: IntegerKey, G: Aggregator>(
        &self,
        tenant: &str,
        agg: G,
        requested_bytes: usize,
        plan: FaultPlan,
    ) -> io::Result<GroupSession<K, G>> {
        self.open_group_inner(tenant, agg, requested_bytes, Some(plan))
    }

    fn open_group_inner<K: IntegerKey, G: Aggregator>(
        &self,
        tenant: &str,
        agg: G,
        requested_bytes: usize,
        faults: Option<FaultPlan>,
    ) -> io::Result<GroupSession<K, G>> {
        let core = self.open_core(tenant, requested_bytes)?;
        let io = self.session_io(&core, faults);
        let gb = StreamGroupBy::with_config_and_io(agg, self.session_config(&core), io);
        Ok(GroupSession { gb, core })
    }

    /// Opens a sorting session over string keys (`String` / `Vec<u8>`).
    pub fn open_string_sort<K: StringKey, V: SpillValue>(
        &self,
        tenant: &str,
        requested_bytes: usize,
    ) -> io::Result<StringSortSession<K, V>> {
        self.open_string_sort_inner(tenant, requested_bytes, None)
    }

    /// [`open_string_sort`](Self::open_string_sort) with a session-scoped
    /// [`FaultPlan`] (see [`open_sort_with_faults`](Self::open_sort_with_faults)).
    pub fn open_string_sort_with_faults<K: StringKey, V: SpillValue>(
        &self,
        tenant: &str,
        requested_bytes: usize,
        plan: FaultPlan,
    ) -> io::Result<StringSortSession<K, V>> {
        self.open_string_sort_inner(tenant, requested_bytes, Some(plan))
    }

    fn open_string_sort_inner<K: StringKey, V: SpillValue>(
        &self,
        tenant: &str,
        requested_bytes: usize,
        faults: Option<FaultPlan>,
    ) -> io::Result<StringSortSession<K, V>> {
        let core = self.open_core(tenant, requested_bytes)?;
        let io = self.session_io(&core, faults);
        let sorter = StringStreamSorter::with_config_and_io(self.session_config(&core), io);
        Ok(StringSortSession { sorter, core })
    }
}

/// The leases + accounting every session kind shares.  Dropping it ends
/// the session: the budget returns to the governor's pool (waking queued
/// admissions), the spill subdirectory is removed, and the session's
/// open-to-end latency is recorded.
struct SessionCore {
    id: u64,
    tenant: String,
    lease: BudgetLease,
    dir: SpillDirLease,
    /// Durable spill bytes already charged against the disk quota.
    charged: u64,
    /// Quarantine flag: the first I/O failure marks the session failed
    /// (and bumps `server.sessions_failed` exactly once).
    failed: bool,
    opened: Instant,
}

impl SessionCore {
    /// Quarantines the session: records the failure (once) and wraps the
    /// error as a [`SessionError`] naming this session, preserving the
    /// source's [`io::ErrorKind`].  Only this session sees the error —
    /// the shared pool and its neighbors are untouched, and the leases
    /// still release on drop.
    fn fail(&mut self, source: io::Error) -> io::Error {
        if !self.failed {
            self.failed = true;
            if obs::enabled() {
                m().sessions_failed.incr();
            }
        }
        if SessionError::from_io(&source).is_some() {
            return source;
        }
        SessionError::new(self.id, self.tenant.clone(), source).into_io()
    }

    /// Charges the growth of the engine's durable spill bytes against the
    /// shared disk quota.
    fn charge_spill(&mut self, spilled_bytes: u64) -> io::Result<()> {
        if spilled_bytes > self.charged {
            if let Err(e) = self.dir.charge(spilled_bytes - self.charged) {
                return Err(self.fail(e));
            }
            self.charged = spilled_bytes;
        }
        Ok(())
    }
}

impl Drop for SessionCore {
    fn drop(&mut self) {
        if obs::enabled() {
            m().session_ns.record_duration(self.opened.elapsed());
        }
    }
}

/// A sorting session: a [`StreamSorter`] bound to its leases.
pub struct SortSession<K: IntegerKey, V: SpillValue> {
    sorter: StreamSorter<K, V>,
    core: SessionCore,
}

impl<K: IntegerKey, V: SpillValue> SortSession<K, V> {
    /// Appends a batch; spilled bytes are charged to the disk quota.  An
    /// I/O failure quarantines *this* session (the error comes back as a
    /// [`SessionError`] with the source kind preserved); sibling sessions
    /// on the shared backend are unaffected.
    pub fn push(&mut self, records: &[(K, V)]) -> io::Result<()> {
        if let Err(e) = self.sorter.push(records) {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)
    }

    /// Appends one record.
    pub fn push_record(&mut self, key: K, value: V) -> io::Result<()> {
        if let Err(e) = self.sorter.push_record(key, value) {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)
    }

    /// Applies a shrunk grant right now (see
    /// [`StreamSorter::shrink_to_budget`]); `push` re-checks per chunk
    /// anyway.
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.sorter.shrink_to_budget()
    }

    /// The session's current grant in bytes (live: may shrink).
    pub fn granted_bytes(&self) -> usize {
        self.core.lease.granted_bytes()
    }

    /// Engine counters (see [`StreamStats`]).
    pub fn stats(&self) -> &StreamStats {
        self.sorter.stats()
    }

    /// Finishes the sort; the leases ride inside the returned stream and
    /// are released when it drops.
    pub fn finish(mut self) -> io::Result<SessionStream<K, V>> {
        if let Err(e) = self.sorter.flush_spills() {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)?;
        match self.sorter.finish() {
            Ok(inner) => Ok(SessionStream {
                inner,
                _core: self.core,
            }),
            Err(e) => Err(self.core.fail(e)),
        }
    }

    /// [`SortSession::finish`], materialized via the parallel merge.
    pub fn finish_vec(mut self) -> io::Result<Vec<(K, V)>> {
        if let Err(e) = self.sorter.flush_spills() {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)?;
        self.sorter.finish_vec().map_err(|e| self.core.fail(e))
    }
}

/// Sorted output of a [`SortSession`]; holds the session's leases until
/// dropped.
pub struct SessionStream<K: IntegerKey, V: SpillValue> {
    inner: SortedStream<K, V>,
    _core: SessionCore,
}

impl<K: IntegerKey, V: SpillValue> Iterator for SessionStream<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<K: IntegerKey, V: SpillValue> ExactSizeIterator for SessionStream<K, V> {}

/// A group-by session: a [`StreamGroupBy`] bound to its leases.
pub struct GroupSession<K: IntegerKey, G: Aggregator> {
    gb: StreamGroupBy<K, G>,
    core: SessionCore,
}

impl<K: IntegerKey, G: Aggregator> GroupSession<K, G> {
    /// Appends a batch; failures quarantine this session only (see
    /// [`SortSession::push`]).
    pub fn push(&mut self, records: &[(K, G::Input)]) -> io::Result<()> {
        if let Err(e) = self.gb.push(records) {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.gb.stats().spilled_bytes)
    }

    pub fn push_record(&mut self, key: K, value: G::Input) -> io::Result<()> {
        if let Err(e) = self.gb.push_record(key, value) {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.gb.stats().spilled_bytes)
    }

    /// See [`StreamGroupBy::shrink_to_budget`].
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.gb.shrink_to_budget()
    }

    /// The session's current grant in bytes (live: may shrink).
    pub fn granted_bytes(&self) -> usize {
        self.core.lease.granted_bytes()
    }

    /// Engine counters (see [`GroupByStats`]).
    pub fn stats(&self) -> &GroupByStats {
        self.gb.stats()
    }

    /// Finishes the group-by; leases ride inside the returned stream.
    pub fn finish(mut self) -> io::Result<GroupSessionStream<K, G>> {
        if let Err(e) = self.gb.flush_spills() {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.gb.stats().spilled_bytes)?;
        match self.gb.finish() {
            Ok(inner) => Ok(GroupSessionStream {
                inner,
                _core: self.core,
            }),
            Err(e) => Err(self.core.fail(e)),
        }
    }

    pub fn finish_vec(self) -> io::Result<Vec<(K, G::Acc)>> {
        Ok(self.finish()?.collect())
    }
}

/// Grouped output of a [`GroupSession`]; holds the session's leases until
/// dropped.
pub struct GroupSessionStream<K: IntegerKey, G: Aggregator> {
    inner: GroupedStream<K, G>,
    _core: SessionCore,
}

impl<K: IntegerKey, G: Aggregator> Iterator for GroupSessionStream<K, G> {
    type Item = (K, G::Acc);

    fn next(&mut self) -> Option<(K, G::Acc)> {
        self.inner.next()
    }
}

/// A string-keyed sorting session: a [`StringStreamSorter`] bound to its
/// leases.
pub struct StringSortSession<K: StringKey, V: SpillValue> {
    sorter: StringStreamSorter<K, V>,
    core: SessionCore,
}

impl<K: StringKey, V: SpillValue> StringSortSession<K, V> {
    /// Appends a batch; failures quarantine this session only (see
    /// [`SortSession::push`]).
    pub fn push(&mut self, records: &[(K, V)]) -> io::Result<()> {
        if let Err(e) = self.sorter.push(records) {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)
    }

    pub fn push_record(&mut self, key: K, value: V) -> io::Result<()> {
        if let Err(e) = self.sorter.push_record(key, value) {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)
    }

    /// See [`StringStreamSorter::shrink_to_budget`].
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.sorter.shrink_to_budget()
    }

    /// The session's current grant in bytes (live: may shrink).
    pub fn granted_bytes(&self) -> usize {
        self.core.lease.granted_bytes()
    }

    pub fn stats(&self) -> &StreamStats {
        self.sorter.stats()
    }

    /// Finishes the sort; leases ride inside the returned stream.
    pub fn finish(mut self) -> io::Result<StringSessionStream<K, V>> {
        if let Err(e) = self.sorter.flush_spills() {
            return Err(self.core.fail(e));
        }
        self.core.charge_spill(self.sorter.stats().spilled_bytes)?;
        match self.sorter.finish() {
            Ok(inner) => Ok(StringSessionStream {
                inner,
                _core: self.core,
            }),
            Err(e) => Err(self.core.fail(e)),
        }
    }

    pub fn finish_vec(self) -> io::Result<Vec<(K, V)>> {
        Ok(self.finish()?.collect())
    }
}

/// Sorted output of a [`StringSortSession`]; holds the session's leases
/// until dropped.
pub struct StringSessionStream<K: StringKey, V: SpillValue> {
    inner: StringSortedStream<K, V>,
    _core: SessionCore,
}

impl<K: StringKey, V: SpillValue> Iterator for StringSessionStream<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::AdmissionPolicy;
    use stream::SumAgg;

    fn tiny_server(global: usize, floor: usize) -> SortServer {
        SortServer::new(ServerConfig {
            governor: GovernorConfig {
                global_budget_bytes: global,
                session_floor_bytes: floor,
                admission: AdmissionPolicy::Reject,
            },
            spill: SpillManagerConfig::default(),
            base: StreamConfig {
                sort: dtsort::SortConfig {
                    base_case_threshold: 64,
                    ..Default::default()
                },
                ..StreamConfig::default()
            },
        })
        .unwrap()
    }

    #[test]
    fn interleaved_sessions_sort_spill_and_release() {
        let server = tiny_server(64 << 10, 8 << 10);
        let mut a = server.open_sort::<u32, u32>("alice", 64 << 10).unwrap();
        // Admitting bob reclaims part of alice's grant; alice reacts by
        // spilling early, not by failing.
        let mut b = server.open_sort::<u32, u32>("bob", 64 << 10).unwrap();
        assert!(a.granted_bytes() < 64 << 10);
        assert_eq!(server.governor().reclaims(), 1);
        let input_a: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i.rotate_left(9), i)).collect();
        let input_b: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i.rotate_left(21), i)).collect();
        for (ca, cb) in input_a.chunks(997).zip(input_b.chunks(997)) {
            a.push(ca).unwrap();
            b.push(cb).unwrap();
        }
        assert!(a.stats().spilled_runs > 0 && b.stats().spilled_runs > 0);
        assert!(
            server.spill_manager().charged_bytes() > 0,
            "durable spill bytes must be charged to the quota"
        );
        let sort = |mut v: Vec<(u32, u32)>| {
            v.sort_by_key(|r| r.0);
            v
        };
        let got_a: Vec<(u32, u32)> = a.finish().unwrap().collect();
        assert_eq!(got_a, sort(input_a));
        let got_b = b.finish_vec().unwrap();
        assert_eq!(got_b, sort(input_b));
        assert_eq!(server.governor().live_sessions(), 0);
        assert_eq!(server.governor().bytes_granted(), 0);
        assert_eq!(server.spill_manager().charged_bytes(), 0);
    }

    #[test]
    fn group_and_string_sessions_share_the_same_plumbing() {
        let server = tiny_server(128 << 10, 8 << 10);
        let mut gb = server
            .open_group::<u32, SumAgg>("g", SumAgg, 32 << 10)
            .unwrap();
        for i in 0..30_000u64 {
            gb.push_record((i % 64) as u32, i).unwrap();
        }
        assert!(gb.stats().spilled_runs > 0);
        let sums = gb.finish_vec().unwrap();
        assert_eq!(sums.len(), 64);

        let mut s = server
            .open_string_sort::<String, u32>("s", 32 << 10)
            .unwrap();
        for i in 0..5_000u32 {
            s.push_record(format!("key-{:05}", i % 500), i).unwrap();
        }
        let got = s.finish_vec().unwrap();
        assert_eq!(got.len(), 5_000);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(server.governor().live_sessions(), 0);
    }

    #[test]
    fn batched_backend_sessions_share_one_io_and_stay_correct() {
        let server = SortServer::new(ServerConfig {
            governor: GovernorConfig {
                global_budget_bytes: 64 << 10,
                session_floor_bytes: 8 << 10,
                admission: AdmissionPolicy::Reject,
            },
            spill: SpillManagerConfig::default(),
            base: StreamConfig {
                spill_io: dtsort::SpillIoMode::Batched,
                spill_io_workers: 2,
                spill_io_queue_depth: 16,
                sort: dtsort::SortConfig {
                    base_case_threshold: 64,
                    ..Default::default()
                },
                ..StreamConfig::default()
            },
        })
        .unwrap();
        let mut a = server.open_sort::<u32, u32>("alice", 32 << 10).unwrap();
        let mut b = server.open_sort::<u32, u32>("bob", 32 << 10).unwrap();
        assert_eq!(server.spill_manager().live_leases(), 2);
        let input_a: Vec<(u32, u32)> = (0..15_000u32).map(|i| (i.rotate_left(11), i)).collect();
        let input_b: Vec<(u32, u32)> = (0..15_000u32).map(|i| (i.rotate_left(5), i)).collect();
        for (ca, cb) in input_a.chunks(1009).zip(input_b.chunks(1009)) {
            a.push(ca).unwrap();
            b.push(cb).unwrap();
        }
        assert!(a.stats().spilled_runs > 0 && b.stats().spilled_runs > 0);
        let sort = |mut v: Vec<(u32, u32)>| {
            v.sort_by_key(|r| r.0);
            v
        };
        let got_a: Vec<(u32, u32)> = a.finish().unwrap().collect();
        let got_b: Vec<(u32, u32)> = b.finish().unwrap().collect();
        assert_eq!(got_a, sort(input_a));
        assert_eq!(got_b, sort(input_b));
        assert_eq!(server.spill_manager().live_leases(), 0);
    }

    #[test]
    fn spill_quota_surfaces_as_a_push_error() {
        let server = SortServer::new(ServerConfig {
            governor: GovernorConfig {
                global_budget_bytes: 16 << 10,
                session_floor_bytes: 8 << 10,
                admission: AdmissionPolicy::Reject,
            },
            spill: SpillManagerConfig {
                root: None,
                quota_bytes: 4 << 10,
            },
            base: StreamConfig::default(),
        })
        .unwrap();
        let mut s = server.open_sort::<u32, u32>("hog", 16 << 10).unwrap();
        let batch: Vec<(u32, u32)> = (0..200_000u32).map(|i| (i.rotate_left(7), i)).collect();
        let assert_typed_quota = |e: &io::Error| {
            assert!(e.to_string().contains("quota"), "got: {e}");
            assert_eq!(e.kind(), io::ErrorKind::QuotaExceeded);
            let session = SessionError::from_io(e).expect("typed SessionError");
            assert_eq!(session.tenant, "hog");
            assert!(
                stream::SpillError::from_io(session.source_io()).is_some(),
                "SpillError must stay reachable under the session wrapper"
            );
        };
        let mut failed = false;
        for chunk in batch.chunks(4096) {
            if let Err(e) = s.push(chunk) {
                assert_typed_quota(&e);
                failed = true;
                break;
            }
        }
        // The pipelined writer reports durable bytes with a lag, so the
        // error may surface on a later push or at finish; force the issue.
        if !failed {
            let err = s.finish().err().expect("quota must be enforced");
            assert_typed_quota(&err);
        }
    }
}
