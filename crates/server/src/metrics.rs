//! Registry handles for the server's metrics (same pattern as
//! `stream::metrics`: one lazily registered bundle into [`obs::global`],
//! every call site gated on [`obs::enabled`]).
//!
//! Metric names are the stable external contract:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `server.sessions_active` | gauge | live sessions holding a budget lease |
//! | `server.sessions_opened` | counter | sessions opened over the server's life |
//! | `server.session_ns` | histogram | open-to-finished session latency |
//! | `server.sessions_failed` | counter | sessions quarantined by an I/O failure (counted once per session) |
//! | `governor.bytes_granted` | gauge | bytes currently granted across live sessions |
//! | `governor.admissions` | counter | sessions admitted |
//! | `governor.rejections` | counter | admissions rejected (Reject policy) |
//! | `governor.reclaims` | counter | live grants shrunk to make room |
//! | `governor.admission_wait_ns` | histogram | admit-call latency incl. queue wait |
//! | `spillmgr.bytes_charged` | counter | durable spill bytes charged to the quota |
//! | `spillmgr.quota_rejections` | counter | charges rejected by the quota |

use std::sync::OnceLock;

pub(crate) struct ServerMetrics {
    pub sessions_active: obs::Gauge,
    pub sessions_opened: obs::Counter,
    pub session_ns: obs::Histogram,
    pub sessions_failed: obs::Counter,
    pub bytes_granted: obs::Gauge,
    pub admissions: obs::Counter,
    pub rejections: obs::Counter,
    pub reclaims: obs::Counter,
    pub admission_wait_ns: obs::Histogram,
    pub spill_bytes_charged: obs::Counter,
    pub quota_rejections: obs::Counter,
}

/// The handle bundle, registered in [`obs::global`] on first use.  Call
/// only from behind an `obs::enabled()` check.
pub(crate) fn m() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        ServerMetrics {
            sessions_active: reg.gauge("server.sessions_active"),
            sessions_opened: reg.counter("server.sessions_opened"),
            session_ns: reg.histogram("server.session_ns"),
            sessions_failed: reg.counter("server.sessions_failed"),
            bytes_granted: reg.gauge("governor.bytes_granted"),
            admissions: reg.counter("governor.admissions"),
            rejections: reg.counter("governor.rejections"),
            reclaims: reg.counter("governor.reclaims"),
            admission_wait_ns: reg.histogram("governor.admission_wait_ns"),
            spill_bytes_charged: reg.counter("spillmgr.bytes_charged"),
            quota_rejections: reg.counter("spillmgr.quota_rejections"),
        }
    })
}
