//! # server — multi-session sort service over the streaming engines
//!
//! DTSort (PPoPP 2024) is framed as the sort primitive underneath larger
//! data systems; this crate is that system's front end.  A [`SortServer`]
//! hosts many concurrent **sessions**, each owning one streaming engine
//! ([`stream::StreamSorter`], [`stream::StreamGroupBy`], or the
//! string-keyed variant), all multiplexed over the process-wide
//! work-stealing pool.  Two shared resource managers arbitrate what the
//! single-caller library used to assume it owned outright:
//!
//! * [`MemoryGovernor`] — one byte ceiling across all sessions.
//!   Admission control (queue or reject past the ceiling), proportional
//!   grants with a per-session floor, and **live reclaim**: admitting a
//!   new session shrinks existing grants through their
//!   [`dtsort::BudgetHandle`]s, and the engines react by spilling early
//!   rather than erroring.  Per-tenant fairness counters record who got
//!   what.
//! * [`SpillDirManager`] — one spill root with a global byte quota,
//!   per-session subdirectories (no two sessions can trample each other's
//!   run files), and orphan cleanup on startup.
//!
//! Observability rides on the `obs` crate: `server.sessions_active`,
//! `governor.bytes_granted`, `governor.reclaims`, and admission-wait /
//! session-latency histograms (see [`crate::metrics`'s name table in the
//! source](crate)).  Everything is off unless `obs` is enabled.

mod governor;
mod metrics;
mod session;
mod spillmgr;

pub use governor::{AdmissionPolicy, BudgetLease, GovernorConfig, MemoryGovernor, TenantCounters};
pub use session::{
    GroupSession, GroupSessionStream, ServerConfig, SessionError, SessionStream, SortServer,
    SortSession, StringSessionStream, StringSortSession,
};
pub use spillmgr::{SpillDirLease, SpillDirManager, SpillManagerConfig};
