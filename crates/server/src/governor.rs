//! The global memory governor: one byte ceiling arbitrated across every
//! live session.
//!
//! Each admitted session receives a [`BudgetLease`] wrapping a live
//! [`dtsort::BudgetHandle`].  The streaming engines re-read that handle on
//! every push chunk, so the governor can *reclaim* memory from a running
//! session — shrink its grant — and the session reacts by spilling its
//! buffered run early instead of erroring.  Grants are **proportional
//! with a floor**: every session is guaranteed
//! [`GovernorConfig::session_floor_bytes`], and the remaining pool is
//! split in proportion to what each session asked for beyond the floor.
//!
//! Admission is controlled: a session whose floor cannot fit under
//! [`GovernorConfig::global_budget_bytes`] either queues (blocking until
//! a lease is released) or is rejected immediately, per
//! [`AdmissionPolicy`].  The wait is recorded in the
//! `governor.admission_wait_ns` histogram.

use crate::metrics::m;
use dtsort::BudgetHandle;
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What [`MemoryGovernor::admit`] does when the global budget cannot fit
/// another session floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block until enough leases are released (the default: bursty clients
    /// queue instead of failing).
    Queue,
    /// Block like [`Queue`](Self::Queue), but give up with
    /// [`io::ErrorKind::TimedOut`] once the deadline passes — the shape a
    /// fault-tolerant client wants: bounded waiting instead of an
    /// indefinite park behind a wedged session.
    QueueWithTimeout(Duration),
    /// Fail fast with [`io::ErrorKind::WouldBlock`].
    Reject,
}

/// Tuning knobs of the [`MemoryGovernor`].
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Byte ceiling across *all* live sessions' grants.
    pub global_budget_bytes: usize,
    /// Minimum grant per admitted session.  Admission guarantees
    /// `live_sessions * floor <= global`, so every session always keeps at
    /// least a floor-sized run buffer no matter how crowded the server is.
    pub session_floor_bytes: usize,
    /// Queue or reject when the floor does not fit.
    pub admission: AdmissionPolicy,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            global_budget_bytes: 256 << 20,
            session_floor_bytes: 1 << 20,
            admission: AdmissionPolicy::Queue,
        }
    }
}

/// Per-tenant fairness counters ([`MemoryGovernor::fairness`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Sessions this tenant has been admitted.
    pub sessions_admitted: u64,
    /// Sessions rejected (only under [`AdmissionPolicy::Reject`]).
    pub sessions_rejected: u64,
    /// Cumulative bytes granted at admission time.
    pub bytes_granted: u64,
    /// Times a live grant of this tenant was shrunk to make room.
    pub reclaims: u64,
}

struct Grant {
    handle: BudgetHandle,
    requested: usize,
    tenant: String,
}

#[derive(Default)]
struct GovState {
    grants: HashMap<u64, Grant>,
    next_id: u64,
    fairness: HashMap<String, TenantCounters>,
    total_granted: usize,
    reclaims: u64,
}

/// The arbiter: admission control + proportional grants + live reclaim.
/// Cheap to share (`Arc`); every [`BudgetLease`] keeps it alive.
pub struct MemoryGovernor {
    cfg: GovernorConfig,
    state: Mutex<GovState>,
    released: Condvar,
}

impl MemoryGovernor {
    pub fn new(cfg: GovernorConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            state: Mutex::new(GovState::default()),
            released: Condvar::new(),
        })
    }

    /// The guaranteed per-session floor (clamped into the global budget).
    fn floor(&self) -> usize {
        self.cfg
            .session_floor_bytes
            .min(self.cfg.global_budget_bytes)
            .max(1)
    }

    /// Admits a session asking for `requested_bytes`, blocking or failing
    /// per [`AdmissionPolicy`] while the global budget is full.  The
    /// returned lease's [`BudgetHandle`] is live: later admissions may
    /// shrink it (never below the floor), and dropping the lease returns
    /// the grant to the pool.
    pub fn admit(
        self: &Arc<Self>,
        tenant: &str,
        requested_bytes: usize,
    ) -> io::Result<BudgetLease> {
        let floor = self.floor();
        let requested = requested_bytes.clamp(floor, self.cfg.global_budget_bytes);
        let wait_start = obs::enabled().then(Instant::now);
        let deadline = match self.cfg.admission {
            AdmissionPolicy::QueueWithTimeout(timeout) => Some(Instant::now() + timeout),
            _ => None,
        };
        let mut state = self.state.lock().unwrap();
        // Admission invariant: every live session can be paid its floor.
        while (state.grants.len() + 1) * floor > self.cfg.global_budget_bytes {
            match self.cfg.admission {
                AdmissionPolicy::Reject => {
                    state
                        .fairness
                        .entry(tenant.to_string())
                        .or_default()
                        .sessions_rejected += 1;
                    if obs::enabled() {
                        m().rejections.incr();
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!(
                            "admission rejected: {} live sessions exhaust the \
                             {}-byte global budget",
                            state.grants.len(),
                            self.cfg.global_budget_bytes
                        ),
                    ));
                }
                AdmissionPolicy::Queue => state = self.released.wait(state).unwrap(),
                AdmissionPolicy::QueueWithTimeout(_) => {
                    let deadline = deadline.expect("deadline set for QueueWithTimeout");
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        state
                            .fairness
                            .entry(tenant.to_string())
                            .or_default()
                            .sessions_rejected += 1;
                        if obs::enabled() {
                            m().rejections.incr();
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "admission timed out: {} live sessions still exhaust \
                                 the {}-byte global budget",
                                state.grants.len(),
                                self.cfg.global_budget_bytes
                            ),
                        ));
                    }
                    // A spurious wakeup just re-checks the deadline.
                    state = self.released.wait_timeout(state, left).unwrap().0;
                }
            }
        }
        let id = state.next_id;
        state.next_id += 1;
        let handle = BudgetHandle::new(0);
        state.grants.insert(
            id,
            Grant {
                handle: handle.clone(),
                requested,
                tenant: tenant.to_string(),
            },
        );
        self.rebalance_locked(&mut state);
        let granted = handle.get();
        let tc = state.fairness.entry(tenant.to_string()).or_default();
        tc.sessions_admitted += 1;
        tc.bytes_granted += granted as u64;
        if obs::enabled() {
            if let Some(start) = wait_start {
                m().admission_wait_ns.record_duration(start.elapsed());
            }
            m().admissions.incr();
        }
        drop(state);
        Ok(BudgetLease {
            governor: Arc::clone(self),
            id,
            handle,
        })
    }

    /// Recomputes every live grant: floor for everyone, then the remaining
    /// pool proportional to each session's request beyond the floor
    /// (capped at the request — the governor never grants more than was
    /// asked for).  A grant that comes out smaller than its current value
    /// is a **reclaim**: the handle shrinks in place and the session
    /// spills early on its next push.
    fn rebalance_locked(&self, state: &mut GovState) {
        let floor = self.floor();
        let n = state.grants.len();
        if n == 0 {
            state.total_granted = 0;
            if obs::enabled() {
                m().bytes_granted.set(0);
                m().sessions_active.set(0);
            }
            return;
        }
        let pool = self.cfg.global_budget_bytes - n * floor;
        let total_excess: u128 = state
            .grants
            .values()
            .map(|g| (g.requested - floor) as u128)
            .sum();
        let mut total = 0usize;
        let mut reclaimed = 0u64;
        let mut reclaimed_tenants: Vec<String> = Vec::new();
        for grant in state.grants.values() {
            let excess = (grant.requested - floor) as u128;
            let extra = (pool as u128 * excess)
                .checked_div(total_excess)
                .unwrap_or(0) as usize;
            let target = floor + extra.min(grant.requested - floor);
            let old = grant.handle.get();
            if old > target {
                reclaimed += 1;
                reclaimed_tenants.push(grant.tenant.clone());
            }
            grant.handle.set(target);
            total += target;
        }
        debug_assert!(total <= self.cfg.global_budget_bytes);
        state.total_granted = total;
        state.reclaims += reclaimed;
        for tenant in reclaimed_tenants {
            state.fairness.entry(tenant).or_default().reclaims += 1;
        }
        if obs::enabled() {
            let metrics = m();
            metrics.bytes_granted.set(total as i64);
            metrics.sessions_active.set(n as i64);
            metrics.reclaims.add(reclaimed);
        }
    }

    fn release(&self, id: u64) {
        let mut state = self.state.lock().unwrap();
        state.grants.remove(&id);
        self.rebalance_locked(&mut state);
        drop(state);
        self.released.notify_all();
    }

    /// Total bytes currently granted across live sessions.
    pub fn bytes_granted(&self) -> usize {
        self.state.lock().unwrap().total_granted
    }

    /// Live sessions holding a lease.
    pub fn live_sessions(&self) -> usize {
        self.state.lock().unwrap().grants.len()
    }

    /// Times any live grant was shrunk to make room for a newcomer.
    pub fn reclaims(&self) -> u64 {
        self.state.lock().unwrap().reclaims
    }

    /// Per-tenant fairness counters, sorted by tenant name.
    pub fn fairness(&self) -> Vec<(String, TenantCounters)> {
        let state = self.state.lock().unwrap();
        let mut rows: Vec<(String, TenantCounters)> = state
            .fairness
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

/// RAII grant from [`MemoryGovernor::admit`]: holds the session's byte
/// budget until dropped, at which point the bytes return to the pool and
/// queued admissions are woken.
pub struct BudgetLease {
    governor: Arc<MemoryGovernor>,
    id: u64,
    handle: BudgetHandle,
}

impl std::fmt::Debug for BudgetLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetLease")
            .field("id", &self.id)
            .field("granted_bytes", &self.handle.get())
            .finish()
    }
}

impl BudgetLease {
    /// The live budget handle to thread into
    /// [`dtsort::StreamConfig::with_budget_handle`].
    pub fn handle(&self) -> BudgetHandle {
        self.handle.clone()
    }

    /// The grant as of now (a later admission may shrink it).
    pub fn granted_bytes(&self) -> usize {
        self.handle.get()
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.governor.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov(global: usize, floor: usize, admission: AdmissionPolicy) -> Arc<MemoryGovernor> {
        MemoryGovernor::new(GovernorConfig {
            global_budget_bytes: global,
            session_floor_bytes: floor,
            admission,
        })
    }

    #[test]
    fn single_session_gets_its_request_up_to_the_ceiling() {
        let g = gov(1 << 20, 1 << 10, AdmissionPolicy::Reject);
        let lease = g.admit("a", 256 << 10).unwrap();
        assert_eq!(lease.granted_bytes(), 256 << 10);
        let big = g.admit("a", 64 << 20).unwrap();
        assert!(big.granted_bytes() <= (1 << 20) - lease.granted_bytes().min(1 << 20));
        drop(big);
        drop(lease);
        assert_eq!(g.bytes_granted(), 0);
        assert_eq!(g.live_sessions(), 0);
    }

    #[test]
    fn grants_are_proportional_with_a_floor_and_shrink_live_handles() {
        let g = gov(1 << 20, 64 << 10, AdmissionPolicy::Reject);
        // One greedy session takes (almost) everything...
        let a = g.admit("alice", 1 << 20).unwrap();
        assert_eq!(a.granted_bytes(), 1 << 20);
        // ...until a second one arrives: the live handle shrinks in place.
        let b = g.admit("bob", 1 << 20).unwrap();
        assert!(a.granted_bytes() < 1 << 20, "reclaim must shrink a's grant");
        assert!(a.granted_bytes() >= 64 << 10, "floor holds");
        assert!(b.granted_bytes() >= 64 << 10);
        assert!(a.granted_bytes() + b.granted_bytes() <= 1 << 20);
        assert_eq!(g.reclaims(), 1);
        // A small request stays between floor and request; the total
        // never exceeds the ceiling.
        let c = g.admit("carol", 80 << 10).unwrap();
        assert!(c.granted_bytes() >= 64 << 10 && c.granted_bytes() <= 80 << 10);
        assert!(a.granted_bytes() + b.granted_bytes() + c.granted_bytes() <= 1 << 20);
        let fair = g.fairness();
        assert_eq!(fair.len(), 3);
        assert!(fair.iter().all(|(_, t)| t.sessions_admitted == 1));
        drop(b);
        drop(c);
        // Releases rebalance upward again.
        assert_eq!(a.granted_bytes(), 1 << 20);
        drop(a);
    }

    #[test]
    fn reject_policy_fails_fast_when_floors_do_not_fit() {
        let g = gov(256 << 10, 128 << 10, AdmissionPolicy::Reject);
        let _a = g.admit("a", 128 << 10).unwrap();
        let _b = g.admit("b", 128 << 10).unwrap();
        let err = g.admit("c", 1).expect_err("third floor cannot fit");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let fair = g.fairness();
        let c = &fair.iter().find(|(t, _)| t == "c").unwrap().1;
        assert_eq!(c.sessions_rejected, 1);
        assert_eq!(c.sessions_admitted, 0);
    }

    #[test]
    fn queue_with_timeout_gives_up_with_timed_out() {
        let g = gov(
            256 << 10,
            128 << 10,
            AdmissionPolicy::QueueWithTimeout(std::time::Duration::from_millis(30)),
        );
        let _a = g.admit("a", 128 << 10).unwrap();
        let _b = g.admit("b", 128 << 10).unwrap();
        let start = std::time::Instant::now();
        let err = g.admit("c", 1).expect_err("third floor cannot fit");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(30),
            "must actually wait out the deadline"
        );
        let fair = g.fairness();
        let c = &fair.iter().find(|(t, _)| t == "c").unwrap().1;
        assert_eq!(c.sessions_rejected, 1);
    }

    #[test]
    fn queue_with_timeout_admits_when_a_lease_releases_in_time() {
        let g = gov(
            256 << 10,
            128 << 10,
            AdmissionPolicy::QueueWithTimeout(std::time::Duration::from_secs(30)),
        );
        let a = g.admit("a", 128 << 10).unwrap();
        let _b = g.admit("b", 128 << 10).unwrap();
        let g2 = Arc::clone(&g);
        let waiter =
            std::thread::spawn(move || g2.admit("c", 128 << 10).map(|l| l.granted_bytes()));
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!waiter.is_finished(), "admission must be queued");
        drop(a);
        let granted = waiter.join().unwrap().unwrap();
        assert!(granted >= 128 << 10);
    }

    #[test]
    fn queue_policy_blocks_until_a_lease_releases() {
        let g = gov(256 << 10, 128 << 10, AdmissionPolicy::Queue);
        let a = g.admit("a", 128 << 10).unwrap();
        let _b = g.admit("b", 128 << 10).unwrap();
        let g2 = Arc::clone(&g);
        let waiter =
            std::thread::spawn(move || g2.admit("c", 128 << 10).map(|l| l.granted_bytes()));
        // Give the waiter time to park on the condvar, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!waiter.is_finished(), "admission must be queued");
        drop(a);
        let granted = waiter.join().unwrap().unwrap();
        assert!(granted >= 128 << 10);
    }
}
