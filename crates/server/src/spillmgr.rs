//! The shared spill-directory manager: one root directory, one byte
//! quota, one subdirectory per session.
//!
//! Every session spills into its own `session-<id>` subdirectory (leased
//! via [`SpillDirManager::lease`] and removed when the lease drops), so
//! concurrent sessions can never trample each other's run files.  On
//! startup the manager removes **orphaned** `session-*` subdirectories
//! left in a user-provided root by a crashed previous process.
//!
//! Disk is governed like memory: sessions [`charge`](SpillDirLease::charge)
//! their durable spill bytes against the global
//! [`SpillManagerConfig::quota_bytes`], and a charge past the quota fails
//! *before* more disk is consumed, as a typed [`stream::SpillError`] with
//! [`std::io::ErrorKind::QuotaExceeded`] naming the session's spill
//! directory and the bytes that pushed it over.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use stream::{SpillError, SpillIoHandle};

/// Distinguishes concurrent managers within one process (same fix as the
/// spill-space collision bug: a pid alone is not unique).
static ROOT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Tuning knobs of the [`SpillDirManager`].
#[derive(Debug, Clone)]
pub struct SpillManagerConfig {
    /// Root directory for all session spill subdirectories.  `None` (the
    /// default) creates a fresh unique directory under the OS temp dir,
    /// removed when the manager drops; a user-provided root is kept (only
    /// its `session-*` children are managed).
    pub root: Option<PathBuf>,
    /// Byte ceiling across all sessions' durable spill files.
    pub quota_bytes: u64,
}

impl Default for SpillManagerConfig {
    fn default() -> Self {
        Self {
            root: None,
            quota_bytes: u64::MAX,
        }
    }
}

/// Shared manager of the server's spill disk space.
pub struct SpillDirManager {
    root: PathBuf,
    owns_root: bool,
    quota_bytes: u64,
    charged: AtomicU64,
    orphans_removed: usize,
    /// The server-wide spill I/O backend every session spills through.
    io: SpillIoHandle,
    /// Live leases, for the cross-session I/O bandwidth split.
    live: AtomicUsize,
}

impl SpillDirManager {
    /// Creates (or adopts) the root directory and removes orphaned
    /// `session-*` subdirectories from previous processes.  All sessions
    /// spill through the shared `io` backend: on the batched backend the
    /// manager re-splits the in-flight read budget across live leases
    /// ([`SpillIoHandle`]'s cross-session governor hook).
    pub fn new(cfg: SpillManagerConfig, io: SpillIoHandle) -> io::Result<Arc<Self>> {
        let (root, owns_root) = match cfg.root {
            Some(root) => (root, false),
            None => (
                std::env::temp_dir().join(format!(
                    "pisort-server-{}-{}",
                    std::process::id(),
                    ROOT_SEQ.fetch_add(1, Ordering::Relaxed)
                )),
                true,
            ),
        };
        std::fs::create_dir_all(&root)?;
        let mut orphans_removed = 0;
        for entry in std::fs::read_dir(&root)? {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_string_lossy().starts_with("session-") && entry.path().is_dir() {
                std::fs::remove_dir_all(entry.path())?;
                orphans_removed += 1;
            }
        }
        Ok(Arc::new(Self {
            root,
            owns_root,
            quota_bytes: cfg.quota_bytes.max(1),
            charged: AtomicU64::new(0),
            orphans_removed,
            io,
            live: AtomicUsize::new(0),
        }))
    }

    /// The shared spill I/O backend (one handle for the whole server).
    pub fn io(&self) -> &SpillIoHandle {
        &self.io
    }

    /// Spill-directory leases currently alive.
    pub fn live_leases(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// The managed root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Orphaned `session-*` directories removed at startup.
    pub fn orphans_removed(&self) -> usize {
        self.orphans_removed
    }

    /// Bytes currently charged against the quota.
    pub fn charged_bytes(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// Leases a fresh per-session subdirectory; removed (with everything
    /// in it) and un-charged when the lease drops.
    pub fn lease(self: &Arc<Self>, session_id: u64) -> io::Result<SpillDirLease> {
        let path = self.root.join(format!("session-{session_id:08}"));
        std::fs::create_dir(&path)?;
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.io.rebalance_shared(live);
        Ok(SpillDirLease {
            manager: Arc::clone(self),
            path,
            charged: 0,
        })
    }

    fn charge(&self, delta: u64) -> io::Result<()> {
        let before = self.charged.fetch_add(delta, Ordering::Relaxed);
        if before + delta > self.quota_bytes {
            // Roll back so released sessions keep the meter exact.
            self.charged.fetch_sub(delta, Ordering::Relaxed);
            if obs::enabled() {
                crate::metrics::m().quota_rejections.incr();
            }
            return Err(io::Error::new(
                io::ErrorKind::QuotaExceeded,
                format!(
                    "spill quota exceeded: {} + {} bytes over the {}-byte quota",
                    before, delta, self.quota_bytes
                ),
            ));
        }
        if obs::enabled() {
            crate::metrics::m().spill_bytes_charged.add(delta);
        }
        Ok(())
    }

    fn uncharge(&self, bytes: u64) {
        self.charged.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Drop for SpillDirManager {
    fn drop(&mut self) {
        if self.owns_root {
            std::fs::remove_dir_all(&self.root).ok();
        }
    }
}

/// One session's leased spill subdirectory (RAII: directory and charge
/// are released on drop).
pub struct SpillDirLease {
    manager: Arc<SpillDirManager>,
    path: PathBuf,
    charged: u64,
}

impl SpillDirLease {
    /// The session's private spill directory; point
    /// [`dtsort::StreamConfig::spill_dir`] here.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared spill I/O backend to hand the session's engine
    /// (see [`SpillDirManager::io`]).
    pub fn io(&self) -> &SpillIoHandle {
        self.manager.io()
    }

    /// Charges `delta` more durable spill bytes against the global quota,
    /// failing (without charging) past the ceiling.  The failure is a
    /// typed [`SpillError`] (kind [`io::ErrorKind::QuotaExceeded`])
    /// carrying this session's spill directory and the rejected byte
    /// count, so a caller can tell a full quota from a full disk.
    pub fn charge(&mut self, delta: u64) -> io::Result<()> {
        if delta == 0 {
            return Ok(());
        }
        self.manager
            .charge(delta)
            .map_err(|e| SpillError::new(self.path.clone(), 0, delta, e).into_io())?;
        self.charged += delta;
        Ok(())
    }

    /// Bytes this lease has charged so far.
    pub fn charged_bytes(&self) -> u64 {
        self.charged
    }
}

impl Drop for SpillDirLease {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
        self.manager.uncharge(self.charged);
        let live = self.manager.live.fetch_sub(1, Ordering::Relaxed) - 1;
        self.manager.io.rebalance_shared(live.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mgr(cfg: SpillManagerConfig) -> Arc<SpillDirManager> {
        SpillDirManager::new(cfg, SpillIoHandle::blocking()).unwrap()
    }

    #[test]
    fn leases_create_and_remove_private_subdirs() {
        let mgr = test_mgr(SpillManagerConfig::default());
        let a = mgr.lease(1).unwrap();
        let b = mgr.lease(2).unwrap();
        assert_eq!(mgr.live_leases(), 2);
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        std::fs::write(a.path().join("run-000001.bin"), b"data").unwrap();
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        drop(a);
        assert!(!pa.exists(), "lease drop removes the subdir and its runs");
        assert!(pb.exists(), "sibling lease untouched");
        drop(b);
        assert_eq!(mgr.live_leases(), 0);
        let root = mgr.root().to_path_buf();
        assert!(root.exists());
        drop(mgr);
        assert!(!root.exists(), "owned root removed with the manager");
    }

    #[test]
    fn startup_removes_orphaned_session_dirs_only() {
        let root = std::env::temp_dir().join(format!(
            "pisort-orphan-test-{}-{}",
            std::process::id(),
            ROOT_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(root.join("session-00000007")).unwrap();
        std::fs::write(root.join("session-00000007/run.bin"), b"stale").unwrap();
        std::fs::create_dir_all(root.join("unrelated")).unwrap();
        let mgr = test_mgr(SpillManagerConfig {
            root: Some(root.clone()),
            quota_bytes: u64::MAX,
        });
        assert_eq!(mgr.orphans_removed(), 1);
        assert!(!root.join("session-00000007").exists());
        assert!(root.join("unrelated").exists(), "only session dirs managed");
        drop(mgr);
        assert!(root.exists(), "user-provided root is kept");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn quota_rejects_the_overflowing_charge_and_rolls_back() {
        let mgr = test_mgr(SpillManagerConfig {
            root: None,
            quota_bytes: 1000,
        });
        let mut a = mgr.lease(1).unwrap();
        a.charge(600).unwrap();
        let mut b = mgr.lease(2).unwrap();
        b.charge(300).unwrap();
        let err = b.charge(200).expect_err("past the quota");
        assert!(err.to_string().contains("quota"), "got: {err}");
        assert_eq!(err.kind(), io::ErrorKind::QuotaExceeded);
        let typed = SpillError::from_io(&err).expect("typed SpillError");
        assert_eq!(typed.path, b.path());
        assert_eq!(typed.bytes_attempted, 200);
        assert_eq!(mgr.charged_bytes(), 900, "failed charge rolled back");
        drop(a);
        assert_eq!(mgr.charged_bytes(), 300, "lease drop un-charges");
        b.charge(200).unwrap();
        assert_eq!(b.charged_bytes(), 500);
    }
}
