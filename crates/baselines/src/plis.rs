//! PLIS-class baseline: a **stable parallel MSD radix sort** without
//! heavy-key detection (paper Alg. 1, the algorithm analyzed in
//! Theorem 4.4, and the "Plain" variant of the Fig. 4(a)(b) ablation).
//!
//! Each level distributes the records into `2^γ` buckets by the current
//! digit using the stable blocked counting sort, then recurses into each
//! bucket in parallel; subproblems below the base-case threshold are
//! finished with a stable comparison sort.  Data ping-pongs between the
//! input array and one scratch buffer, as in DovetailSort.

use crate::dtsort_key::IntegerKey;
use parlay::counting_sort::counting_sort_by;
use parlay::par::parallel_for;
use parlay::slice::UnsafeSliceCell;

/// Tuning parameters of the PLIS baseline.
#[derive(Debug, Clone)]
pub struct PlisConfig {
    /// Bits sorted per level (the paper's practical choice is 8–12).
    pub radix_bits: u32,
    /// Subproblems of at most this size use a comparison sort.
    pub base_case_threshold: usize,
}

impl Default for PlisConfig {
    fn default() -> Self {
        Self {
            radix_bits: 8,
            base_case_threshold: 1 << 14,
        }
    }
}

/// Sorts integer keys stably.
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_by_key(data, |&k| k);
}

/// Sorts `(key, value)` records stably by key.
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_by_key(data, |r| r.0);
}

/// Sorts records stably by an integer key projection with default parameters.
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    sort_by_key_with(data, key, &PlisConfig::default());
}

/// Sorts records stably by an integer key projection.
pub fn sort_by_key_with<T, K, F>(data: &mut [T], key: F, cfg: &PlisConfig)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let keyfn = |r: &T| key(r).to_ordered_u64();
    if n <= cfg.base_case_threshold.max(1) {
        data.sort_by_key(|a| keyfn(a));
        return;
    }
    // Skip leading all-zero digits: compute the maximum key once (the
    // "parallel reduce" alternative mentioned in the paper's Section 5).
    let max_key = parlay::reduce::par_max(data, |r| keyfn(r)).unwrap_or(0);
    let bits = (64 - max_key.leading_zeros()).max(1);
    let mut buf = data.to_vec();
    msd_recurse(data, &mut buf, &keyfn, bits, cfg);
}

fn msd_recurse<T, F>(data: &mut [T], scratch: &mut [T], key: &F, bits: u32, cfg: &PlisConfig)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n <= cfg.base_case_threshold.max(1) || bits == 0 {
        data.sort_by_key(|a| key(a));
        return;
    }
    let gamma = cfg.radix_bits.clamp(1, bits);
    let shift = bits - gamma;
    let num_buckets = 1usize << gamma;
    let mask = (num_buckets - 1) as u64;

    // Distribute by the current digit into the scratch buffer.
    let plan = counting_sort_by(data, scratch, num_buckets, |rec| {
        ((key(rec) >> shift) & mask) as usize
    });

    // Recurse on each bucket in parallel; each recursion leaves its result in
    // the scratch slice, which we then copy back to `data` (the classic MSD
    // structure of Alg. 1 without the dovetail bookkeeping).
    {
        let data_cell = UnsafeSliceCell::new(&mut *data);
        let scratch_cell = UnsafeSliceCell::new(&mut *scratch);
        let plan_ref = &plan;
        parallel_for(0, num_buckets, |b| {
            let range = plan_ref.bucket_range(b);
            if range.is_empty() {
                return;
            }
            let bucket = unsafe { scratch_cell.slice_mut(range.start, range.len()) };
            let bucket_scratch = unsafe { data_cell.slice_mut(range.start, range.len()) };
            if range.len() > 1 {
                msd_recurse(bucket, bucket_scratch, key, bits - gamma, cfg);
            }
            // Copy the sorted bucket back into the output array.
            bucket_scratch.copy_from_slice(bucket);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    fn cfg_small() -> PlisConfig {
        PlisConfig {
            radix_bits: 4,
            base_case_threshold: 32,
        }
    }

    #[test]
    fn sorts_random_u64() {
        let rng = Rng::new(1);
        let mut v: Vec<u64> = (0..80_000).map(|i| rng.ith(i)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn stable_on_pairs() {
        let rng = Rng::new(2);
        let input: Vec<(u32, u32)> = (0..60_000)
            .map(|i| (rng.ith_in(i as u64, 1000) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn stable_with_small_radix_and_base_case() {
        let rng = Rng::new(3);
        let input: Vec<(u32, u32)> = (0..20_000)
            .map(|i| (rng.ith_in(i as u64, 37) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_by_key_with(&mut got, |r| r.0, &cfg_small());
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn handles_edge_cases() {
        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        let mut one = vec![5u32];
        sort(&mut one);
        assert_eq!(one, vec![5]);
        let mut same = vec![3u16; 50_000];
        sort(&mut same);
        assert!(same.iter().all(|&x| x == 3));
        let mut extremes = vec![u64::MAX, 0, 1, u64::MAX];
        sort(&mut extremes);
        assert_eq!(extremes, vec![0, 1, u64::MAX, u64::MAX]);
    }

    #[test]
    fn signed_keys() {
        let rng = Rng::new(4);
        let mut v: Vec<i32> = (0..50_000).map(|i| rng.ith(i) as i32).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }
}
