//! LSD (least-significant-digit) radix sort — the classic sequential
//! textbook algorithm (paper Section 2.3) and a parallel variant, standing
//! in for the RADULS class of baselines.
//!
//! The LSD sort processes the key from the lowest digit to the highest,
//! re-distributing all records with a stable counting sort at each level.
//! It performs `Θ(n · log_b r)` work regardless of the input distribution,
//! which is exactly the behaviour the paper contrasts with MSD sorts.

use crate::dtsort_key::IntegerKey;
use parlay::counting_sort::counting_sort_by;

/// Tuning parameters of the LSD radix sort.
#[derive(Debug, Clone)]
pub struct LsdConfig {
    /// Bits per digit (pass).
    pub radix_bits: u32,
}

impl Default for LsdConfig {
    fn default() -> Self {
        Self { radix_bits: 8 }
    }
}

/// Sorts integer keys stably (parallel within each pass).
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_by_key(data, |&k| k);
}

/// Sorts `(key, value)` records stably by key.
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_by_key(data, |r| r.0);
}

/// Sorts records stably by an integer key projection with default parameters.
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    sort_by_key_with(data, key, &LsdConfig::default());
}

/// Sorts records stably by an integer key projection.
pub fn sort_by_key_with<T, K, F>(data: &mut [T], key: F, cfg: &LsdConfig)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let keyfn = |r: &T| key(r).to_ordered_u64();
    let max_key = parlay::reduce::par_max(data, |r| keyfn(r)).unwrap_or(0);
    let total_bits = (64 - max_key.leading_zeros()).max(1);
    let gamma = cfg.radix_bits.clamp(1, 16);
    let num_buckets = 1usize << gamma;
    let mask = (num_buckets - 1) as u64;

    let mut buf = data.to_vec();
    let mut src_is_data = true;
    let mut shift = 0u32;
    while shift < total_bits {
        if src_is_data {
            counting_sort_by(data, &mut buf, num_buckets, |rec| {
                ((keyfn(rec) >> shift) & mask) as usize
            });
        } else {
            counting_sort_by(&buf, data, num_buckets, |rec| {
                ((keyfn(rec) >> shift) & mask) as usize
            });
        }
        src_is_data = !src_is_data;
        shift += gamma;
    }
    // If the final result landed in the buffer, copy it back.
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

/// Fully sequential LSD radix sort, used as a single-thread reference in the
/// scalability experiments.
pub fn sort_by_key_sequential<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Clone,
    K: IntegerKey,
    F: Fn(&T) -> K,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let keyfn = |r: &T| key(r).to_ordered_u64();
    let max_key = data.iter().map(&keyfn).max().unwrap_or(0);
    let total_bits = (64 - max_key.leading_zeros()).max(1);
    let gamma = 8u32;
    let num_buckets = 1usize << gamma;
    let mask = (num_buckets - 1) as u64;

    let mut buf: Vec<T> = data.to_vec();
    let mut shift = 0u32;
    let mut src_is_data = true;
    while shift < total_bits {
        let (src, dst): (&[T], &mut [T]) = if src_is_data {
            (&*data, &mut buf[..])
        } else {
            (&buf, &mut *data)
        };
        // Classic two-pass stable counting sort.
        let mut counts = vec![0usize; num_buckets + 1];
        for rec in src.iter() {
            counts[(((keyfn(rec)) >> shift) & mask) as usize + 1] += 1;
        }
        for k in 0..num_buckets {
            counts[k + 1] += counts[k];
        }
        for rec in src.iter() {
            let b = ((keyfn(rec) >> shift) & mask) as usize;
            dst[counts[b]] = *rec;
            counts[b] += 1;
        }
        src_is_data = !src_is_data;
        shift += gamma;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn sorts_random_u64() {
        let rng = Rng::new(1);
        let mut v: Vec<u64> = (0..70_000).map(|i| rng.ith(i)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn parallel_lsd_is_stable() {
        let rng = Rng::new(2);
        let input: Vec<(u32, u32)> = (0..50_000)
            .map(|i| (rng.ith_in(i as u64, 300) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn sequential_lsd_matches_parallel() {
        let rng = Rng::new(3);
        let input: Vec<(u64, u32)> = (0..30_000)
            .map(|i| (rng.ith_in(i, 1 << 48), i as u32))
            .collect();
        let mut a = input.clone();
        let mut b = input;
        sort_pairs(&mut a);
        sort_by_key_sequential(&mut b, |r| r.0);
        assert_eq!(a, b);
    }

    #[test]
    fn odd_radix_width_and_edge_cases() {
        let rng = Rng::new(4);
        let input: Vec<u32> = (0..20_000).map(|i| rng.ith(i as u64) as u32).collect();
        let mut got = input.clone();
        sort_by_key_with(&mut got, |&k| k, &LsdConfig { radix_bits: 5 });
        let mut want = input;
        want.sort_unstable();
        assert_eq!(got, want);

        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        let mut same = vec![9u8; 10_000];
        sort(&mut same);
        assert!(same.iter().all(|&x| x == 9));
    }

    #[test]
    fn signed_keys() {
        let rng = Rng::new(5);
        let mut v: Vec<i64> = (0..40_000).map(|i| rng.ith(i) as i64).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }
}
