//! Parallel quicksort with heavy-key (equal-to-pivot) separation — the
//! comparison-sort trick the paper's introduction cites: "quicksort can
//! separate keys equal to the pivot to avoid further processing them".
//!
//! Unstable.  Each level partitions the records into `< pivot`, `= pivot`
//! and `> pivot` classes with a stable counting sort (so the partition pass
//! itself parallelizes), recurses on the outer classes in parallel, and
//! leaves the middle class untouched — on duplicate-heavy inputs this skips
//! most of the work, just like DovetailSort's heavy buckets.

use crate::dtsort_key::IntegerKey;
use parlay::counting_sort::counting_sort_by;
use parlay::random::Rng;

/// Subproblems of at most this size are sorted sequentially.
const BASE_CASE: usize = 1 << 12;

/// Sorts integer keys (unstable).
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_by_key(data, |&k| k);
}

/// Sorts `(key, value)` records by key (unstable).
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_by_key(data, |r| r.0);
}

/// Sorts records by an integer key projection (unstable).
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let keyfn = |r: &T| key(r).to_ordered_u64();
    quicksort_rec(data, &keyfn, Rng::new(0x9C15_0947), 0);
}

fn quicksort_rec<T, F>(data: &mut [T], key: &F, rng: Rng, depth: u32)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= BASE_CASE || depth > 96 {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }
    // Median-of-three random pivot.
    let mut cand = [
        key(&data[rng.ith_in(0, n as u64) as usize]),
        key(&data[rng.ith_in(1, n as u64) as usize]),
        key(&data[rng.ith_in(2, n as u64) as usize]),
    ];
    cand.sort_unstable();
    let pivot = cand[1];

    // Three-way partition via a 3-bucket counting sort (parallel, one pass).
    let mut buf = data.to_vec();
    let plan = counting_sort_by(data, &mut buf, 3, |rec| {
        let k = key(rec);
        match k.cmp(&pivot) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => 1,
            std::cmp::Ordering::Greater => 2,
        }
    });
    data.copy_from_slice(&buf);
    let less = plan.bucket_range(0);
    let greater = plan.bucket_range(2);
    let (lo, rest) = data.split_at_mut(less.end);
    let (_, hi) = rest.split_at_mut(greater.start - less.end);
    rayon::join(
        || quicksort_rec(lo, key, rng.fork(1), depth + 1),
        || quicksort_rec(hi, key, rng.fork(2), depth + 1),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn sorts_random_input() {
        let rng = Rng::new(1);
        let mut v: Vec<u64> = (0..60_000).map(|i| rng.ith(i)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn heavy_duplicates_are_handled_without_deep_recursion() {
        // 90% of records share one key: the equal-to-pivot class absorbs them.
        let rng = Rng::new(2);
        let mut v: Vec<u32> = (0..80_000)
            .map(|i| {
                if rng.ith_f64(i as u64) < 0.9 {
                    424242
                } else {
                    rng.ith(i as u64) as u32
                }
            })
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn pairs_and_edge_cases() {
        let rng = Rng::new(3);
        let input: Vec<(u32, u32)> = (0..40_000)
            .map(|i| (rng.ith_in(i as u64, 500) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        let mut got_keys: Vec<u32> = got.iter().map(|r| r.0).collect();
        let mut want_keys: Vec<u32> = input.iter().map(|r| r.0).collect();
        want_keys.sort_unstable();
        assert!(got_keys.windows(2).all(|w| w[0] <= w[1]));
        got_keys.sort_unstable();
        assert_eq!(got_keys, want_keys);

        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        let mut same = vec![5u16; 30_000];
        sort(&mut same);
        assert!(same.iter().all(|&x| x == 5));
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut asc: Vec<u64> = (0..50_000).collect();
        let want = asc.clone();
        sort(&mut asc);
        assert_eq!(asc, want);
        let mut desc: Vec<u64> = (0..50_000).rev().collect();
        sort(&mut desc);
        assert_eq!(desc, want);
    }
}
