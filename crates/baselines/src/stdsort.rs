//! Library comparison sorts: Rust's standard stable/unstable sorts and
//! rayon's parallel sorts, used as sanity references throughout the
//! evaluation harness.

use crate::dtsort_key::IntegerKey;
use rayon::prelude::*;

/// Stable sequential sort (std's adaptive merge sort).
pub fn std_stable_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy,
    K: IntegerKey,
    F: Fn(&T) -> K,
{
    data.sort_by_key(|a| key(a).to_ordered_u64());
}

/// Unstable sequential sort (std's pattern-defeating quicksort).
pub fn std_unstable_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy,
    K: IntegerKey,
    F: Fn(&T) -> K,
{
    data.sort_unstable_by_key(|a| key(a).to_ordered_u64());
}

/// Stable parallel sort (rayon's parallel merge sort).
pub fn par_stable_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    data.par_sort_by(|a, b| key(a).to_ordered_u64().cmp(&key(b).to_ordered_u64()));
}

/// Unstable parallel sort (rayon's parallel quicksort).
pub fn par_unstable_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    data.par_sort_unstable_by(|a, b| key(a).to_ordered_u64().cmp(&key(b).to_ordered_u64()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn all_wrappers_sort() {
        let rng = Rng::new(1);
        let input: Vec<(i64, u32)> = (0..30_000).map(|i| (rng.ith(i) as i64, i as u32)).collect();
        let mut want = input.clone();
        want.sort_by_key(|&(k, _)| k);
        let want_keys: Vec<i64> = want.iter().map(|r| r.0).collect();

        let mut a = input.clone();
        std_stable_by_key(&mut a, |r| r.0);
        assert_eq!(a, want);

        let mut b = input.clone();
        par_stable_by_key(&mut b, |r| r.0);
        assert_eq!(b, want);

        let mut c = input.clone();
        std_unstable_by_key(&mut c, |r| r.0);
        assert_eq!(c.iter().map(|r| r.0).collect::<Vec<_>>(), want_keys);

        let mut d = input;
        par_unstable_by_key(&mut d, |r| r.0);
        assert_eq!(d.iter().map(|r| r.0).collect::<Vec<_>>(), want_keys);
    }
}
