//! Unstable **in-place MSD radix sort** (IPS2Ra / RegionsSort class
//! baseline).
//!
//! Each level computes a histogram of the current digit, derives the bucket
//! boundaries, and permutes records into their buckets *within the input
//! array* by cycle-following (the classic American-flag-sort permutation).
//! The permutation destroys the relative order of equal keys, so the sort is
//! unstable — matching the stability column of the paper's Table 2 for
//! IPS2Ra and RegionsSort.  Recursion across buckets runs in parallel; the
//! permutation of a single subproblem is sequential, which is the main
//! structural simplification relative to the engineering-heavy originals
//! (they parallelize the permutation itself; the asymptotic work is the
//! same).

use crate::dtsort_key::IntegerKey;
use parlay::par::parallel_for;
use parlay::slice::UnsafeSliceCell;

/// Tuning parameters of the in-place radix sort.
#[derive(Debug, Clone)]
pub struct InplaceRadixConfig {
    /// Bits per digit.
    pub radix_bits: u32,
    /// Subproblems of at most this size use a comparison sort.
    pub base_case_threshold: usize,
}

impl Default for InplaceRadixConfig {
    fn default() -> Self {
        Self {
            radix_bits: 8,
            base_case_threshold: 1 << 12,
        }
    }
}

/// Sorts integer keys (unstable, in place up to recursion bookkeeping).
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_by_key(data, |&k| k);
}

/// Sorts `(key, value)` records by key (unstable).
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_by_key(data, |r| r.0);
}

/// Sorts records by an integer key projection (unstable) with defaults.
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    sort_by_key_with(data, key, &InplaceRadixConfig::default());
}

/// Sorts records by an integer key projection (unstable).
pub fn sort_by_key_with<T, K, F>(data: &mut [T], key: F, cfg: &InplaceRadixConfig)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let keyfn = |r: &T| key(r).to_ordered_u64();
    let max_key = parlay::reduce::par_max(data, |r| keyfn(r)).unwrap_or(0);
    let bits = (64 - max_key.leading_zeros()).max(1);
    radix_rec(data, &keyfn, bits, cfg);
}

fn radix_rec<T, F>(data: &mut [T], key: &F, bits: u32, cfg: &InplaceRadixConfig)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n <= cfg.base_case_threshold.max(1) || bits == 0 {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }
    let gamma = cfg.radix_bits.clamp(1, bits);
    let shift = bits - gamma;
    let num_buckets = 1usize << gamma;
    let mask = (num_buckets - 1) as u64;
    let digit = |rec: &T| ((key(rec) >> shift) & mask) as usize;

    // Histogram.
    let mut counts = vec![0usize; num_buckets];
    for rec in data.iter() {
        counts[digit(rec)] += 1;
    }
    // Bucket start/end boundaries.
    let mut starts = vec![0usize; num_buckets + 1];
    for b in 0..num_buckets {
        starts[b + 1] = starts[b] + counts[b];
    }
    let ends: Vec<usize> = starts[1..].to_vec();

    // American-flag permutation: for each bucket, repeatedly swap the record
    // at its write head into the bucket it belongs to until the head holds a
    // record of the current bucket.
    let mut heads = starts[..num_buckets].to_vec();
    for b in 0..num_buckets {
        while heads[b] < ends[b] {
            let mut rec = data[heads[b]];
            let mut d = digit(&rec);
            while d != b {
                let dest = heads[d];
                heads[d] += 1;
                std::mem::swap(&mut data[dest], &mut rec);
                d = digit(&rec);
            }
            data[heads[b]] = rec;
            heads[b] += 1;
        }
    }

    // Recurse on buckets in parallel.
    let data_cell = UnsafeSliceCell::new(data);
    let starts_ref = &starts;
    parallel_for(0, num_buckets, |b| {
        let lo = starts_ref[b];
        let hi = starts_ref[b + 1];
        if hi - lo > 1 {
            let bucket = unsafe { data_cell.slice_mut(lo, hi - lo) };
            radix_rec(bucket, key, bits - gamma, cfg);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn sorts_random_u64() {
        let rng = Rng::new(1);
        let mut v: Vec<u64> = (0..80_000).map(|i| rng.ith(i)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn sorts_pairs_by_key() {
        let rng = Rng::new(2);
        let input: Vec<(u32, u32)> = (0..60_000)
            .map(|i| (rng.ith_in(i as u64, 1_000_000) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        // Unstable: only the key sequence must match.
        let mut want_keys: Vec<u32> = input.iter().map(|&(k, _)| k).collect();
        want_keys.sort_unstable();
        let got_keys: Vec<u32> = got.iter().map(|&(k, _)| k).collect();
        assert_eq!(got_keys, want_keys);
        // And the multiset of records must be preserved.
        let mut a = got;
        let mut b = input;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_duplicates_and_edge_cases() {
        let rng = Rng::new(3);
        let mut v: Vec<u32> = (0..50_000)
            .map(|i| rng.ith_in(i as u64, 3) as u32 * 1_000_000)
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);

        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        let mut one = vec![1u8];
        sort(&mut one);
        assert_eq!(one, vec![1]);
        let mut extremes = vec![u32::MAX, 0, u32::MAX, 5];
        sort(&mut extremes);
        assert_eq!(extremes, vec![0, 5, u32::MAX, u32::MAX]);
    }

    #[test]
    fn small_radix_width() {
        let rng = Rng::new(4);
        let input: Vec<u64> = (0..30_000).map(|i| rng.ith_in(i, 1 << 30)).collect();
        let mut got = input.clone();
        sort_by_key_with(
            &mut got,
            |&k| k,
            &InplaceRadixConfig {
                radix_bits: 3,
                base_case_threshold: 16,
            },
        );
        let mut want = input;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn signed_keys() {
        let rng = Rng::new(5);
        let mut v: Vec<i32> = (0..40_000).map(|i| rng.ith(i) as i32).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }
}
