//! # baselines — the comparison systems of the DovetailSort evaluation
//!
//! The paper (Table 2) compares DovetailSort against six parallel sorting
//! implementations.  Those are large external C++ code bases; this crate
//! provides faithful Rust stand-ins for each algorithmic *class*, built on
//! the same [`parlay`] substrate so that comparisons isolate algorithmic
//! differences:
//!
//! | Paper baseline | Class | This crate |
//! |---|---|---|
//! | `PLIS` (ParlayLib integer sort) | stable parallel MSD radix sort | [`plis`] |
//! | `RADULS` | LSD radix sort | [`lsd`] |
//! | `PLSS` / `IPS4o` | parallel comparison samplesort | [`samplesort`] |
//! | `IPS2Ra` / `RegionsSort` | unstable in-place MSD radix sort | [`inplace_radix`] |
//! | (Sec. 2.4) counting sort | small-range counting sort | [`counting`] |
//! | std / rayon library sorts | reference comparison sorts | [`stdsort`] |
//!
//! Every sorter exposes the same `sort_by_key(data, key)` shape used by
//! `dtsort`, so the benchmark harness can treat them uniformly.

pub mod counting;
pub mod inplace_radix;
pub mod lsd;
pub mod mergesort;
pub mod plis;
pub mod quicksort;
pub mod samplesort;
pub mod stdsort;

pub use dtsort_key::IntegerKey;

/// Re-export of the key trait so baselines can be used without depending on
/// the `dtsort` crate directly.
pub mod dtsort_key {
    /// An integer key type usable by the baseline radix sorts.  This is a
    /// structural copy of `dtsort::IntegerKey` kept dependency-free; the two
    /// traits have identical impls for the primitive integer types.
    pub trait IntegerKey: Copy + Send + Sync + Ord + std::fmt::Debug {
        /// Number of significant bits of the key type.
        const BITS: u32;
        /// Order-preserving embedding into `u64`.
        fn to_ordered_u64(self) -> u64;
    }

    macro_rules! impl_unsigned_key {
        ($($t:ty),*) => {$(
            impl IntegerKey for $t {
                const BITS: u32 = <$t>::BITS;
                #[inline]
                fn to_ordered_u64(self) -> u64 { self as u64 }
            }
        )*};
    }
    macro_rules! impl_signed_key {
        ($($t:ty => $u:ty),*) => {$(
            impl IntegerKey for $t {
                const BITS: u32 = <$t>::BITS;
                #[inline]
                fn to_ordered_u64(self) -> u64 {
                    ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
                }
            }
        )*};
    }
    impl_unsigned_key!(u8, u16, u32, u64, usize);
    impl_signed_key!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);
}

#[cfg(test)]
mod tests {
    use super::dtsort_key::IntegerKey;

    #[test]
    fn key_trait_is_order_preserving() {
        assert!(1u32.to_ordered_u64() < 2u32.to_ordered_u64());
        assert!((-5i32).to_ordered_u64() < 3i32.to_ordered_u64());
        assert!(i64::MIN.to_ordered_u64() < i64::MAX.to_ordered_u64());
        assert_eq!(<u16 as IntegerKey>::BITS, 16);
    }
}
