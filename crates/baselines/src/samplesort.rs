//! Parallel comparison **samplesort** (PLSS / IPS4o class baseline).
//!
//! The algorithm samples `Θ(b · log n)` keys, picks `b - 1` splitters, and
//! distributes all records into `b` buckets by binary searching their key
//! among the splitters; buckets are then sorted recursively (comparison sort
//! below the base-case threshold).  Exactly as in the paper's Section 2.5,
//! a splitter that appears at least twice among the subsampled splitters
//! marks a *heavy* key: all records equal to it form their own bucket that
//! needs no further sorting — the duplicate-handling trick that DovetailSort
//! imports into integer sorting.

use crate::dtsort_key::IntegerKey;
use parlay::counting_sort::counting_sort_by;
use parlay::par::parallel_for;
use parlay::random::Rng;
use parlay::slice::UnsafeSliceCell;

/// Tuning parameters of the samplesort baseline.
#[derive(Debug, Clone)]
pub struct SampleSortConfig {
    /// Number of buckets per level.
    pub num_buckets: usize,
    /// Subproblems of at most this size use a comparison sort.
    pub base_case_threshold: usize,
    /// Oversampling factor (samples per splitter).
    pub oversample: usize,
    /// Seed for the deterministic sampler.
    pub seed: u64,
}

impl Default for SampleSortConfig {
    fn default() -> Self {
        Self {
            num_buckets: 256,
            base_case_threshold: 1 << 14,
            oversample: 16,
            seed: 0x5A11_7E50,
        }
    }
}

/// Sorts integer keys (stably).
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_by_key(data, |&k| k);
}

/// Sorts `(key, value)` records stably by key.
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_by_key(data, |r| r.0);
}

/// Sorts records stably by an integer key projection with default parameters.
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    sort_by_key_with(data, key, &SampleSortConfig::default());
}

/// Sorts records stably by an integer key projection.
pub fn sort_by_key_with<T, K, F>(data: &mut [T], key: F, cfg: &SampleSortConfig)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let keyfn = |r: &T| key(r).to_ordered_u64();
    let rng = Rng::new(cfg.seed);
    sample_sort_rec(data, &keyfn, cfg, rng, 0);
}

/// A splitter-delimited bucket: either an open key range or a single heavy
/// key (equal-to-splitter bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    /// Keys strictly less than the bound (and ≥ the previous bucket's bound).
    Range,
    /// Keys exactly equal to the splitter: needs no recursive sorting.
    Equal,
}

fn sample_sort_rec<T, F>(data: &mut [T], key: &F, cfg: &SampleSortConfig, rng: Rng, depth: u32)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n <= cfg.base_case_threshold.max(1) || depth > 64 {
        data.sort_by_key(|a| key(a));
        return;
    }

    // --- Sampling and splitter selection ---
    let want_buckets = cfg.num_buckets.clamp(2, n);
    let num_samples = (want_buckets * cfg.oversample.max(1)).min(n);
    let mut samples: Vec<u64> = (0..num_samples)
        .map(|i| key(&data[rng.ith_in(i as u64, n as u64) as usize]))
        .collect();
    samples.sort_unstable();
    // One splitter every `oversample` samples.
    let mut splitters: Vec<u64> = samples
        .iter()
        .copied()
        .skip(cfg.oversample.max(1) - 1)
        .step_by(cfg.oversample.max(1))
        .take(want_buckets - 1)
        .collect();
    splitters.dedup();
    if splitters.is_empty() {
        // All sampled keys equal; fall back to a comparison sort (the input
        // is likely dominated by one key and nearly sorted already).
        data.sort_by_key(|a| key(a));
        return;
    }

    // Duplicate detection: a splitter whose key also appears as the next
    // sample (before dedup) is "heavy"; we give every splitter an Equal
    // bucket — records equal to a splitter land there and skip recursion.
    // Bucket layout: Range(<s0), Equal(s0), Range(s0<k<s1), Equal(s1), ...,
    // Range(> last splitter).
    let mut buckets: Vec<Bucket> = Vec::with_capacity(splitters.len() * 2 + 1);
    for _ in &splitters {
        buckets.push(Bucket::Range);
        buckets.push(Bucket::Equal);
    }
    buckets.push(Bucket::Range);
    let num_buckets = buckets.len();

    // --- Distribution ---
    // Bucket id of key k: binary search among splitters.
    let splitters_ref = &splitters;
    let bucket_of = |k: u64| -> usize {
        let i = splitters_ref.partition_point(|&s| s < k);
        if i < splitters_ref.len() && splitters_ref[i] == k {
            2 * i + 1 // Equal bucket of splitter i.
        } else {
            2 * i // Range bucket before splitter i.
        }
    };
    let mut buf = data.to_vec();
    let plan = counting_sort_by(data, &mut buf, num_buckets, |rec| bucket_of(key(rec)));

    // --- Recursion (skip Equal buckets) + copy back ---
    {
        let data_cell = UnsafeSliceCell::new(&mut *data);
        let buf_cell = UnsafeSliceCell::new(&mut buf[..]);
        let plan_ref = &plan;
        let buckets_ref = &buckets;
        parallel_for(0, num_buckets, |b| {
            let range = plan_ref.bucket_range(b);
            if range.is_empty() {
                return;
            }
            let bucket = unsafe { buf_cell.slice_mut(range.start, range.len()) };
            let out = unsafe { data_cell.slice_mut(range.start, range.len()) };
            if buckets_ref[b] == Bucket::Range && range.len() > 1 {
                sample_sort_rec(bucket, key, cfg, rng.fork(1 + b as u64), depth + 1);
            }
            out.copy_from_slice(bucket);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    fn cfg_small() -> SampleSortConfig {
        SampleSortConfig {
            num_buckets: 16,
            base_case_threshold: 64,
            oversample: 8,
            seed: 7,
        }
    }

    #[test]
    fn sorts_random_u64() {
        let rng = Rng::new(1);
        let mut v: Vec<u64> = (0..80_000).map(|i| rng.ith(i)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn stable_on_pairs_with_duplicates() {
        let rng = Rng::new(2);
        let input: Vec<(u32, u32)> = (0..60_000)
            .map(|i| (rng.ith_in(i as u64, 20) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn heavy_single_key_input() {
        // 95% one key: exercises the Equal-bucket path and the all-samples-
        // equal fallback.
        let rng = Rng::new(3);
        let input: Vec<(u32, u32)> = (0..50_000)
            .map(|i| {
                let k = if rng.ith_f64(i as u64) < 0.95 {
                    1234
                } else {
                    rng.ith(i as u64) as u32
                };
                (k, i as u32)
            })
            .collect();
        let mut got = input.clone();
        sort_by_key_with(&mut got, |r| r.0, &cfg_small());
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn small_and_degenerate_inputs() {
        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        let mut two = vec![2u32, 1];
        sort(&mut two);
        assert_eq!(two, vec![1, 2]);
        let mut same = vec![7u64; 40_000];
        sort(&mut same);
        assert!(same.iter().all(|&x| x == 7));
    }

    #[test]
    fn signed_and_narrow_keys() {
        let rng = Rng::new(4);
        let mut v: Vec<i16> = (0..50_000).map(|i| rng.ith(i) as i16).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }
}
