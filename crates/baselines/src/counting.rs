//! Direct counting sort for small key ranges (paper Section 1: "when
//! `r = o(n)` the simpler counting sort can be used").
//!
//! This is a thin wrapper over the stable blocked counting sort of the
//! `parlay` crate, exposed as a complete sorter for keys whose range is
//! known to be small, plus a key-only histogram variant.

use crate::dtsort_key::IntegerKey;

/// Stably sorts records whose keys are known to lie in `0..range`.
///
/// # Panics
/// Panics if any key is `>= range`.
pub fn sort_by_key_small_range<T, F>(data: &mut [T], range: usize, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    if data.len() <= 1 {
        return;
    }
    let mut buf = data.to_vec();
    parlay::counting_sort::counting_sort_by(data, &mut buf, range, key);
    data.copy_from_slice(&buf);
}

/// Sorts small-range integer keys by histogramming alone: counts every key
/// value and rewrites the array.  Only applicable to plain keys (no values).
pub fn sort_keys_by_histogram<K: IntegerKey>(data: &mut [K], range: usize) {
    if data.len() <= 1 {
        return;
    }
    let mut counts = vec![0usize; range];
    for k in data.iter() {
        counts[k.to_ordered_u64() as usize] += 1;
    }
    // Rewrite in place.  The inverse mapping is not needed because we keep
    // the original key objects: we collect one representative per value.
    let mut reps: Vec<Option<K>> = vec![None; range];
    for k in data.iter() {
        reps[k.to_ordered_u64() as usize] = Some(*k);
    }
    let mut pos = 0usize;
    for v in 0..range {
        if counts[v] > 0 {
            let rep = reps[v].expect("count > 0 implies representative");
            for slot in &mut data[pos..pos + counts[v]] {
                *slot = rep;
            }
            pos += counts[v];
        }
    }
    debug_assert_eq!(pos, data.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn small_range_pairs_are_stable() {
        let rng = Rng::new(1);
        let input: Vec<(u32, u32)> = (0..50_000)
            .map(|i| (rng.ith_in(i as u64, 100) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_by_key_small_range(&mut got, 100, |r| r.0 as usize);
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn histogram_sort_matches_std() {
        let rng = Rng::new(2);
        let mut v: Vec<u16> = (0..40_000)
            .map(|i| rng.ith_in(i as u64, 500) as u16)
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort_keys_by_histogram(&mut v, 500);
        assert_eq!(v, want);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u8> = vec![];
        sort_keys_by_histogram(&mut v, 10);
        let mut one = vec![(3u32, 4u32)];
        sort_by_key_small_range(&mut one, 10, |r| r.0 as usize);
        assert_eq!(one, vec![(3, 4)]);
    }
}
