//! Stable parallel merge sort — the textbook `O(n log n)`-work,
//! polylog-span comparison sort that the paper's theory section uses as the
//! reference point integer sorts must beat (`O(n √log r)` vs `O(n log n)`).
//!
//! Built directly on the `parlay` parallel merge: split in half, sort both
//! halves in parallel, merge.  A sequential insertion/std sort handles small
//! subproblems.

use crate::dtsort_key::IntegerKey;
use parlay::merge::par_merge_into;

/// Subproblems of at most this size are sorted sequentially.
const BASE_CASE: usize = 1 << 12;

/// Sorts integer keys stably.
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_by_key(data, |&k| k);
}

/// Sorts `(key, value)` records stably by key.
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_by_key(data, |r| r.0);
}

/// Sorts records stably by an integer key projection.
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let keyfn = |r: &T| key(r).to_ordered_u64();
    let mut buf = data.to_vec();
    merge_sort_rec(data, &mut buf, &keyfn);
}

/// Sorts `data` (stably) using `scratch` as the merge buffer; the result ends
/// in `data`.
fn merge_sort_rec<T, F>(data: &mut [T], scratch: &mut [T], key: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= BASE_CASE {
        data.sort_by_key(|a| key(a));
        return;
    }
    let mid = n / 2;
    {
        let (dl, dr) = data.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        rayon::join(
            || merge_sort_rec(dl, sl, key),
            || merge_sort_rec(dr, sr, key),
        );
    }
    // Merge the two sorted halves of `data` into `scratch`, then copy back.
    {
        let (dl, dr) = data.split_at(mid);
        par_merge_into(dl, dr, scratch, &|a, b| key(a) < key(b));
    }
    data.copy_from_slice(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn sorts_random_input() {
        let rng = Rng::new(1);
        let mut v: Vec<u64> = (0..60_000).map(|i| rng.ith(i)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn is_stable() {
        let rng = Rng::new(2);
        let input: Vec<(u32, u32)> = (0..50_000)
            .map(|i| (rng.ith_in(i as u64, 40) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want);
    }

    #[test]
    fn edge_cases_and_signed() {
        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        let mut one = vec![1u8];
        sort(&mut one);
        assert_eq!(one, vec![1]);
        let rng = Rng::new(3);
        let mut v: Vec<i32> = (0..30_000).map(|i| rng.ith(i) as i32).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort(&mut v);
        assert_eq!(v, want);
    }
}
