//! A stable, reusable view of the heavy-key detection step.
//!
//! DovetailSort's central primitive — sample the input, declare keys with
//! repeated subsamples *heavy*, give each heavy key a collision-free bucket —
//! is useful far beyond the full sort: semisort, group-by and streaming
//! aggregation all want "which keys dominate this data, and a fast O(1)
//! membership test for them" without committing to a total order.
//!
//! [`HeavyKeyModel`] packages exactly that: it runs the sampling step of
//! Algorithm 2 ([`crate::sampling`]) over any keyed slice, stores the
//! detected heavy keys behind the same open-addressing table the sort's
//! bucket assignment uses ([`crate::buckets::HeavyMap`]), and exposes a
//! stable API that downstream crates (`semisort`, `stream`) can build on
//! without reaching into the sort's internals.
//!
//! Keys live in the ordered-`u64` domain ([`crate::key::IntegerKey`]); the
//! model itself is key-type agnostic.

use crate::buckets::HeavyMap;
use crate::config::SortConfig;
use crate::sampling::sample_and_detect;
use parlay::random::Rng;

/// The outcome of heavy-key detection over one dataset: the detected keys,
/// an O(1) index lookup for them, and the sampling metadata the detection
/// was based on.
#[derive(Debug, Clone)]
pub struct HeavyKeyModel {
    /// Detected heavy keys, sorted and deduplicated (ordered-`u64` domain).
    keys: Vec<u64>,
    /// Open-addressing map from heavy key to its index in `keys`.
    map: HeavyMap,
    /// Largest sampled key (`0` when no samples were drawn).
    max_sample: u64,
    /// Number of samples the detection drew.
    num_samples: usize,
    /// Number of distinct values among the samples.
    distinct_samples: usize,
}

impl HeavyKeyModel {
    /// Detects the heavy keys of `data` under `cfg` by sampling.
    ///
    /// `key(i)` must return the ordered-`u64` key of record `i`.  `gamma` is
    /// the radix/bucket width the caller intends to use; a key is declared
    /// heavy when it holds roughly `Ω(n / 2^γ)` of the input (paper
    /// Section 2.5).  Deterministic in `cfg.seed`.
    pub fn detect<F>(n: usize, key: F, gamma: u32, cfg: &SortConfig) -> Self
    where
        F: Fn(usize) -> u64 + Sync,
    {
        let res = sample_and_detect(n, key, gamma, cfg, Rng::new(cfg.seed));
        Self::from_parts(
            res.heavy_keys,
            res.max_sample,
            res.num_samples,
            res.distinct_samples,
        )
    }

    /// Builds a model from an externally supplied heavy-key set (e.g. keys
    /// carried across the runs of a stream).  Keys are sorted, deduplicated.
    pub fn from_keys(mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        let max = keys.last().copied().unwrap_or(0);
        Self::from_parts(keys, max, 0, 0)
    }

    fn from_parts(
        keys: Vec<u64>,
        max_sample: u64,
        num_samples: usize,
        distinct_samples: usize,
    ) -> Self {
        let mut map = HeavyMap::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            map.insert(k, i as u32);
        }
        Self {
            keys,
            map,
            max_sample,
            num_samples,
            distinct_samples,
        }
    }

    /// The detected heavy keys, sorted ascending (ordered-`u64` domain).
    pub fn heavy_keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of heavy keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no key was declared heavy.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// O(1) test: was `key` declared heavy?
    #[inline]
    pub fn is_heavy(&self, key: u64) -> bool {
        self.index_of(key).is_some()
    }

    /// O(1) lookup: the index of `key` in [`HeavyKeyModel::heavy_keys`], if
    /// heavy.  The index is stable and dense (`0..len`), so callers can use
    /// it directly as a dedicated bucket id.
    #[inline]
    pub fn index_of(&self, key: u64) -> Option<u32> {
        self.map.get(key)
    }

    /// Largest sampled key — the sort's effective-key-range estimate.
    pub fn max_sample(&self) -> u64 {
        self.max_sample
    }

    /// Number of samples the detection drew (0 for [`from_keys`] models).
    ///
    /// [`from_keys`]: HeavyKeyModel::from_keys
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of distinct values among the samples (0 for [`from_keys`]
    /// models).  `distinct_samples() == num_samples()` means the sample
    /// saw every key exactly once — the signature of a fully distinct
    /// input, regardless of how wide the key *values* are spread.
    ///
    /// [`from_keys`]: HeavyKeyModel::from_keys
    pub fn distinct_samples(&self) -> usize {
        self.distinct_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_dominant_key_and_indexes_it() {
        let cfg = SortConfig::default();
        let n = 100_000;
        let rng = Rng::new(4);
        let keyfn = |i: usize| -> u64 {
            if rng.fork(1).ith_f64(i as u64) < 0.6 {
                777
            } else {
                rng.fork(2).ith_in(i as u64, 1 << 30)
            }
        };
        let model = HeavyKeyModel::detect(n, keyfn, 8, &cfg);
        assert!(model.is_heavy(777), "heavy keys: {:?}", model.heavy_keys());
        let idx = model.index_of(777).unwrap() as usize;
        assert_eq!(model.heavy_keys()[idx], 777);
        assert!(model.num_samples() > 0);
        assert!(model.max_sample() >= 777);
    }

    #[test]
    fn distinct_input_yields_empty_model() {
        let cfg = SortConfig::default();
        let model = HeavyKeyModel::detect(50_000, |i| i as u64 * 2_654_435_761, 8, &cfg);
        assert!(model.is_empty());
        assert_eq!(model.len(), 0);
        assert!(!model.is_heavy(0));
        assert_eq!(model.index_of(42), None);
    }

    #[test]
    fn from_keys_sorts_and_dedups() {
        let model = HeavyKeyModel::from_keys(vec![9, 3, 3, 7, 9]);
        assert_eq!(model.heavy_keys(), &[3, 7, 9]);
        assert_eq!(model.len(), 3);
        assert_eq!(model.index_of(7), Some(1));
        assert!(!model.is_heavy(5));
        assert_eq!(model.max_sample(), 9);
        assert_eq!(model.num_samples(), 0);
    }

    #[test]
    fn empty_model_from_no_keys() {
        let model = HeavyKeyModel::from_keys(Vec::new());
        assert!(model.is_empty());
        assert_eq!(model.max_sample(), 0);
    }

    #[test]
    fn deterministic_in_config_seed() {
        let cfg = SortConfig::default();
        let f = |i: usize| (i as u64 * 13) % 257;
        let a = HeavyKeyModel::detect(40_000, f, 8, &cfg);
        let b = HeavyKeyModel::detect(40_000, f, 8, &cfg);
        assert_eq!(a.heavy_keys(), b.heavy_keys());
    }
}
