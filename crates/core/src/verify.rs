//! Output verification utilities.
//!
//! The evaluation harness and the test suite repeatedly need to check the
//! three properties a stable sort must satisfy: the output is non-decreasing
//! by key, it is a permutation of the input, and records with equal keys
//! keep their input order.  These helpers implement the checks in parallel
//! (they are used on multi-million-record harness inputs) and report *where*
//! a violation occurs to ease debugging.

use parlay::par::parallel_for;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of verifying a sort output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// `output[index] > output[index + 1]` by key.
    NotSorted { index: usize },
    /// The output is not a permutation of the input (some key multiset
    /// differs).
    NotPermutation,
    /// Two records with the same key appear in a different relative order
    /// than in the input; `first_tag`/`second_tag` are their input positions.
    NotStable { first_tag: usize, second_tag: usize },
}

/// Checks that `data` is non-decreasing by `key`; returns the first offending
/// index on failure.
pub fn check_sorted_by<T, K, F>(data: &[T], key: F) -> Result<(), VerifyError>
where
    T: Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    if data.len() < 2 {
        return Ok(());
    }
    let bad = AtomicUsize::new(usize::MAX);
    parallel_for(0, data.len() - 1, |i| {
        if key(&data[i]) > key(&data[i + 1]) {
            bad.fetch_min(i, Ordering::Relaxed);
        }
    });
    match bad.load(Ordering::Relaxed) {
        usize::MAX => Ok(()),
        index => Err(VerifyError::NotSorted { index }),
    }
}

/// Checks that `output` is a permutation of `input` under the key function
/// (multisets of keys agree).
pub fn check_permutation_by<T, K, F>(input: &[T], output: &[T], key: F) -> Result<(), VerifyError>
where
    K: std::hash::Hash + Eq,
    F: Fn(&T) -> K,
{
    if input.len() != output.len() {
        return Err(VerifyError::NotPermutation);
    }
    let mut counts: HashMap<K, i64> = HashMap::with_capacity(input.len());
    for r in input {
        *counts.entry(key(r)).or_default() += 1;
    }
    for r in output {
        match counts.get_mut(&key(r)) {
            Some(c) => *c -= 1,
            None => return Err(VerifyError::NotPermutation),
        }
    }
    if counts.values().all(|&c| c == 0) {
        Ok(())
    } else {
        Err(VerifyError::NotPermutation)
    }
}

/// Checks stability for `(key, tag)` records where `tag` is the input
/// position: within every run of equal keys, tags must be increasing.
pub fn check_stable_tagged<K: Ord + Sync + Send + Copy>(
    output: &[(K, u32)],
) -> Result<(), VerifyError> {
    for w in output.windows(2) {
        if w[0].0 == w[1].0 && w[0].1 > w[1].1 {
            return Err(VerifyError::NotStable {
                first_tag: w[0].1 as usize,
                second_tag: w[1].1 as usize,
            });
        }
    }
    Ok(())
}

/// Runs all three checks on a tagged `(key, input-position)` record array.
pub fn verify_stable_sort<K>(input: &[(K, u32)], output: &[(K, u32)]) -> Result<(), VerifyError>
where
    K: Ord + Copy + Send + Sync + std::hash::Hash,
{
    check_sorted_by(output, |r| r.0)?;
    check_permutation_by(input, output, |r| (r.0, r.1))?;
    check_stable_tagged(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_check_accepts_and_rejects() {
        assert_eq!(check_sorted_by(&[1, 2, 2, 3], |&x| x), Ok(()));
        assert_eq!(check_sorted_by::<i32, i32, _>(&[], |&x| x), Ok(()));
        assert_eq!(
            check_sorted_by(&[1, 3, 2, 4], |&x| x),
            Err(VerifyError::NotSorted { index: 1 })
        );
        // Reports the first violation even with several.
        let v: Vec<u32> = (0..10_000).map(|i| if i == 5000 { 0 } else { i }).collect();
        assert_eq!(
            check_sorted_by(&v, |&x| x),
            Err(VerifyError::NotSorted { index: 4999 })
        );
    }

    #[test]
    fn permutation_check() {
        let a = vec![(1u32, 0u32), (2, 1), (2, 2)];
        let b = vec![(2u32, 2u32), (1, 0), (2, 1)];
        assert_eq!(check_permutation_by(&a, &b, |r| (r.0, r.1)), Ok(()));
        let c = vec![(2u32, 2u32), (1, 0), (3, 1)];
        assert_eq!(
            check_permutation_by(&a, &c, |r| (r.0, r.1)),
            Err(VerifyError::NotPermutation)
        );
        let short = vec![(1u32, 0u32)];
        assert_eq!(
            check_permutation_by(&a, &short, |r| (r.0, r.1)),
            Err(VerifyError::NotPermutation)
        );
    }

    #[test]
    fn stability_check() {
        assert_eq!(check_stable_tagged(&[(5u32, 0u32), (5, 1), (6, 0)]), Ok(()));
        assert_eq!(
            check_stable_tagged(&[(5u32, 3u32), (5, 1)]),
            Err(VerifyError::NotStable {
                first_tag: 3,
                second_tag: 1
            })
        );
    }

    #[test]
    fn full_verification_on_dtsort_output() {
        let rng = parlay::random::Rng::new(5);
        let input: Vec<(u32, u32)> = (0..60_000)
            .map(|i| (rng.ith_in(i as u64, 300) as u32, i as u32))
            .collect();
        let mut output = input.clone();
        crate::sort_pairs(&mut output);
        assert_eq!(verify_stable_sort(&input, &output), Ok(()));

        // A corrupted output is rejected.
        let mut corrupted = output.clone();
        corrupted.swap(10, 50_000);
        assert!(verify_stable_sort(&input, &corrupted).is_err());
    }
}
