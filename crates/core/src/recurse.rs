//! The recursive DovetailSort driver (paper Alg. 2).
//!
//! Each call performs the four steps of the algorithm on one subproblem:
//!
//! 1. **Sampling** — detect heavy keys and the effective key range
//!    ([`crate::sampling`]).
//! 2. **Distributing** — stable counting sort by bucket id
//!    ([`parlay::counting_sort`]).
//! 3. **Recursing** — sort each light bucket on the next digit; heavy
//!    buckets (all records share one key) and the overflow bucket
//!    (comparison sorted) skip the radix recursion.
//! 4. **Dovetail merging** — interleave the heavy buckets back into the
//!    light bucket of each MSD zone ([`crate::dtmerge`]).
//!
//! Data movement follows the "minimizing data movement" scheme of Section 5:
//! the distribution writes from the current array into the scratch array and
//! the dovetail merge writes back, so each level moves every record exactly
//! twice and never copies a bucket back just to recurse on it.

use crate::buckets::BucketTable;
use crate::config::{MergeStrategy, SortConfig};
use crate::dtmerge::{dovetail_merge_across, dovetail_merge_in_place, parallel_merge_zone};
use crate::key::{bit_width, low_mask};
use crate::sampling::sample_and_detect;
use crate::stats::SortStats;
use parlay::counting_sort::counting_sort_by;
use parlay::par::parallel_for;
use parlay::random::Rng;
use parlay::slice::UnsafeSliceCell;
use std::time::Instant;

/// Stable comparison-sort base case (Alg. 2, line 2).
fn base_case<T, F>(data: &mut [T], key: &F, stats: &SortStats)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    SortStats::add(&stats.base_case_calls, 1);
    SortStats::add(&stats.base_case_records, data.len() as u64);
    data.sort_by_key(|a| key(a));
}

/// Sorts `data` by the low `total_bits` bits of `key`, using a freshly
/// allocated scratch buffer.  Entry point used by the public API.
pub(crate) fn dtsort_impl<T, F>(
    data: &mut [T],
    key: &F,
    total_bits: u32,
    cfg: &SortConfig,
    stats: &SortStats,
) where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    dtsort_run_impl(data, key, total_bits, cfg, stats, &[]);
}

/// [`dtsort_impl`] for one *run* of a streamed input: heavy keys carried
/// from earlier runs seed the root sampling (`hints`, in the masked/ordered
/// key domain, sorted or not), and the root-level heavy keys *confirmed by
/// this run's bucket counts* are returned for carry-over to the next run.
///
/// Runs below the base-case threshold are comparison sorted and report no
/// heavy keys (there is no sampling step to confirm them).
pub(crate) fn dtsort_run_impl<T, F>(
    data: &mut [T],
    key: &F,
    total_bits: u32,
    cfg: &SortConfig,
    stats: &SortStats,
    hints: &[u64],
) -> Vec<u64>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= 1 {
        return Vec::new();
    }
    if n <= cfg.base_case_threshold.max(1) || total_bits == 0 {
        base_case(data, key, stats);
        return Vec::new();
    }
    let mut buf = data.to_vec();
    let rng = Rng::new(cfg.seed);
    recurse(data, &mut buf, key, total_bits, cfg, stats, rng, 1, hints)
}

/// One recursive DTSort call.  The sorted result ends in `data`; `scratch`
/// is a same-length buffer whose contents are clobbered.
///
/// `root_hints` (only consulted at `depth == 1`) are externally supplied
/// heavy-key candidates merged into the root sampling result; the returned
/// vector (non-empty only at the root, when heavy detection ran) holds the
/// heavy keys confirmed by this call's bucket counts — the carry-over
/// plumbing of the streaming sorter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recurse<T, F>(
    data: &mut [T],
    scratch: &mut [T],
    key: &F,
    bits: u32,
    cfg: &SortConfig,
    stats: &SortStats,
    rng: Rng,
    depth: u64,
    root_hints: &[u64],
) -> Vec<u64>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    debug_assert_eq!(n, scratch.len());
    if n <= 1 {
        return Vec::new();
    }
    if n <= cfg.base_case_threshold.max(1) || bits == 0 {
        base_case(data, key, stats);
        return Vec::new();
    }
    SortStats::add(&stats.recursive_calls, 1);
    SortStats::max(&stats.max_depth, depth);
    let is_root = depth == 1;
    let mask = low_mask(bits);

    // ---------------- Step 1: sampling ----------------
    let t0 = Instant::now();
    let gamma_pre = cfg.radix_bits(n, bits);
    let need_sampling = cfg.heavy_detection || cfg.overflow_bucket;
    let mut sample_res = if need_sampling {
        sample_and_detect(n, |i| key(&data[i]) & mask, gamma_pre, cfg, rng)
    } else {
        crate::sampling::SampleResult {
            heavy_keys: Vec::new(),
            max_sample: mask,
            num_samples: 0,
            distinct_samples: 0,
        }
    };
    if is_root && cfg.heavy_detection && !root_hints.is_empty() {
        // Union carried heavy keys into the sampled set.  Raising the sample
        // maximum keeps every hint inside the effective key range, so hinted
        // keys never land in the overflow bucket.
        let mut merged = sample_res.heavy_keys;
        merged.extend(root_hints.iter().map(|&h| h & mask));
        merged.sort_unstable();
        merged.dedup();
        if let Some(&top) = merged.last() {
            sample_res.max_sample = sample_res.max_sample.max(top);
        }
        sample_res.heavy_keys = merged;
    }
    let sample_res = sample_res;
    SortStats::add(&stats.samples_drawn, sample_res.num_samples as u64);
    SortStats::add(&stats.heavy_keys, sample_res.heavy_keys.len() as u64);

    // Effective key range (Section 5): skip leading zero bits, as estimated
    // by the sample maximum.  Keys above the estimate go to the overflow
    // bucket.
    let eff_bits = if cfg.overflow_bucket && sample_res.num_samples > 0 {
        bit_width(sample_res.max_sample).clamp(1, bits)
    } else {
        bits
    };
    let gamma = cfg.radix_bits(n, eff_bits);
    let table = BucketTable::build(
        bits,
        eff_bits,
        gamma,
        &sample_res.heavy_keys,
        cfg.overflow_bucket,
    );
    if is_root {
        SortStats::add(&stats.root_sample_ns, t0.elapsed().as_nanos() as u64);
    }

    // ---------------- Step 2: distributing ----------------
    let t1 = Instant::now();
    let plan = counting_sort_by(data, scratch, table.num_buckets, |rec| {
        table.bucket_id(key(rec) & mask)
    });
    SortStats::add(&stats.distributed_records, n as u64);
    for h in &table.heavy {
        SortStats::add(&stats.heavy_records, plan.bucket_len(h.id as usize) as u64);
    }
    if let Some(of) = table.overflow_id {
        SortStats::add(&stats.overflow_records, plan.bucket_len(of as usize) as u64);
    }
    // Carry-over report: a root heavy key is confirmed when its bucket holds
    // a non-trivial share of the run (`n / 2^{γ+2}`); carried keys that have
    // fallen light are dropped here and must be re-detected by sampling to
    // return, so stale hints cannot accumulate across a long stream.  The
    // report is ordered by decreasing bucket count so a downstream cap on
    // carried keys keeps the heaviest ones.
    let confirmed_heavy: Vec<u64> = if is_root && cfg.heavy_detection {
        let threshold = ((n >> (gamma + 2)).max(2)) as u64;
        let mut counted: Vec<(u64, u64)> = table
            .heavy
            .iter()
            .map(|h| (plan.bucket_len(h.id as usize) as u64, h.key))
            .filter(|&(count, _)| count >= threshold)
            .collect();
        counted.sort_unstable_by(|a, b| b.cmp(a));
        counted.into_iter().map(|(_, key)| key).collect()
    } else {
        Vec::new()
    };
    if is_root {
        SortStats::add(&stats.root_distribute_ns, t1.elapsed().as_nanos() as u64);
    }

    // ---------------- Step 3: recursing ----------------
    let t2 = Instant::now();
    let num_zones = table.num_zones();
    let child_bits = eff_bits - gamma;
    {
        let scratch_cell = UnsafeSliceCell::new(&mut *scratch);
        let data_cell = UnsafeSliceCell::new(&mut *data);
        let table_ref = &table;
        let plan_ref = &plan;
        // One task per MSD zone plus one for the overflow bucket.
        let tasks = num_zones + usize::from(table.overflow_id.is_some());
        parallel_for(0, tasks, |z| {
            if z < num_zones {
                let light_id = table_ref.light_ids[z] as usize;
                let range = plan_ref.bucket_range(light_id);
                if range.len() <= 1 {
                    return;
                }
                let bucket = unsafe { scratch_cell.slice_mut(range.start, range.len()) };
                let bucket_scratch = unsafe { data_cell.slice_mut(range.start, range.len()) };
                recurse(
                    bucket,
                    bucket_scratch,
                    key,
                    child_bits,
                    cfg,
                    stats,
                    rng.fork(1 + z as u64),
                    depth + 1,
                    &[],
                );
            } else {
                // Overflow bucket: comparison sort (Section 5).
                let of = table_ref.overflow_id.expect("overflow task") as usize;
                let range = plan_ref.bucket_range(of);
                if range.len() > 1 {
                    let bucket = unsafe { scratch_cell.slice_mut(range.start, range.len()) };
                    base_case(bucket, key, stats);
                }
            }
        });
    }
    if is_root {
        SortStats::add(&stats.root_recurse_ns, t2.elapsed().as_nanos() as u64);
    }

    // ---------------- Step 4: dovetail merging ----------------
    let t3 = Instant::now();
    {
        let data_cell = UnsafeSliceCell::new(&mut *data);
        let scratch_ref: &[T] = scratch;
        let table_ref = &table;
        let plan_ref = &plan;
        // Heavy keys are stored masked to the subproblem's remaining bits, so
        // the merge must compare records by their masked key as well (the
        // bits above `bits` are shared by every record of this subproblem and
        // do not affect the order).
        let mkey = |r: &T| key(r) & mask;
        let tasks = num_zones + usize::from(table.overflow_id.is_some());
        parallel_for(0, tasks, |z| {
            if z >= num_zones {
                // Overflow bucket: already sorted, copy to its final place.
                let of = table_ref.overflow_id.expect("overflow task") as usize;
                let range = plan_ref.bucket_range(of);
                if !range.is_empty() {
                    let dst = unsafe { data_cell.slice_mut(range.start, range.len()) };
                    dst.copy_from_slice(&scratch_ref[range]);
                    SortStats::add(&stats.merged_records, dst.len() as u64);
                }
                return;
            }
            let bucket_ids = table_ref.zone_bucket_ids(z);
            let zone_start = plan_ref.bucket_offsets[bucket_ids.start];
            let zone_end = plan_ref.bucket_offsets[bucket_ids.end];
            if zone_start == zone_end {
                return;
            }
            let zone_len = zone_end - zone_start;
            let light_id = bucket_ids.start;
            let light_range = plan_ref.bucket_range(light_id);
            let light = &scratch_ref[light_range.clone()];
            let dst = unsafe { data_cell.slice_mut(zone_start, zone_len) };

            let heavy_buckets = table_ref.zone_heavy(z);
            let moved = match cfg.merge_strategy {
                MergeStrategy::Dovetail => {
                    let heavy_slices: Vec<(u64, &[T])> = heavy_buckets
                        .iter()
                        .map(|h| {
                            let r = plan_ref.bucket_range(h.id as usize);
                            (h.key, &scratch_ref[r])
                        })
                        .filter(|(_, s)| !s.is_empty())
                        .collect();
                    dovetail_merge_across(light, &heavy_slices, dst, &mkey)
                }
                MergeStrategy::DovetailInPlace => {
                    // Faithful Alg. 2/3: place the zone back first, then
                    // interleave fully in place within the output array.
                    dst.copy_from_slice(&scratch_ref[zone_start..zone_end]);
                    let heavy_lens: Vec<usize> = heavy_buckets
                        .iter()
                        .map(|h| plan_ref.bucket_len(h.id as usize))
                        .filter(|&l| l > 0)
                        .collect();
                    zone_len + dovetail_merge_in_place(dst, light.len(), &heavy_lens, &mkey)
                }
                MergeStrategy::ParallelMerge => {
                    let heavy_all = &scratch_ref[light_range.end..zone_end];
                    parallel_merge_zone(light, heavy_all, dst, &mkey)
                }
                MergeStrategy::Skip => {
                    // Measurement-only mode: copy the zone without
                    // interleaving (the output is not fully sorted when heavy
                    // buckets exist).
                    dst.copy_from_slice(&scratch_ref[zone_start..zone_end]);
                    zone_len
                }
            };
            SortStats::add(&stats.merged_records, moved as u64);
        });
    }
    if is_root {
        SortStats::add(&stats.root_merge_ns, t3.elapsed().as_nanos() as u64);
    }
    confirmed_heavy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SortConfig {
        SortConfig {
            base_case_threshold: 64,
            ..SortConfig::default()
        }
    }

    fn check_sorted_stable(input: &[(u32, u32)], cfg: &SortConfig) {
        let mut data = input.to_vec();
        let stats = SortStats::new();
        dtsort_impl(&mut data, &|r: &(u32, u32)| r.0 as u64, 32, cfg, &stats);
        let mut want = input.to_vec();
        want.sort_by_key(|&(k, _)| k);
        // Stability check: the value field records input order, and the
        // reference `sort_by_key` is stable, so outputs must match exactly.
        assert_eq!(data, want);
    }

    #[test]
    fn sorts_uniform_random() {
        let rng = Rng::new(1);
        let input: Vec<(u32, u32)> = (0..50_000)
            .map(|i| (rng.ith(i as u64) as u32, i as u32))
            .collect();
        check_sorted_stable(&input, &small_cfg());
    }

    #[test]
    fn sorts_heavy_duplicates_stably() {
        let rng = Rng::new(2);
        let input: Vec<(u32, u32)> = (0..80_000)
            .map(|i| (rng.ith_in(i as u64, 5) as u32 * 1000, i as u32))
            .collect();
        check_sorted_stable(&input, &small_cfg());
    }

    #[test]
    fn all_merge_strategies_agree() {
        let rng = Rng::new(3);
        let input: Vec<(u32, u32)> = (0..30_000)
            .map(|i| {
                let k = if rng.ith_f64(i as u64) < 0.5 {
                    42
                } else {
                    rng.ith(i as u64) as u32 % 10_000
                };
                (k, i as u32)
            })
            .collect();
        for strategy in [
            MergeStrategy::Dovetail,
            MergeStrategy::DovetailInPlace,
            MergeStrategy::ParallelMerge,
        ] {
            let cfg = SortConfig {
                merge_strategy: strategy,
                base_case_threshold: 128,
                ..SortConfig::default()
            };
            check_sorted_stable(&input, &cfg);
        }
    }

    #[test]
    fn plain_config_sorts_too() {
        let rng = Rng::new(4);
        let input: Vec<(u32, u32)> = (0..40_000)
            .map(|i| (rng.ith_in(i as u64, 100) as u32, i as u32))
            .collect();
        let cfg = SortConfig {
            heavy_detection: false,
            base_case_threshold: 64,
            ..SortConfig::default()
        };
        check_sorted_stable(&input, &cfg);
    }

    #[test]
    fn heavy_keys_in_deep_recursion_with_shared_upper_bits() {
        // Regression test: when heavy keys are detected below the root level,
        // the records' upper bits (shared within the subproblem) are nonzero,
        // so the dovetail merge must compare masked keys.  Keys here share the
        // top byte 0xFF and contain a heavy duplicate in the low bits,
        // mimicking the paper's Bit-Exponential distribution.
        let rng = Rng::new(7);
        let input: Vec<(u64, u32)> = (0..80_000)
            .map(|i| {
                let low = if rng.ith_f64(i as u64) < 0.4 {
                    0x00FF_FFFF_FFFF_FFFF // heavy key within the 0xFF zone
                } else {
                    rng.ith(i as u64) & 0x00FF_FFFF_FFFF_FFFF
                };
                (0xFF00_0000_0000_0000 | low, i as u32)
            })
            .collect();
        let mut data = input.clone();
        let stats = SortStats::new();
        let cfg = SortConfig {
            base_case_threshold: 256,
            ..SortConfig::default()
        };
        dtsort_impl(&mut data, &|r: &(u64, u32)| r.0, 64, &cfg, &stats);
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(data, want);
        assert!(stats.snapshot().max_depth >= 2, "{:?}", stats.snapshot());
    }

    #[test]
    fn stats_report_heavy_records_on_skewed_input() {
        let rng = Rng::new(5);
        // 80% of records have key 7.
        let mut data: Vec<(u32, u32)> = (0..100_000)
            .map(|i| {
                let k = if rng.ith_f64(i as u64) < 0.8 {
                    7
                } else {
                    rng.ith(i as u64) as u32
                };
                (k, i as u32)
            })
            .collect();
        let stats = SortStats::new();
        let cfg = small_cfg();
        dtsort_impl(&mut data, &|r: &(u32, u32)| r.0 as u64, 32, &cfg, &stats);
        let snap = stats.snapshot();
        assert!(snap.heavy_keys >= 1, "snapshot: {snap:?}");
        assert!(
            snap.heavy_records > 50_000,
            "heavy records not detected: {snap:?}"
        );
        assert!(snap.recursive_calls >= 1);
    }
}
