//! Integer key abstraction.
//!
//! The paper's integer sort takes records with keys in `[r] = {0, ..., r-1}`.
//! In this implementation every supported key type is mapped, order
//! preservingly, into `u64`; the radix machinery then works on the `u64`
//! image.  Signed integers are mapped by flipping the sign bit, which turns
//! two's-complement order into unsigned order.

/// An integer key type usable by DovetailSort and the baseline radix sorts.
///
/// The mapping [`IntegerKey::to_ordered_u64`] must be injective and strictly
/// monotone: `a < b  ⇔  a.to_ordered_u64() < b.to_ordered_u64()`.
///
/// Keys are plain values (`'static`), so records can move to background
/// spill-writer and prefetch threads in the streaming engine.
pub trait IntegerKey: Copy + Send + Sync + Ord + std::fmt::Debug + 'static {
    /// Number of significant bits of the key type (the `log r` of the paper).
    const BITS: u32;

    /// Order-preserving embedding into `u64`.
    fn to_ordered_u64(self) -> u64;

    /// Inverse of [`IntegerKey::to_ordered_u64`] on the image of the type.
    fn from_ordered_u64(x: u64) -> Self;
}

macro_rules! impl_unsigned_key {
    ($($t:ty),*) => {$(
        impl IntegerKey for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn to_ordered_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_ordered_u64(x: u64) -> Self {
                x as $t
            }
        }
    )*};
}

macro_rules! impl_signed_key {
    ($($t:ty => $u:ty),*) => {$(
        impl IntegerKey for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn to_ordered_u64(self) -> u64 {
                // Flip the sign bit: i::MIN -> 0, -1 -> 2^(B-1) - 1, 0 -> 2^(B-1), i::MAX -> 2^B - 1.
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }
            #[inline]
            fn from_ordered_u64(x: u64) -> Self {
                ((x as $u) ^ (1 << (<$t>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_unsigned_key!(u8, u16, u32, u64, usize);
impl_signed_key!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Mask with the low `bits` bits set (saturating at 64 bits).
#[inline]
pub fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Number of bits needed to represent `x` (0 needs 0 bits).
#[inline]
pub fn bit_width(x: u64) -> u32 {
    64 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_roundtrip_and_order() {
        for x in [0u32, 1, 7, u32::MAX, u32::MAX - 1, 12345] {
            assert_eq!(u32::from_ordered_u64(x.to_ordered_u64()), x);
        }
        assert!(3u64.to_ordered_u64() < 4u64.to_ordered_u64());
        assert_eq!(u8::BITS, 8);
        assert_eq!(usize::BITS, <usize as IntegerKey>::BITS);
    }

    #[test]
    fn signed_roundtrip_and_order() {
        let vals = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for &x in &vals {
            assert_eq!(i32::from_ordered_u64(x.to_ordered_u64()), x);
        }
        for w in vals.windows(2) {
            assert!(
                w[0].to_ordered_u64() < w[1].to_ordered_u64(),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn signed_64_bit_extremes() {
        assert_eq!(i64::MIN.to_ordered_u64(), 0);
        assert_eq!(i64::MAX.to_ordered_u64(), u64::MAX);
        assert_eq!((-1i64).to_ordered_u64(), (1u64 << 63) - 1);
        assert_eq!(0i64.to_ordered_u64(), 1u64 << 63);
    }

    #[test]
    fn masks_and_widths() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(16), 0xFFFF);
        assert_eq!(low_mask(64), u64::MAX);
        assert_eq!(low_mask(100), u64::MAX);
        assert_eq!(bit_width(0), 0);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
        assert_eq!(bit_width(u64::MAX), 64);
    }
}
