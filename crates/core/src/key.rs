//! Integer key abstraction.
//!
//! The paper's integer sort takes records with keys in `[r] = {0, ..., r-1}`.
//! In this implementation every supported key type is mapped, order
//! preservingly, into `u64`; the radix machinery then works on the `u64`
//! image.  Signed integers are mapped by flipping the sign bit, which turns
//! two's-complement order into unsigned order.

/// An integer key type usable by DovetailSort and the baseline radix sorts.
///
/// The mapping [`IntegerKey::to_ordered_u64`] must be injective and strictly
/// monotone: `a < b  ⇔  a.to_ordered_u64() < b.to_ordered_u64()`.
///
/// Keys are plain values (`'static`), so records can move to background
/// spill-writer and prefetch threads in the streaming engine.
pub trait IntegerKey: Copy + Send + Sync + Ord + std::fmt::Debug + 'static {
    /// Number of significant bits of the key type (the `log r` of the paper).
    const BITS: u32;

    /// Order-preserving embedding into `u64`.
    fn to_ordered_u64(self) -> u64;

    /// Inverse of [`IntegerKey::to_ordered_u64`] on the image of the type.
    fn from_ordered_u64(x: u64) -> Self;
}

macro_rules! impl_unsigned_key {
    ($($t:ty),*) => {$(
        impl IntegerKey for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn to_ordered_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_ordered_u64(x: u64) -> Self {
                x as $t
            }
        }
    )*};
}

macro_rules! impl_signed_key {
    ($($t:ty => $u:ty),*) => {$(
        impl IntegerKey for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn to_ordered_u64(self) -> u64 {
                // Flip the sign bit: i::MIN -> 0, -1 -> 2^(B-1) - 1, 0 -> 2^(B-1), i::MAX -> 2^B - 1.
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }
            #[inline]
            fn from_ordered_u64(x: u64) -> Self {
                ((x as $u) ^ (1 << (<$t>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_unsigned_key!(u8, u16, u32, u64, usize);
impl_signed_key!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A variable-length byte-string key usable by the streaming engines.
///
/// String keys ride the existing `u64` merge domain through
/// [`string_key_prefix64`]: the first eight bytes, big-endian and
/// zero-padded, become the record's ordering key, and ties between equal
/// prefixes are broken on the full key bytes at sort and merge time.  The
/// combination `(prefix, full bytes)` orders exactly like the plain
/// lexicographic byte order (see `string_key_prefix64` for the argument),
/// so a string-keyed stream sorts and groups byte-identically to a
/// comparison sort on the keys themselves.
pub trait StringKey: Clone + Send + Sync + std::fmt::Debug + 'static {
    /// The key's bytes; ordering is lexicographic over this slice.
    fn key_bytes(&self) -> &[u8];

    /// Rebuild a key from its bytes (the inverse of
    /// [`StringKey::key_bytes`]).  Fails with `InvalidData` when the
    /// bytes are not a valid key of this type (e.g. non-UTF-8 for
    /// `String`).
    fn from_key_bytes(bytes: &[u8]) -> std::io::Result<Self>;
}

impl StringKey for String {
    #[inline]
    fn key_bytes(&self) -> &[u8] {
        self.as_bytes()
    }

    fn from_key_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("string key is not valid UTF-8: {e}"),
            )
        })
    }
}

impl StringKey for Vec<u8> {
    #[inline]
    fn key_bytes(&self) -> &[u8] {
        self
    }

    fn from_key_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        Ok(bytes.to_vec())
    }
}

/// Order-preserving 8-byte big-endian prefix of a byte-string key.
///
/// The first `min(len, 8)` bytes are packed big-endian into the *high*
/// bytes of the `u64`; missing bytes are zero.  This is monotone with
/// respect to lexicographic byte order: if `a < b` lexicographically,
/// either they differ at some index `i < 8` (then the packed prefixes
/// differ at that byte, and big-endian packing puts the earlier byte in
/// the more significant position, so `prefix(a) < prefix(b)`), or their
/// first 8 bytes agree — which includes `a` being a strict prefix of `b`
/// with `a.len() < 8`, where zero-padding can only make `prefix(a) ≤
/// prefix(b)` — so `prefix(a) ≤ prefix(b)` in every case.  Equal prefixes
/// are resolved by comparing the full key bytes (the tie-break the
/// streaming engines apply at sort and merge time).
///
/// Note the zero-pad means `prefix` cannot distinguish a key from the
/// same key extended with NUL bytes within the first 8 positions; the
/// full-byte tie-break handles that too.
#[inline]
pub fn string_key_prefix64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// Mask with the low `bits` bits set (saturating at 64 bits).
#[inline]
pub fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Number of bits needed to represent `x` (0 needs 0 bits).
#[inline]
pub fn bit_width(x: u64) -> u32 {
    64 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_roundtrip_and_order() {
        for x in [0u32, 1, 7, u32::MAX, u32::MAX - 1, 12345] {
            assert_eq!(u32::from_ordered_u64(x.to_ordered_u64()), x);
        }
        assert!(3u64.to_ordered_u64() < 4u64.to_ordered_u64());
        assert_eq!(u8::BITS, 8);
        assert_eq!(usize::BITS, <usize as IntegerKey>::BITS);
    }

    #[test]
    fn signed_roundtrip_and_order() {
        let vals = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for &x in &vals {
            assert_eq!(i32::from_ordered_u64(x.to_ordered_u64()), x);
        }
        for w in vals.windows(2) {
            assert!(
                w[0].to_ordered_u64() < w[1].to_ordered_u64(),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn signed_64_bit_extremes() {
        assert_eq!(i64::MIN.to_ordered_u64(), 0);
        assert_eq!(i64::MAX.to_ordered_u64(), u64::MAX);
        assert_eq!((-1i64).to_ordered_u64(), (1u64 << 63) - 1);
        assert_eq!(0i64.to_ordered_u64(), 1u64 << 63);
    }

    #[test]
    fn string_prefix_is_monotone_in_lexicographic_order() {
        // Pairwise over a set covering: short vs long, shared 8-byte
        // prefixes, NUL-padding collisions, empty, and >8-byte keys.
        let keys: Vec<&[u8]> = vec![
            b"",
            b"\0",
            b"\0\0a",
            b"a",
            b"a\0",
            b"abc",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgz",
            b"https://a.example/x",
            b"https://b.example/x",
            b"zz",
        ];
        for a in &keys {
            for b in &keys {
                let (pa, pb) = (string_key_prefix64(a), string_key_prefix64(b));
                match a.cmp(b) {
                    std::cmp::Ordering::Less => assert!(pa <= pb, "{a:?} < {b:?} but {pa} > {pb}"),
                    std::cmp::Ordering::Equal => assert_eq!(pa, pb),
                    std::cmp::Ordering::Greater => assert!(pa >= pb),
                }
                // Strict order whenever the keys differ at a byte both
                // actually have within the first 8 positions (zero-padding
                // can only collide a key with its NUL-extension).
                let diverge_early = a.iter().zip(b.iter()).take(8).any(|(x, y)| x != y);
                if diverge_early && a < b {
                    assert!(pa < pb, "early-diverging keys must order strictly");
                }
            }
        }
    }

    #[test]
    fn string_key_roundtrip_and_validation() {
        let s = "héllo, wörld".to_string();
        assert_eq!(String::from_key_bytes(s.key_bytes()).unwrap(), s);
        let v = vec![0u8, 255, 1, 2];
        assert_eq!(Vec::<u8>::from_key_bytes(v.key_bytes()).unwrap(), v);
        let bad = String::from_key_bytes(&[0xFF, 0xFE]);
        assert_eq!(
            bad.unwrap_err().kind(),
            std::io::ErrorKind::InvalidData,
            "non-UTF-8 bytes must not round-trip into String"
        );
    }

    #[test]
    fn masks_and_widths() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(16), 0xFFFF);
        assert_eq!(low_mask(64), u64::MAX);
        assert_eq!(low_mask(100), u64::MAX);
        assert_eq!(bit_width(0), 0);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(255), 8);
        assert_eq!(bit_width(256), 9);
        assert_eq!(bit_width(u64::MAX), 64);
    }
}
