//! # dtsort — DovetailSort, a parallel integer sort that exploits duplicate keys
//!
//! This crate is a from-scratch Rust implementation of **DovetailSort
//! (DTSort)** from *"Parallel Integer Sort: Theory and Practice"*
//! (PPoPP 2024).  DTSort is a stable parallel most-significant-digit (MSD)
//! radix sort that additionally borrows the sampling idea of comparison
//! sorts to detect *heavy* (frequently duplicated) keys, gives each heavy
//! key its own bucket so its records bypass all further recursion, and
//! re-interleaves heavy and light buckets with a dedicated *dovetail merge*.
//!
//! The algorithm has `O(n √log r)` work and `Õ(2^{√log r})` span for `n`
//! records with keys in `[0, r)` (paper Theorem 4.5), which beats the
//! `O(n log n)` work of comparison sorts for the realistic key range
//! `r = n^{O(1)}`, and it achieves `O(n)` work on inputs dominated by heavy
//! keys (Theorems 4.6 and 4.7).
//!
//! ## Quick start
//!
//! ```
//! // Sort plain keys.
//! let mut keys = vec![170u32, 45, 75, 90, 802, 24, 2, 66];
//! dtsort::sort(&mut keys);
//! assert_eq!(keys, vec![2, 24, 45, 66, 75, 90, 170, 802]);
//!
//! // Sort key-value records stably.
//! let mut records = vec![(3u64, "c"), (1, "a"), (3, "b")];
//! dtsort::sort_pairs(&mut records);
//! assert_eq!(records, vec![(1, "a"), (3, "c"), (3, "b")]);
//! ```
//!
//! ## Structure
//!
//! * [`api`] — the public sorting entry points ([`sort`], [`sort_pairs`],
//!   [`sort_by_key`] and their `_with` / `_with_stats` variants).
//! * [`config`] — tuning knobs ([`SortConfig`], [`MergeStrategy`]) matching
//!   the paper's parameter choices.
//! * [`sampling`], [`buckets`], [`dtmerge`], [`recurse`] — the four steps of
//!   Algorithm 2 (sampling, bucket assignment, distribution + recursion,
//!   dovetail merging).
//! * [`model`] — the stable [`HeavyKeyModel`] view of heavy-key detection,
//!   consumed by the `semisort` and `stream` crates.
//! * [`stats`] — instrumentation used by the evaluation harness.
//! * [`key`] — the [`IntegerKey`] abstraction over `u8..u64`, `usize` and
//!   the signed integer types, plus the [`StringKey`] byte-string keys
//!   that the streaming engines map order-preservingly into the `u64`
//!   domain via [`string_key_prefix64`].

pub mod api;
pub mod buckets;
pub mod config;
pub mod dtmerge;
pub mod key;
pub mod model;
pub mod recurse;
pub mod sampling;
pub mod stats;
pub mod verify;

pub use api::{
    is_sorted_by_key, sort, sort_by_key, sort_by_key_with, sort_by_key_with_stats, sort_pairs,
    sort_pairs_with, sort_pairs_with_stats, sort_run_by_key_with, sort_run_pairs_with,
    sort_unstable, sort_with, sort_with_stats, RunReport,
};
pub use config::{
    BudgetHandle, MergeStrategy, SortConfig, SpillCompression, SpillIoMode, SpillRetryPolicy,
    StreamConfig,
};
pub use key::{string_key_prefix64, IntegerKey, StringKey};
pub use model::HeavyKeyModel;
pub use stats::{SortStats, StatsSnapshot};
