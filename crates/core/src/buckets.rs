//! Bucket-id assignment (paper Alg. 2, lines 5–14 and the `GetBucketID`
//! function).
//!
//! After sampling, every key of the current subproblem maps to a bucket:
//!
//! * the key range is split into `2^γ` *MSD zones* by the current digit;
//! * every MSD zone owns one *light* bucket;
//! * every detected heavy key owns its own bucket, placed immediately after
//!   the light bucket of its zone and ordered by key within the zone;
//! * optionally, one *overflow* bucket at the very end collects keys above
//!   the sampled key range (Section 5).
//!
//! Heavy keys are looked up in a small open-addressing hash table `H`; light
//! keys fall through to a direct-indexed lookup array `L` keyed by the MSD —
//! exactly the `H`/`L` pair of the paper.

use crate::key::low_mask;

/// A minimal open-addressing hash map from `u64` keys to bucket ids.
///
/// The number of heavy keys per subproblem is at most `~2^γ ≤ 4096`, so the
/// table is tiny and lives comfortably in cache; linear probing with a
/// power-of-two capacity at load factor ≤ 0.5 gives expected O(1) lookups.
#[derive(Debug, Clone)]
pub struct HeavyMap {
    slots: Vec<Option<(u64, u32)>>,
    mask: usize,
    len: usize,
}

impl HeavyMap {
    /// Creates a map sized for `expected` keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(1) * 4).next_power_of_two();
        Self {
            slots: vec![None; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (parlay::random::hash64(key) as usize) & self.mask
    }

    /// Inserts `key -> id`.  Keys must be distinct; the table never grows
    /// (capacity was chosen from the number of heavy keys).
    pub fn insert(&mut self, key: u64, id: u32) {
        assert!(self.len * 2 < self.slots.len(), "HeavyMap overfull");
        let mut i = self.slot_of(key);
        loop {
            match self.slots[i] {
                None => {
                    self.slots[i] = Some((key, id));
                    self.len += 1;
                    return;
                }
                Some((k, _)) => {
                    debug_assert_ne!(k, key, "duplicate heavy key inserted");
                    i = (i + 1) & self.mask;
                }
            }
        }
    }

    /// Looks up the bucket id of `key`, if it is a heavy key.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.slot_of(key);
        loop {
            match self.slots[i] {
                None => return None,
                Some((k, id)) if k == key => return Some(id),
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }
}

/// Description of one heavy bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyBucket {
    /// The (masked) heavy key all records in this bucket share.
    pub key: u64,
    /// The MSD zone the key belongs to.
    pub zone: usize,
    /// The bucket id assigned to it.
    pub id: u32,
}

/// The complete bucket table of one recursive call: zone → light bucket id,
/// heavy key → heavy bucket id, plus the optional overflow bucket.
#[derive(Debug, Clone)]
pub struct BucketTable {
    /// Radix width γ of this level.
    pub gamma: u32,
    /// Effective number of key bits considered at this level (≤ remaining
    /// bits; smaller when the overflow optimization shrank the range).
    pub eff_bits: u32,
    /// Mask selecting the `eff_bits` low bits.
    pub eff_mask: u64,
    /// Shift that brings the current digit to the low bits: `eff_bits - γ`.
    pub digit_shift: u32,
    /// Light bucket id of each MSD zone (`2^γ` entries).
    pub light_ids: Vec<u32>,
    /// Whether each MSD zone owns at least one heavy bucket.  Keys in zones
    /// without heavy buckets skip the hash-table probe entirely, which keeps
    /// the per-record cost of `GetBucketID` at a shift and two array reads on
    /// inputs where heavy keys are concentrated in few zones.
    pub zone_has_heavy: Vec<bool>,
    /// Heavy buckets in bucket-id order.
    pub heavy: Vec<HeavyBucket>,
    /// Hash table from heavy key to bucket id.
    pub heavy_map: HeavyMap,
    /// Bucket id of the overflow bucket, if enabled.
    pub overflow_id: Option<u32>,
    /// Total number of buckets.
    pub num_buckets: usize,
}

impl BucketTable {
    /// Builds the bucket table.
    ///
    /// * `bits` — number of remaining (low) key bits of this subproblem.
    /// * `eff_bits` — effective bits after the key-range estimation
    ///   (`= bits` when the overflow optimization is off).
    /// * `gamma` — radix width for this level.
    /// * `heavy_keys` — detected heavy keys, already masked to `bits` bits,
    ///   sorted and deduplicated.
    /// * `with_overflow` — whether to append an overflow bucket.
    pub fn build(
        bits: u32,
        eff_bits: u32,
        gamma: u32,
        heavy_keys: &[u64],
        with_overflow: bool,
    ) -> Self {
        debug_assert!(gamma >= 1 && gamma <= eff_bits);
        debug_assert!(eff_bits <= bits);
        let num_zones = 1usize << gamma;
        let digit_shift = eff_bits - gamma;
        let eff_mask = low_mask(eff_bits);

        let mut light_ids = vec![0u32; num_zones];
        let mut zone_has_heavy = vec![false; num_zones];
        let mut heavy = Vec::with_capacity(heavy_keys.len());
        let mut heavy_map = HeavyMap::with_capacity(heavy_keys.len());

        // Heavy keys are sorted, hence grouped by zone in increasing order:
        // walk zones and heavy keys in lockstep, assigning ids serially
        // (light bucket first, then that zone's heavy buckets by key).
        let mut next_id = 0u32;
        let mut hi = 0usize;
        for zone in 0..num_zones {
            light_ids[zone] = next_id;
            next_id += 1;
            while hi < heavy_keys.len() {
                let hk = heavy_keys[hi];
                debug_assert!(hk <= eff_mask, "heavy key outside effective range");
                let hzone = (hk >> digit_shift) as usize;
                debug_assert!(hzone >= zone, "heavy keys must be sorted");
                if hzone != zone {
                    break;
                }
                heavy.push(HeavyBucket {
                    key: hk,
                    zone,
                    id: next_id,
                });
                zone_has_heavy[zone] = true;
                heavy_map.insert(hk, next_id);
                next_id += 1;
                hi += 1;
            }
        }
        debug_assert_eq!(hi, heavy_keys.len(), "all heavy keys must be placed");

        let overflow_id = if with_overflow && eff_bits < bits {
            let id = next_id;
            next_id += 1;
            Some(id)
        } else {
            None
        };

        Self {
            gamma,
            eff_bits,
            eff_mask,
            digit_shift,
            light_ids,
            zone_has_heavy,
            heavy,
            heavy_map,
            overflow_id,
            num_buckets: next_id as usize,
        }
    }

    /// Number of MSD zones (`2^γ`).
    #[inline]
    pub fn num_zones(&self) -> usize {
        self.light_ids.len()
    }

    /// The `GetBucketID` function of Alg. 2: maps a key (masked to the
    /// subproblem's remaining bits) to its bucket id.
    #[inline]
    pub fn bucket_id(&self, masked_key: u64) -> usize {
        if masked_key > self.eff_mask {
            // Key exceeds the sampled range: overflow bucket.
            debug_assert!(self.overflow_id.is_some());
            return self.overflow_id.unwrap_or(0) as usize;
        }
        let zone = (masked_key >> self.digit_shift) as usize;
        if self.zone_has_heavy[zone] {
            if let Some(id) = self.heavy_map.get(masked_key) {
                return id as usize;
            }
        }
        self.light_ids[zone] as usize
    }

    /// The half-open range of bucket ids belonging to MSD zone `z`
    /// (its light bucket plus its heavy buckets).
    pub fn zone_bucket_ids(&self, z: usize) -> std::ops::Range<usize> {
        let start = self.light_ids[z] as usize;
        let end = if z + 1 < self.light_ids.len() {
            self.light_ids[z + 1] as usize
        } else {
            self.num_buckets - usize::from(self.overflow_id.is_some())
        };
        start..end
    }

    /// Heavy buckets of zone `z`, in key order.
    pub fn zone_heavy(&self, z: usize) -> &[HeavyBucket] {
        let ids = self.zone_bucket_ids(z);
        // Heavy buckets of zone z have ids ids.start+1 .. ids.end, and the
        // `heavy` vec is in id order.
        let count = ids.len().saturating_sub(1);
        if count == 0 {
            return &[];
        }
        let first = self
            .heavy
            .iter()
            .position(|h| h.zone == z)
            .expect("zone has heavy buckets");
        &self.heavy[first..first + count]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_map_insert_and_get() {
        let mut m = HeavyMap::with_capacity(10);
        for i in 0..10u64 {
            m.insert(i * 1_000_003, i as u32);
        }
        assert_eq!(m.len(), 10);
        for i in 0..10u64 {
            assert_eq!(m.get(i * 1_000_003), Some(i as u32));
        }
        assert_eq!(m.get(7), None);
        assert_eq!(m.get(u64::MAX), None);
    }

    #[test]
    fn heavy_map_empty() {
        let m = HeavyMap::with_capacity(0);
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
    }

    #[test]
    fn bucket_table_no_heavy_no_overflow() {
        // 8 remaining bits, γ = 2 → 4 zones, 4 light buckets only.
        let t = BucketTable::build(8, 8, 2, &[], false);
        assert_eq!(t.num_buckets, 4);
        assert_eq!(t.num_zones(), 4);
        assert_eq!(t.overflow_id, None);
        // Keys 0..=63 are zone 0, 64..=127 zone 1, ...
        assert_eq!(t.bucket_id(0), 0);
        assert_eq!(t.bucket_id(63), 0);
        assert_eq!(t.bucket_id(64), 1);
        assert_eq!(t.bucket_id(255), 3);
        assert_eq!(t.zone_bucket_ids(2), 2..3);
        assert!(t.zone_heavy(2).is_empty());
    }

    #[test]
    fn bucket_table_matches_paper_figure_2() {
        // Paper Fig. 2: r = 16 (4 bits), γ = 2, heavy keys {4, 6, 9}.
        // Expected buckets: 0 light(00), 1 light(01), 2 heavy(4), 3 heavy(6),
        // 4 light(10), 5 heavy(9), 6 light(11).
        let t = BucketTable::build(4, 4, 2, &[4, 6, 9], false);
        assert_eq!(t.num_buckets, 7);
        assert_eq!(t.bucket_id(0), 0);
        assert_eq!(t.bucket_id(3), 0);
        assert_eq!(t.bucket_id(5), 1);
        assert_eq!(t.bucket_id(7), 1);
        assert_eq!(t.bucket_id(4), 2);
        assert_eq!(t.bucket_id(6), 3);
        assert_eq!(t.bucket_id(8), 4);
        assert_eq!(t.bucket_id(10), 4);
        assert_eq!(t.bucket_id(11), 4);
        assert_eq!(t.bucket_id(9), 5);
        assert_eq!(t.bucket_id(12), 6);
        assert_eq!(t.bucket_id(15), 6);
        // Zone structure.
        assert_eq!(t.zone_bucket_ids(0), 0..1);
        assert_eq!(t.zone_bucket_ids(1), 1..4);
        assert_eq!(t.zone_bucket_ids(2), 4..6);
        assert_eq!(t.zone_bucket_ids(3), 6..7);
        let h1 = t.zone_heavy(1);
        assert_eq!(h1.len(), 2);
        assert_eq!(h1[0].key, 4);
        assert_eq!(h1[1].key, 6);
        assert_eq!(t.zone_heavy(2)[0].key, 9);
    }

    #[test]
    fn overflow_bucket_assignment() {
        // 16 remaining bits but effective range only 8 bits.
        let t = BucketTable::build(16, 8, 4, &[], true);
        assert_eq!(t.num_buckets, 16 + 1);
        assert_eq!(t.overflow_id, Some(16));
        assert_eq!(t.bucket_id(255), 15);
        assert_eq!(t.bucket_id(256), 16);
        assert_eq!(t.bucket_id(65_535), 16);
    }

    #[test]
    fn no_overflow_bucket_when_range_not_shrunk() {
        let t = BucketTable::build(8, 8, 4, &[], true);
        assert_eq!(t.overflow_id, None);
        assert_eq!(t.num_buckets, 16);
    }

    #[test]
    fn heavy_bucket_ids_are_serial_within_zone() {
        // γ = 3 over 6 effective bits: zones are key >> 3.
        let heavy = vec![1u64, 2, 17, 40, 41, 42];
        let t = BucketTable::build(6, 6, 3, &heavy, false);
        // ids: zone0 light=0, heavy 1->1, 2->2; zone1 light=3; zone2 light=4,
        // heavy 17->5; zone3 light=6; zone4 light=7; zone5 light=8,
        // heavy 40->9,41->10,42->11; zone6 light=12; zone7 light=13.
        assert_eq!(t.bucket_id(1), 1);
        assert_eq!(t.bucket_id(2), 2);
        assert_eq!(t.bucket_id(0), 0);
        assert_eq!(t.bucket_id(17), 5);
        assert_eq!(t.bucket_id(16), 4);
        assert_eq!(t.bucket_id(40), 9);
        assert_eq!(t.bucket_id(41), 10);
        assert_eq!(t.bucket_id(42), 11);
        assert_eq!(t.bucket_id(43), 8);
        assert_eq!(t.num_buckets, 8 + 6);
    }
}
