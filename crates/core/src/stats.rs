//! Instrumentation counters.
//!
//! The performance-study experiments (paper Section 6.3 and the theory
//! checks of Theorems 4.6/4.7) need to observe *what the algorithm did*:
//! how many heavy keys were detected, how many records bypassed recursion,
//! how many records were moved, how much time each step took.  All counters
//! are relaxed atomics so they can be bumped from inside the parallel
//! recursion without synchronization overhead that would distort timings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters shared by all tasks of one sort invocation.
#[derive(Debug, Default)]
pub struct SortStats {
    /// Number of recursive DTSort calls (excluding base cases).
    pub recursive_calls: AtomicU64,
    /// Number of comparison-sort base cases.
    pub base_case_calls: AtomicU64,
    /// Total records handled by comparison-sort base cases.
    pub base_case_records: AtomicU64,
    /// Number of distinct heavy keys detected, summed over all calls.
    pub heavy_keys: AtomicU64,
    /// Records placed into heavy buckets (they skip all further recursion).
    pub heavy_records: AtomicU64,
    /// Records placed into the overflow bucket (Section 5).
    pub overflow_records: AtomicU64,
    /// Records moved by distribution steps (counting-sort scatters).
    pub distributed_records: AtomicU64,
    /// Records moved by dovetail-merge steps.
    pub merged_records: AtomicU64,
    /// Sample keys drawn over all recursive calls.
    pub samples_drawn: AtomicU64,
    /// Maximum recursion depth reached (1 = only the root level).
    pub max_depth: AtomicU64,
    /// Wall time of Step 1 (sampling) at the root call, nanoseconds.
    pub root_sample_ns: AtomicU64,
    /// Wall time of Step 2 (distribution) at the root call, nanoseconds.
    pub root_distribute_ns: AtomicU64,
    /// Wall time of Step 3 (recursion) at the root call, nanoseconds.
    pub root_recurse_ns: AtomicU64,
    /// Wall time of Step 4 (dovetail merging) at the root call, nanoseconds.
    pub root_merge_ns: AtomicU64,
}

impl SortStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn max(counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }

    /// An immutable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            recursive_calls: g(&self.recursive_calls),
            base_case_calls: g(&self.base_case_calls),
            base_case_records: g(&self.base_case_records),
            heavy_keys: g(&self.heavy_keys),
            heavy_records: g(&self.heavy_records),
            overflow_records: g(&self.overflow_records),
            distributed_records: g(&self.distributed_records),
            merged_records: g(&self.merged_records),
            samples_drawn: g(&self.samples_drawn),
            max_depth: g(&self.max_depth),
            root_sample_time: Duration::from_nanos(g(&self.root_sample_ns)),
            root_distribute_time: Duration::from_nanos(g(&self.root_distribute_ns)),
            root_recurse_time: Duration::from_nanos(g(&self.root_recurse_ns)),
            root_merge_time: Duration::from_nanos(g(&self.root_merge_ns)),
        }
    }
}

/// Plain-value snapshot of [`SortStats`], returned by the `*_with_stats`
/// entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub recursive_calls: u64,
    pub base_case_calls: u64,
    pub base_case_records: u64,
    pub heavy_keys: u64,
    pub heavy_records: u64,
    pub overflow_records: u64,
    pub distributed_records: u64,
    pub merged_records: u64,
    pub samples_drawn: u64,
    pub max_depth: u64,
    pub root_sample_time: Duration,
    pub root_distribute_time: Duration,
    pub root_recurse_time: Duration,
    pub root_merge_time: Duration,
}

impl StatsSnapshot {
    /// A proxy for the total work spent moving records: distribution plus
    /// merging movements.  Used by the Theorem 4.6/4.7 linear-work check.
    pub fn records_moved(&self) -> u64 {
        self.distributed_records + self.merged_records
    }

    /// Publishes this snapshot into an [`obs::MetricsRegistry`] as
    /// `sort.*` gauges (set semantics: the registry view reflects the
    /// *last published* sort, since each invocation's `SortStats` starts
    /// from zero).  No-op while `obs` recording is disabled.
    ///
    /// This is the registry *view* of the per-invocation stats: the
    /// counters themselves stay plain relaxed atomics owned by the sort
    /// call, so nothing about the existing `*_with_stats` API changes.
    pub fn publish(&self, reg: &obs::MetricsRegistry) {
        if !obs::enabled() {
            return;
        }
        let set = |name: &str, v: u64| {
            reg.gauge(name).set(i64::try_from(v).unwrap_or(i64::MAX));
        };
        set("sort.recursive_calls", self.recursive_calls);
        set("sort.base_case_calls", self.base_case_calls);
        set("sort.base_case_records", self.base_case_records);
        set("sort.heavy_keys", self.heavy_keys);
        set("sort.heavy_records", self.heavy_records);
        set("sort.overflow_records", self.overflow_records);
        set("sort.distributed_records", self.distributed_records);
        set("sort.merged_records", self.merged_records);
        set("sort.samples_drawn", self.samples_drawn);
        set("sort.max_depth", self.max_depth);
        let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        set("sort.root_sample_ns", ns(self.root_sample_time));
        set("sort.root_distribute_ns", ns(self.root_distribute_time));
        set("sort.root_recurse_ns", ns(self.root_recurse_time));
        set("sort.root_merge_ns", ns(self.root_merge_time));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = SortStats::new();
        SortStats::add(&s.heavy_keys, 3);
        SortStats::add(&s.heavy_keys, 4);
        SortStats::max(&s.max_depth, 2);
        SortStats::max(&s.max_depth, 1);
        let snap = s.snapshot();
        assert_eq!(snap.heavy_keys, 7);
        assert_eq!(snap.max_depth, 2);
        assert_eq!(snap.records_moved(), 0);
    }

    #[test]
    fn snapshot_default_is_zero() {
        let snap = SortStats::new().snapshot();
        assert_eq!(snap, StatsSnapshot::default());
    }

    #[test]
    fn publish_mirrors_snapshot_into_registry_gauges() {
        let was = obs::enabled();
        obs::enable();
        let s = SortStats::new();
        SortStats::add(&s.heavy_keys, 11);
        SortStats::add(&s.distributed_records, 500);
        SortStats::max(&s.max_depth, 3);
        let reg = obs::MetricsRegistry::new();
        s.snapshot().publish(&reg);
        let view = reg.snapshot();
        assert_eq!(view.gauge("sort.heavy_keys"), 11);
        assert_eq!(view.gauge("sort.distributed_records"), 500);
        assert_eq!(view.gauge("sort.max_depth"), 3);
        // Set semantics: republishing a fresh sort overwrites.
        SortStats::new().snapshot().publish(&reg);
        assert_eq!(reg.snapshot().gauge("sort.heavy_keys"), 0);
        if !was {
            obs::disable();
        }
    }
}
