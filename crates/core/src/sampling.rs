//! Step 1 of DovetailSort: sampling and heavy-key detection (paper Alg. 2,
//! lines 3–14, and Section 2.5).
//!
//! `Θ(2^γ · log n)` keys are sampled uniformly at random, sorted, and every
//! `⌈log n⌉`-th sample becomes a *subsample*.  A key with at least two
//! subsamples is declared **heavy**; by a Chernoff bound such a key has
//! `Ω(n / 2^γ)` occurrences in the input with high probability, and
//! conversely every key with `≥ c̄·n/2^γ` occurrences is detected whp.
//! The sample maximum additionally estimates the effective key range for the
//! overflow-bucket optimization (Section 5).

use crate::config::SortConfig;
use parlay::random::Rng;

/// Outcome of the sampling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult {
    /// Detected heavy keys (masked to the subproblem's bits), sorted and
    /// deduplicated.
    pub heavy_keys: Vec<u64>,
    /// Largest sampled key (masked); `0` when no samples were drawn.
    pub max_sample: u64,
    /// Number of samples drawn.
    pub num_samples: usize,
    /// Number of *distinct* values among the samples — the sample-level
    /// duplicate-structure estimate (`distinct_samples == num_samples`
    /// means the sample saw no duplicate at all, i.e. the input looks
    /// fully distinct).
    pub distinct_samples: usize,
}

/// Draws samples from `data`, detects heavy keys and the sample maximum.
///
/// `masked_key(i)` must return the key of record `i` already masked to the
/// subproblem's remaining bits.  `gamma` is the radix width chosen for this
/// level.  Deterministic for a fixed `rng`.
pub fn sample_and_detect<F>(
    n: usize,
    masked_key: F,
    gamma: u32,
    cfg: &SortConfig,
    rng: Rng,
) -> SampleResult
where
    F: Fn(usize) -> u64 + Sync,
{
    let num_samples = cfg.num_samples(n, gamma);
    if num_samples == 0 {
        return SampleResult {
            heavy_keys: Vec::new(),
            max_sample: 0,
            num_samples: 0,
            distinct_samples: 0,
        };
    }

    // Draw and sort the sample keys.  The sample set is small (o(n')), so a
    // sequential sort is within the work budget of the analysis (Thm. 4.5).
    let mut samples: Vec<u64> = (0..num_samples)
        .map(|i| masked_key(rng.ith_in(i as u64, n as u64) as usize))
        .collect();
    samples.sort_unstable();
    let max_sample = *samples.last().expect("non-empty samples");
    let distinct_samples = 1 + samples.windows(2).filter(|w| w[0] != w[1]).count();

    let heavy_keys = if cfg.heavy_detection {
        detect_heavy_from_sorted_samples(&samples, cfg.subsample_stride(n))
    } else {
        Vec::new()
    };

    SampleResult {
        heavy_keys,
        max_sample,
        num_samples,
        distinct_samples,
    }
}

/// Given the sorted sample keys, subsamples every `stride`-th key and returns
/// the keys with at least two subsamples (sorted, deduplicated).
pub fn detect_heavy_from_sorted_samples(sorted_samples: &[u64], stride: usize) -> Vec<u64> {
    let stride = stride.max(1);
    let mut heavy = Vec::new();
    let mut prev: Option<u64> = None;
    let mut idx = 0;
    while idx < sorted_samples.len() {
        let k = sorted_samples[idx];
        if prev == Some(k) && heavy.last() != Some(&k) {
            heavy.push(k);
        }
        prev = Some(k);
        idx += stride;
    }
    heavy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_heavy_basic() {
        // Subsample stride 2 over sorted samples: picks indices 0,2,4,...
        let samples = vec![1, 1, 1, 1, 2, 3, 5, 5, 5, 5, 5, 9];
        // Subsamples: 1,1,2,5,5,5 -> heavy = {1, 5}.
        assert_eq!(detect_heavy_from_sorted_samples(&samples, 2), vec![1, 5]);
    }

    #[test]
    fn detect_heavy_none() {
        let samples: Vec<u64> = (0..100).collect();
        assert!(detect_heavy_from_sorted_samples(&samples, 5).is_empty());
        assert!(detect_heavy_from_sorted_samples(&[], 3).is_empty());
    }

    #[test]
    fn detect_heavy_all_equal() {
        let samples = vec![7u64; 64];
        assert_eq!(detect_heavy_from_sorted_samples(&samples, 8), vec![7]);
        // Stride larger than the sample set: only one subsample, never heavy.
        assert!(detect_heavy_from_sorted_samples(&samples, 100).is_empty());
    }

    #[test]
    fn sampling_detects_a_dominant_key() {
        // 70% of the input is key 42; it must be detected as heavy.
        let cfg = SortConfig::default();
        let n = 200_000usize;
        let rng = Rng::new(17);
        let keyfn = |i: usize| -> u64 {
            if rng.fork(99).ith_f64(i as u64) < 0.7 {
                42
            } else {
                rng.fork(100).ith_in(i as u64, 1 << 20)
            }
        };
        let res = sample_and_detect(n, keyfn, 8, &cfg, Rng::new(3));
        assert!(
            res.heavy_keys.contains(&42),
            "heavy keys: {:?}",
            res.heavy_keys
        );
        assert!(res.num_samples > 0);
        assert!(res.max_sample >= 42);
    }

    #[test]
    fn sampling_detects_no_heavy_on_distinct_keys() {
        // All keys distinct: the probability of a false positive is tiny.
        let cfg = SortConfig::default();
        let n = 100_000usize;
        let res = sample_and_detect(n, |i| i as u64 * 2_654_435_761, 8, &cfg, Rng::new(5));
        assert!(
            res.heavy_keys.is_empty(),
            "unexpected heavy keys {:?}",
            res.heavy_keys
        );
    }

    #[test]
    fn heavy_detection_disabled_by_config() {
        let cfg = SortConfig::plain();
        let res = sample_and_detect(100_000, |_| 1u64, 8, &cfg, Rng::new(1));
        assert!(res.heavy_keys.is_empty());
        assert_eq!(res.max_sample, 1);
    }

    #[test]
    fn tiny_inputs_draw_no_samples() {
        let cfg = SortConfig::default();
        let res = sample_and_detect(2, |i| i as u64, 8, &cfg, Rng::new(1));
        assert_eq!(res.num_samples, 0);
        assert!(res.heavy_keys.is_empty());
    }

    #[test]
    fn max_sample_tracks_range() {
        let cfg = SortConfig::default();
        // Keys bounded by 1000: the sampled max must be ≤ 1000 and usually
        // close to it.
        let res = sample_and_detect(50_000, |i| (i % 1000) as u64, 8, &cfg, Rng::new(2));
        assert!(res.max_sample < 1000);
        assert!(
            res.max_sample > 900,
            "max sample {} too small",
            res.max_sample
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SortConfig::default();
        let f = |i: usize| (i as u64 * 7) % 1003;
        let a = sample_and_detect(30_000, f, 8, &cfg, Rng::new(9));
        let b = sample_and_detect(30_000, f, 8, &cfg, Rng::new(9));
        assert_eq!(a, b);
    }
}
