//! Public entry points of DovetailSort.
//!
//! All entry points are **stable** (equal keys keep their input order) and
//! run in parallel on the ambient rayon thread pool.  Each comes in three
//! flavours:
//!
//! * a plain function using the default [`SortConfig`];
//! * a `*_with` variant taking an explicit configuration;
//! * a `*_with_stats` variant additionally returning a [`StatsSnapshot`]
//!   describing what the algorithm did (heavy keys detected, records moved,
//!   per-step timings at the root level).

use crate::config::SortConfig;
use crate::key::IntegerKey;
use crate::recurse::{dtsort_impl, dtsort_run_impl};
use crate::stats::{SortStats, StatsSnapshot};

/// Sorts a slice of integer keys in non-decreasing order.
///
/// ```
/// let mut v = vec![5u32, 1, 4, 1, 5, 9, 2, 6];
/// dtsort::sort(&mut v);
/// assert_eq!(v, vec![1, 1, 2, 4, 5, 5, 6, 9]);
/// ```
pub fn sort<K: IntegerKey>(data: &mut [K]) {
    sort_with(data, &SortConfig::default());
}

/// [`sort`] with an explicit configuration.
pub fn sort_with<K: IntegerKey>(data: &mut [K], cfg: &SortConfig) {
    sort_by_key_with(data, |&k| k, cfg);
}

/// [`sort`] returning instrumentation counters.
pub fn sort_with_stats<K: IntegerKey>(data: &mut [K], cfg: &SortConfig) -> StatsSnapshot {
    sort_by_key_with_stats(data, |&k| k, cfg)
}

/// Sorts `(key, value)` records by key, stably.
///
/// This is the record shape used throughout the paper's evaluation
/// (32-bit/64-bit keys with 32-bit/64-bit values).
///
/// ```
/// let mut v = vec![(3u32, 'c'), (1, 'a'), (3, 'b')];
/// dtsort::sort_pairs(&mut v);
/// assert_eq!(v, vec![(1, 'a'), (3, 'c'), (3, 'b')]);
/// ```
pub fn sort_pairs<K: IntegerKey, V: Copy + Send + Sync>(data: &mut [(K, V)]) {
    sort_pairs_with(data, &SortConfig::default());
}

/// [`sort_pairs`] with an explicit configuration.
pub fn sort_pairs_with<K: IntegerKey, V: Copy + Send + Sync>(
    data: &mut [(K, V)],
    cfg: &SortConfig,
) {
    sort_by_key_with(data, |r| r.0, cfg);
}

/// [`sort_pairs`] returning instrumentation counters.
pub fn sort_pairs_with_stats<K: IntegerKey, V: Copy + Send + Sync>(
    data: &mut [(K, V)],
    cfg: &SortConfig,
) -> StatsSnapshot {
    sort_by_key_with_stats(data, |r| r.0, cfg)
}

/// Sorts arbitrary `Copy` records stably by an integer key projection.
///
/// ```
/// #[derive(Clone, Copy, PartialEq, Debug)]
/// struct Edge { from: u32, to: u32 }
/// let mut edges = vec![Edge { from: 2, to: 9 }, Edge { from: 1, to: 7 }];
/// dtsort::sort_by_key(&mut edges, |e| e.from);
/// assert_eq!(edges[0].from, 1);
/// ```
pub fn sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    sort_by_key_with(data, key, &SortConfig::default());
}

/// [`sort_by_key`] with an explicit configuration.
pub fn sort_by_key_with<T, K, F>(data: &mut [T], key: F, cfg: &SortConfig)
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let stats = SortStats::new();
    let keyfn = move |r: &T| key(r).to_ordered_u64();
    dtsort_impl(data, &keyfn, K::BITS, cfg, &stats);
}

/// [`sort_by_key`] returning instrumentation counters.
pub fn sort_by_key_with_stats<T, K, F>(data: &mut [T], key: F, cfg: &SortConfig) -> StatsSnapshot
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let stats = SortStats::new();
    let keyfn = move |r: &T| key(r).to_ordered_u64();
    dtsort_impl(data, &keyfn, K::BITS, cfg, &stats);
    stats.snapshot()
}

/// Report from sorting one *run* of a streamed input
/// ([`sort_run_pairs_with`] / [`sort_run_by_key_with`]).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Root-level heavy keys confirmed by this run's bucket counts, in the
    /// ordered-`u64` key domain ([`IntegerKey::to_ordered_u64`]), ordered by
    /// decreasing frequency in this run (so truncating keeps the heaviest).
    /// Feed them as `carry` into the next run's sort so duplicate-dominated
    /// streams keep their `O(n)` fast path across run boundaries.
    pub heavy_keys: Vec<u64>,
}

/// Stably sorts one run of `(key, value)` records, seeding heavy-key
/// detection with `carry` (heavy keys reported by earlier runs, in the
/// ordered-`u64` domain), and reports this run's confirmed heavy keys.
///
/// This is the per-chunk entry point of the streaming sorter: carrying the
/// report across runs means a key that is heavy across the whole stream is
/// treated as heavy in every run, even when a single run's sample would
/// miss it.
pub fn sort_run_pairs_with<K: IntegerKey, V: Copy + Send + Sync>(
    data: &mut [(K, V)],
    cfg: &SortConfig,
    carry: &[u64],
) -> RunReport {
    sort_run_by_key_with(data, |r| r.0, cfg, carry)
}

/// [`sort_run_pairs_with`] for arbitrary records with a key projection.
pub fn sort_run_by_key_with<T, K, F>(
    data: &mut [T],
    key: F,
    cfg: &SortConfig,
    carry: &[u64],
) -> RunReport
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let stats = SortStats::new();
    let keyfn = move |r: &T| key(r).to_ordered_u64();
    let heavy_keys = dtsort_run_impl(data, &keyfn, K::BITS, cfg, &stats, carry);
    RunReport { heavy_keys }
}

/// Unstable integer sort.
///
/// DovetailSort is inherently stable; this alias exists for API symmetry
/// with the unstable baselines (and the unstable MSD sort of Theorem 4.1).
/// It currently runs the same stable algorithm, which is a valid (if
/// slightly stronger) implementation of an unstable sort.
pub fn sort_unstable<K: IntegerKey>(data: &mut [K]) {
    sort(data);
}

/// Returns `true` if `data` is sorted non-decreasingly by `key`.
pub fn is_sorted_by_key<T, K, F>(data: &[T], key: F) -> bool
where
    K: IntegerKey,
    F: Fn(&T) -> K,
{
    data.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn sort_plain_keys_u32_and_u64() {
        let rng = Rng::new(1);
        let mut a: Vec<u32> = (0..60_000).map(|i| rng.ith(i) as u32).collect();
        let mut want = a.clone();
        want.sort_unstable();
        sort(&mut a);
        assert_eq!(a, want);

        let mut b: Vec<u64> = (0..60_000).map(|i| rng.ith(i)).collect();
        let mut want = b.clone();
        want.sort_unstable();
        sort(&mut b);
        assert_eq!(b, want);
    }

    #[test]
    fn sort_signed_keys() {
        let rng = Rng::new(2);
        let mut a: Vec<i64> = (0..50_000).map(|i| rng.ith(i) as i64).collect();
        let mut want = a.clone();
        want.sort_unstable();
        sort(&mut a);
        assert_eq!(a, want);

        let mut b: Vec<i32> = (0..50_000).map(|i| rng.ith(i) as i32).collect();
        let mut want = b.clone();
        want.sort_unstable();
        sort(&mut b);
        assert_eq!(b, want);
    }

    #[test]
    fn sort_small_key_types() {
        let rng = Rng::new(3);
        let mut a: Vec<u8> = (0..100_000).map(|i| rng.ith(i) as u8).collect();
        let mut want = a.clone();
        want.sort_unstable();
        sort(&mut a);
        assert_eq!(a, want);

        let mut b: Vec<u16> = (0..100_000).map(|i| rng.ith(i) as u16).collect();
        let mut want = b.clone();
        want.sort_unstable();
        sort(&mut b);
        assert_eq!(b, want);
    }

    #[test]
    fn sort_pairs_is_stable() {
        let rng = Rng::new(4);
        let input: Vec<(u32, u32)> = (0..120_000)
            .map(|i| (rng.ith_in(i as u64, 50) as u32, i as u32))
            .collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        let mut want = input;
        want.sort_by_key(|&(k, _)| k);
        assert_eq!(got, want);
    }

    #[test]
    fn sort_by_key_on_structs() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Rec {
            key: u64,
            payload: [u8; 8],
        }
        let rng = Rng::new(5);
        let input: Vec<Rec> = (0..40_000)
            .map(|i| Rec {
                key: rng.ith_in(i, 1 << 40),
                payload: i.to_le_bytes(),
            })
            .collect();
        let mut got = input.clone();
        sort_by_key(&mut got, |r| r.key);
        let mut want = input;
        want.sort_by_key(|r| r.key);
        assert_eq!(got, want);
    }

    #[test]
    fn tiny_inputs() {
        let mut empty: Vec<u32> = vec![];
        sort(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![9u32];
        sort(&mut one);
        assert_eq!(one, vec![9]);

        let mut two = vec![9u32, 1];
        sort(&mut two);
        assert_eq!(two, vec![1, 9]);
    }

    #[test]
    fn already_sorted_and_reverse_sorted() {
        let mut asc: Vec<u32> = (0..100_000).collect();
        let want = asc.clone();
        sort(&mut asc);
        assert_eq!(asc, want);

        let mut desc: Vec<u32> = (0..100_000).rev().collect();
        sort(&mut desc);
        assert_eq!(desc, want);
    }

    #[test]
    fn all_equal_keys() {
        let mut v = vec![42u64; 200_000];
        sort(&mut v);
        assert!(v.iter().all(|&x| x == 42));

        let input: Vec<(u32, u32)> = (0..200_000).map(|i| (7, i)).collect();
        let mut got = input.clone();
        sort_pairs(&mut got);
        assert_eq!(got, input, "all-equal input must be untouched (stability)");
    }

    #[test]
    fn extreme_key_values() {
        let mut v = vec![u64::MAX, 0, u64::MAX - 1, 1, u64::MAX, 0];
        sort(&mut v);
        assert_eq!(v, vec![0, 0, 1, u64::MAX - 1, u64::MAX, u64::MAX]);
    }

    #[test]
    fn stats_are_returned() {
        let rng = Rng::new(6);
        let mut v: Vec<u32> = (0..100_000).map(|i| rng.ith(i) as u32).collect();
        let snap = sort_with_stats(&mut v, &SortConfig::default());
        assert!(is_sorted_by_key(&v, |&k| k));
        assert!(snap.recursive_calls >= 1);
        assert!(snap.distributed_records >= 100_000);
        assert!(snap.samples_drawn > 0);
    }

    #[test]
    fn is_sorted_helper() {
        assert!(is_sorted_by_key::<u32, u32, _>(&[], |&k| k));
        assert!(is_sorted_by_key(&[1u32, 1, 2], |&k| k));
        assert!(!is_sorted_by_key(&[2u32, 1], |&k| k));
    }
}
