//! Step 4 of DovetailSort: dovetail merging (paper Section 3.4, Alg. 3).
//!
//! After distribution and recursion, each MSD zone consists of one sorted
//! light bucket followed by `m ≥ 0` heavy buckets (each holding all records
//! of one heavy key, ordered by key).  The zone's final content interleaves
//! the heavy buckets into the light bucket at the positions given by binary
//! searching each heavy key in the light bucket.
//!
//! Three implementations are provided, selectable through
//! [`crate::MergeStrategy`]:
//!
//! * [`dovetail_merge_across`] — the production path: the zone lives in the
//!   scratch buffer and is written directly to its final location in the
//!   output buffer, moving every record exactly once (the "minimizing data
//!   movement" optimization of Section 5).
//! * [`dovetail_merge_in_place`] — the paper's Algorithm 3 verbatim: the
//!   zone is already in the output array; the smaller of {light records,
//!   heavy records} is copied out to a temporary buffer and the rest is
//!   relocated inside the array, using the flip-based in-place circular
//!   shift when a heavy bucket's destination overlaps its current position.
//! * [`parallel_merge_zone`] — the `PLMerge` baseline: a standard parallel
//!   merge of the light bucket with the concatenation of the heavy buckets.

use parlay::binsearch::lower_bound_by;
use parlay::flip::par_reverse;
use parlay::merge::par_merge_into;
use parlay::par::parallel_for;
use parlay::slice::UnsafeSliceCell;

/// Zone layout: where each heavy bucket starts in the final order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneLayout {
    /// `positions[i]` = index in the light bucket before which heavy bucket
    /// `i` must be placed (insertion point of its key).
    pub positions: Vec<usize>,
    /// Exclusive prefix sums of heavy bucket sizes (`heavy_prefix[i]` = total
    /// heavy records before bucket `i`); length `m + 1`.
    pub heavy_prefix: Vec<usize>,
}

impl ZoneLayout {
    /// Computes the layout by binary searching each heavy key in the sorted
    /// light bucket (Alg. 3, line 1).
    pub fn compute<T, F>(light: &[T], heavy: &[(u64, usize)], key: &F) -> Self
    where
        F: Fn(&T) -> u64,
    {
        let m = heavy.len();
        let mut positions = Vec::with_capacity(m);
        let mut heavy_prefix = Vec::with_capacity(m + 1);
        heavy_prefix.push(0);
        for &(hkey, hlen) in heavy {
            let p = lower_bound_by(light, |x| key(x).cmp(&hkey));
            positions.push(p);
            heavy_prefix.push(heavy_prefix.last().unwrap() + hlen);
        }
        ZoneLayout {
            positions,
            heavy_prefix,
        }
    }

    /// Destination offset (within the zone) of heavy bucket `i`.
    #[inline]
    pub fn heavy_dest(&self, i: usize) -> usize {
        self.positions[i] + self.heavy_prefix[i]
    }

    /// Destination offset (within the zone) of light segment `j`
    /// (`j ∈ 0..=m`), where segment `j` is the part of the light bucket
    /// between insertion points `j` and `j+1`.
    #[inline]
    pub fn light_segment_dest(&self, j: usize, light_len: usize) -> (usize, usize, usize) {
        let m = self.positions.len();
        let start = if j == 0 { 0 } else { self.positions[j - 1] };
        let end = if j == m { light_len } else { self.positions[j] };
        (start, end, start + self.heavy_prefix[j])
    }

    /// Total number of heavy records.
    #[inline]
    pub fn total_heavy(&self) -> usize {
        *self.heavy_prefix.last().unwrap_or(&0)
    }
}

/// Dovetail-merges a zone from the scratch buffer into its destination.
///
/// * `light` — the sorted light bucket (in the scratch buffer).
/// * `heavy` — the heavy buckets, in key order, as `(key, records)` slices
///   (also in the scratch buffer, contiguous after the light bucket).
/// * `dst` — the zone's final location; `dst.len()` must equal
///   `light.len() + Σ heavy[i].1.len()`.
///
/// Every record is written exactly once.  Returns the number of records
/// moved.
pub fn dovetail_merge_across<T, F>(
    light: &[T],
    heavy: &[(u64, &[T])],
    dst: &mut [T],
    key: &F,
) -> usize
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let total_heavy: usize = heavy.iter().map(|(_, s)| s.len()).sum();
    assert_eq!(
        dst.len(),
        light.len() + total_heavy,
        "dovetail_merge_across: destination size mismatch"
    );
    if heavy.is_empty() {
        dst.copy_from_slice(light);
        return light.len();
    }
    let sizes: Vec<(u64, usize)> = heavy.iter().map(|&(k, s)| (k, s.len())).collect();
    let layout = ZoneLayout::compute(light, &sizes, key);
    let m = heavy.len();
    let dst_cell = UnsafeSliceCell::new(dst);

    // 2m + 1 disjoint destination pieces: m heavy buckets and m+1 light
    // segments.  All copies are independent.
    parallel_for(0, 2 * m + 1, |piece| {
        if piece < m {
            let (_, src) = heavy[piece];
            if !src.is_empty() {
                let d = layout.heavy_dest(piece);
                let out = unsafe { dst_cell.slice_mut(d, src.len()) };
                out.copy_from_slice(src);
            }
        } else {
            let j = piece - m;
            let (start, end, d) = layout.light_segment_dest(j, light.len());
            if end > start {
                let out = unsafe { dst_cell.slice_mut(d, end - start) };
                out.copy_from_slice(&light[start..end]);
            }
        }
    });
    light.len() + total_heavy
}

/// The paper's Algorithm 3: in-place dovetail merge of a zone that already
/// resides in the output array.
///
/// `zone[..light_len]` is the sorted light bucket; the heavy buckets follow
/// contiguously with lengths `heavy_lens` (in key order).  At most
/// `min(light, heavy)` records are staged through a temporary buffer; the
/// rest move within `zone` (possibly twice, via the flip trick).
///
/// Returns the number of record movements performed (for the work counters).
pub fn dovetail_merge_in_place<T, F>(
    zone: &mut [T],
    light_len: usize,
    heavy_lens: &[usize],
    key: &F,
) -> usize
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let m = heavy_lens.len();
    if m == 0 {
        return 0;
    }
    let total_heavy: usize = heavy_lens.iter().sum();
    assert_eq!(
        zone.len(),
        light_len + total_heavy,
        "dovetail_merge_in_place: zone size mismatch"
    );
    if total_heavy == 0 {
        return 0;
    }
    // Keys of the heavy buckets, read from their first records.
    let mut heavy_info = Vec::with_capacity(m);
    {
        let mut off = light_len;
        for &len in heavy_lens {
            debug_assert!(len > 0, "empty heavy bucket");
            heavy_info.push((key(&zone[off]), len));
            off += len;
        }
    }
    let layout = ZoneLayout::compute(&zone[..light_len], &heavy_info, key);
    let mut moved = 0usize;

    if light_len <= total_heavy {
        // More heavy than light records: copy the light bucket out (Alg. 3,
        // lines 2–12).
        let temp: Vec<T> = zone[..light_len].to_vec();
        moved += light_len;
        // Move heavy buckets to their destinations, one by one, in order.
        let mut cur_start = light_len;
        for i in 0..m {
            let len = heavy_lens[i];
            let dest = layout.heavy_dest(i);
            debug_assert!(dest <= cur_start);
            if dest == cur_start {
                // Already in place.
            } else if dest + len > cur_start {
                // Destination overlaps the current position: flip the bucket,
                // then flip the whole affected region (Alg. 3, lines 5–8).
                par_reverse(&mut zone[cur_start..cur_start + len]);
                par_reverse(&mut zone[dest..cur_start + len]);
                moved += 2 * len + (cur_start - dest);
            } else {
                // Disjoint: direct copy (the vacated region holds only light
                // records, already backed up, or earlier heavy buckets that
                // have already been relocated).
                zone.copy_within(cur_start..cur_start + len, dest);
                moved += len;
            }
            cur_start += len;
        }
        // Copy the light segments back from the temporary buffer to their
        // final positions (Alg. 3, line 12), all in parallel.
        let zone_cell = UnsafeSliceCell::new(zone);
        let temp_ref = &temp;
        let layout_ref = &layout;
        parallel_for(0, m + 1, |j| {
            let (start, end, d) = layout_ref.light_segment_dest(j, light_len);
            if end > start {
                let out = unsafe { zone_cell.slice_mut(d, end - start) };
                out.copy_from_slice(&temp_ref[start..end]);
            }
        });
        moved += light_len;
    } else {
        // More light than heavy records: symmetric case (Alg. 3, line 13).
        // Copy the heavy region out, slide the light segments right (from the
        // last segment to the first so sources are never clobbered), then
        // drop the heavy buckets into the gaps.
        let temp: Vec<T> = zone[light_len..].to_vec();
        moved += total_heavy;
        for j in (0..=m).rev() {
            let (start, end, d) = layout.light_segment_dest(j, light_len);
            if end > start && d != start {
                zone.copy_within(start..end, d);
                moved += end - start;
            }
        }
        let zone_cell = UnsafeSliceCell::new(zone);
        let temp_ref = &temp;
        let layout_ref = &layout;
        parallel_for(0, m, |i| {
            let len = heavy_lens[i];
            let src_off = layout_ref.heavy_prefix[i];
            let d = layout_ref.heavy_dest(i);
            let out = unsafe { zone_cell.slice_mut(d, len) };
            out.copy_from_slice(&temp_ref[src_off..src_off + len]);
        });
        moved += total_heavy;
    }
    moved
}

/// The `PLMerge` baseline: merges the sorted light bucket with the (sorted)
/// concatenation of the heavy buckets into `dst` using a standard parallel
/// merge.  Returns the number of records moved.
pub fn parallel_merge_zone<T, F>(light: &[T], heavy_all: &[T], dst: &mut [T], key: &F) -> usize
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    assert_eq!(
        dst.len(),
        light.len() + heavy_all.len(),
        "parallel_merge_zone: destination size mismatch"
    );
    if heavy_all.is_empty() {
        dst.copy_from_slice(light);
        return light.len();
    }
    par_merge_into(light, heavy_all, dst, &|a, b| key(a) < key(b));
    dst.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: stable sort of the concatenation by key.
    fn reference_zone(light: &[(u64, u32)], heavy: &[(u64, Vec<(u64, u32)>)]) -> Vec<(u64, u32)> {
        let mut all: Vec<(u64, u32)> = light.to_vec();
        for (_, h) in heavy {
            all.extend_from_slice(h);
        }
        all.sort_by_key(|&(k, _)| k);
        all
    }

    type Zone = (Vec<(u64, u32)>, Vec<(u64, Vec<(u64, u32)>)>);

    fn make_zone(light_keys: &[u64], heavy_spec: &[(u64, usize)]) -> Zone {
        let mut tag = 0u32;
        let light: Vec<(u64, u32)> = light_keys
            .iter()
            .map(|&k| {
                tag += 1;
                (k, tag)
            })
            .collect();
        let heavy: Vec<(u64, Vec<(u64, u32)>)> = heavy_spec
            .iter()
            .map(|&(k, cnt)| {
                let recs = (0..cnt)
                    .map(|_| {
                        tag += 1;
                        (k, tag)
                    })
                    .collect();
                (k, recs)
            })
            .collect();
        (light, heavy)
    }

    fn keyf(r: &(u64, u32)) -> u64 {
        r.0
    }

    #[test]
    fn merge_across_matches_reference() {
        // Paper Fig. 3: light = {5a, 5b, 7a}, heavy = 4×5 records of key 4
        // and 3 of key 6.
        let (light, heavy) = make_zone(&[5, 5, 7], &[(4, 5), (6, 3)]);
        let heavy_slices: Vec<(u64, &[(u64, u32)])> =
            heavy.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let mut dst = vec![(0u64, 0u32); 11];
        let moved = dovetail_merge_across(&light, &heavy_slices, &mut dst, &keyf);
        assert_eq!(moved, 11);
        assert_eq!(dst, reference_zone(&light, &heavy));
    }

    #[test]
    fn merge_across_no_heavy() {
        let (light, _) = make_zone(&[1, 2, 3, 4], &[]);
        let mut dst = vec![(0u64, 0u32); 4];
        dovetail_merge_across(&light, &[], &mut dst, &keyf);
        assert_eq!(dst, light);
    }

    #[test]
    fn merge_across_heavy_at_ends_and_empty_light() {
        // Heavy keys below and above every light key.
        let (light, heavy) = make_zone(&[10, 20, 30], &[(1, 4), (50, 2)]);
        let heavy_slices: Vec<(u64, &[(u64, u32)])> =
            heavy.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let mut dst = vec![(0u64, 0u32); 9];
        dovetail_merge_across(&light, &heavy_slices, &mut dst, &keyf);
        assert_eq!(dst, reference_zone(&light, &heavy));

        // Empty light bucket.
        let (light, heavy) = make_zone(&[], &[(3, 2), (7, 3)]);
        let heavy_slices: Vec<(u64, &[(u64, u32)])> =
            heavy.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let mut dst = vec![(0u64, 0u32); 5];
        dovetail_merge_across(&light, &heavy_slices, &mut dst, &keyf);
        assert_eq!(dst, reference_zone(&light, &heavy));
    }

    fn run_in_place(light: &[(u64, u32)], heavy: &[(u64, Vec<(u64, u32)>)]) -> Vec<(u64, u32)> {
        let mut zone: Vec<(u64, u32)> = light.to_vec();
        let mut lens = Vec::new();
        for (_, h) in heavy {
            zone.extend_from_slice(h);
            lens.push(h.len());
        }
        dovetail_merge_in_place(&mut zone, light.len(), &lens, &keyf);
        zone
    }

    #[test]
    fn merge_in_place_heavy_majority_matches_reference() {
        // More heavy than light records, matching the paper's Fig. 3 walk.
        let (light, heavy) = make_zone(&[5, 5, 7], &[(4, 5), (6, 3)]);
        assert_eq!(run_in_place(&light, &heavy), reference_zone(&light, &heavy));
    }

    #[test]
    fn merge_in_place_light_majority_matches_reference() {
        let (light, heavy) = make_zone(&[1, 2, 4, 6, 8, 9, 11, 13, 15, 20], &[(5, 2), (10, 1)]);
        assert_eq!(run_in_place(&light, &heavy), reference_zone(&light, &heavy));
    }

    #[test]
    fn merge_in_place_overlapping_destination_uses_flip() {
        // A single huge heavy bucket whose destination overlaps itself.
        let (light, heavy) = make_zone(&[100, 200], &[(50, 40)]);
        assert_eq!(run_in_place(&light, &heavy), reference_zone(&light, &heavy));
        // Heavy key larger than all light keys: destination equals current
        // position (no movement needed).
        let (light, heavy) = make_zone(&[1, 2], &[(50, 40)]);
        assert_eq!(run_in_place(&light, &heavy), reference_zone(&light, &heavy));
    }

    #[test]
    fn merge_in_place_no_heavy_is_noop() {
        let (light, _) = make_zone(&[3, 1, 2], &[]);
        let mut zone = light.clone();
        let moved = dovetail_merge_in_place(&mut zone, 3, &[], &keyf);
        assert_eq!(moved, 0);
        assert_eq!(zone, light);
    }

    #[test]
    fn merge_in_place_randomized_against_reference() {
        use parlay::random::Rng;
        let rng = Rng::new(99);
        for case in 0..50u64 {
            let r = rng.fork(case);
            let n_light = r.ith_in(0, 200) as usize;
            let m = r.ith_in(1, 6) as usize;
            // Light keys: even numbers (sorted); heavy keys: odd numbers so
            // the key sets are disjoint, as guaranteed by the algorithm.
            let mut light_keys: Vec<u64> = (0..n_light)
                .map(|i| r.ith_in(2 + i as u64, 500) * 2)
                .collect();
            light_keys.sort_unstable();
            let mut heavy_keys: Vec<u64> = (0..m)
                .map(|i| r.ith_in(1000 + i as u64, 500) * 2 + 1)
                .collect();
            heavy_keys.sort_unstable();
            heavy_keys.dedup();
            let heavy_spec: Vec<(u64, usize)> = heavy_keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, 1 + r.ith_in(2000 + i as u64, 100) as usize))
                .collect();
            let (light, heavy) = make_zone(&light_keys, &heavy_spec);
            assert_eq!(
                run_in_place(&light, &heavy),
                reference_zone(&light, &heavy),
                "case {case}"
            );
            // Cross-buffer variant on the same zone.
            let heavy_slices: Vec<(u64, &[(u64, u32)])> =
                heavy.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            let total: usize =
                light.len() + heavy_slices.iter().map(|(_, s)| s.len()).sum::<usize>();
            let mut dst = vec![(0u64, 0u32); total];
            dovetail_merge_across(&light, &heavy_slices, &mut dst, &keyf);
            assert_eq!(dst, reference_zone(&light, &heavy), "across case {case}");
        }
    }

    #[test]
    fn parallel_merge_zone_matches_reference() {
        let (light, heavy) = make_zone(&[1, 3, 5, 7, 9, 11], &[(4, 3), (8, 2)]);
        let mut heavy_all = Vec::new();
        for (_, h) in &heavy {
            heavy_all.extend_from_slice(h);
        }
        let mut dst = vec![(0u64, 0u32); light.len() + heavy_all.len()];
        parallel_merge_zone(&light, &heavy_all, &mut dst, &keyf);
        assert_eq!(dst, reference_zone(&light, &heavy));
    }

    #[test]
    fn zone_layout_positions() {
        let light: Vec<(u64, u32)> = vec![(2, 0), (4, 1), (6, 2), (8, 3)];
        let layout = ZoneLayout::compute(&light, &[(3, 10), (7, 5)], &keyf);
        assert_eq!(layout.positions, vec![1, 3]);
        assert_eq!(layout.heavy_prefix, vec![0, 10, 15]);
        assert_eq!(layout.heavy_dest(0), 1);
        assert_eq!(layout.heavy_dest(1), 13);
        assert_eq!(layout.light_segment_dest(0, 4), (0, 1, 0));
        assert_eq!(layout.light_segment_dest(1, 4), (1, 3, 11));
        assert_eq!(layout.light_segment_dest(2, 4), (3, 4, 18));
        assert_eq!(layout.total_heavy(), 15);
    }
}
