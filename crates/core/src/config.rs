//! Tuning knobs of DovetailSort.
//!
//! The defaults follow the paper's "Parameter Selection" (Section 6):
//! a variable radix width `γ = log2(∛n)` clamped to `[8, 12]` (theory:
//! `γ = Θ(√log r)`, Section 4), base-case threshold `θ = 2^14`, sampling of
//! `Θ(2^γ log n)` keys with a `log n` subsample stride, the overflow-bucket
//! key-range optimization (Section 5), and the dovetail merge.  Every knob is
//! exposed so the ablation experiments of Section 6.3 can be reproduced.

/// Strategy used by Step 4 (interleaving heavy and light buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// The paper's optimized dovetail merge across the ping-pong buffers:
    /// heavy-key positions are binary searched in the sorted light bucket and
    /// every record is copied directly to its final destination (Section 5,
    /// "minimizing data movement").  Default.
    Dovetail,
    /// The paper's Algorithm 3 exactly as written: data is first placed back
    /// into the output array and the heavy buckets are then interleaved fully
    /// in place, using the flip (in-place circular shift) trick; at most half
    /// of the zone is copied through a temporary buffer.
    DovetailInPlace,
    /// The `PLMerge` baseline of Section 6.3: a standard parallel merge of
    /// the light bucket with the (already sorted) concatenation of heavy
    /// buckets.
    ParallelMerge,
    /// Skip the merge entirely.  The output is *not* correctly interleaved;
    /// this exists only to measure the cost of the merge step as in
    /// Fig. 4(c)(d) ("Others" bars).
    Skip,
}

/// Configuration of a DovetailSort run.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Base-case threshold `θ`: subproblems of at most this many records are
    /// handled by a stable comparison sort (paper default `2^14`).
    pub base_case_threshold: usize,
    /// Lower clamp for the radix width `γ`.
    pub min_radix_bits: u32,
    /// Upper clamp for the radix width `γ`.
    pub max_radix_bits: u32,
    /// If set, use exactly this radix width instead of the `log2(∛n)` rule.
    pub radix_bits_override: Option<u32>,
    /// Enable sampling-based heavy-key detection (Step 1).  Disabling it
    /// yields the "Plain" MSD radix sort of the Fig. 4(a)(b) ablation.
    pub heavy_detection: bool,
    /// How Step 4 interleaves heavy and light buckets.
    pub merge_strategy: MergeStrategy,
    /// Enable the overflow-bucket key-range optimization (Section 5): the
    /// effective key range of each subproblem is estimated from the sample
    /// maximum and keys above it go to a dedicated overflow bucket.
    pub overflow_bucket: bool,
    /// Multiplier `c` in the sample count `c · 2^γ · log2 n`.
    pub sample_factor: usize,
    /// Seed of the deterministic splittable RNG used for sampling.
    pub seed: u64,
}

impl Default for SortConfig {
    fn default() -> Self {
        Self {
            base_case_threshold: 1 << 14,
            min_radix_bits: 8,
            max_radix_bits: 12,
            radix_bits_override: None,
            heavy_detection: true,
            merge_strategy: MergeStrategy::Dovetail,
            overflow_bucket: true,
            sample_factor: 1,
            seed: 0x005E_EDD7_5027,
        }
    }
}

impl SortConfig {
    /// Configuration of the "Plain" ablation: identical MSD sort without
    /// heavy-key detection (Fig. 4(a)(b)).
    pub fn plain() -> Self {
        Self {
            heavy_detection: false,
            ..Self::default()
        }
    }

    /// Configuration using the `PLMerge` baseline for Step 4 (Fig. 4(c)(d)).
    pub fn with_parallel_merge() -> Self {
        Self {
            merge_strategy: MergeStrategy::ParallelMerge,
            ..Self::default()
        }
    }

    /// Radix width `γ` for a (sub)problem of `n` records with `bits`
    /// remaining key bits.
    ///
    /// Uses the paper's rule `γ = log2(∛n)` clamped to
    /// `[min_radix_bits, max_radix_bits]`, never exceeding the number of
    /// remaining bits, and at least 1.
    pub fn radix_bits(&self, n: usize, bits: u32) -> u32 {
        let gamma = match self.radix_bits_override {
            Some(g) => g,
            None => {
                // log2(n)/3, the paper's variable radix width.
                let log_n = usize::BITS - n.max(2).leading_zeros();
                (log_n / 3).clamp(self.min_radix_bits, self.max_radix_bits)
            }
        };
        gamma.min(bits).max(1)
    }

    /// Number of sample keys for a subproblem of `n` records with radix
    /// width `gamma`: `c · 2^γ · ⌈log2 n⌉`, capped at `n/2` so that tiny
    /// subproblems are not oversampled.
    pub fn num_samples(&self, n: usize, gamma: u32) -> usize {
        if n < 4 {
            return 0;
        }
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        let want = self.sample_factor.max(1) * (1usize << gamma) * log_n;
        want.min(n / 2)
    }

    /// Subsample stride used by the heavy-key detector: every `⌈log2 n⌉`-th
    /// sample (in sorted order) is a subsample; keys with at least two
    /// subsamples are declared heavy (Section 2.5).
    pub fn subsample_stride(&self, n: usize) -> usize {
        ((usize::BITS - n.max(2).leading_zeros()) as usize).max(1)
    }
}

/// On-disk encoding of spilled runs (the `stream` crate).
///
/// Runs are written once and read once (or twice for `finish_into`), so
/// the codec trades CPU against disk bytes on exactly one round trip.  On
/// spill-bound workloads bytes written *is* the wall clock, which makes
/// even a modest ratio a direct speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillCompression {
    /// The flat reference format: `key (8B LE) | value bytes`, with a
    /// `u32 LE` length prefix for variable-length values.  This is the
    /// format every release so far has written, and it stays the
    /// byte-identical reference side of the compression differential
    /// tests.
    #[default]
    Off,
    /// Block format: records are grouped into independently decodable
    /// blocks; within each block the sorted `u64` keys are delta-encoded
    /// as LEB128 varints (monotone per run, so deltas are small) and the
    /// concatenated value bytes are LZ-compressed (hand-rolled LZ77
    /// codec, no dependencies), with a per-block store-raw fallback for
    /// incompressible payloads.
    DeltaLz,
}

/// Backend used for spill-file reads and writes (the `stream` crate's
/// `SpillIo` trait).
///
/// The default resolves from the `PISORT_SPILL_IO` environment variable
/// (`blocking` / `batched`, unset ⇒ `Blocking`) so CI can force a backend
/// across whole test binaries; an explicitly set field always wins over
/// the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillIoMode {
    /// One blocking `std::fs` call per read/write on the calling thread
    /// (buffered).  This is the code path every release so far has run,
    /// kept byte-for-byte as the reference side of the backend
    /// differential tests — the same role `synchronous_spill` plays for
    /// the pipeline stage.
    Blocking,
    /// A fixed pool of I/O worker threads driving a bounded
    /// submission/completion queue over pooled, recycled buffers: writes
    /// are positioned (`write_all_at`) chunk jobs, reads are scheduled
    /// block decodes — so the merge's read-ahead becomes "one scheduler,
    /// N in-flight reads" instead of one thread per run, and its fan-in
    /// cap derives from [`StreamConfig::spill_io_queue_depth`] rather
    /// than a thread-count limit.
    Batched,
}

impl SpillIoMode {
    /// The environment-resolved default: `PISORT_SPILL_IO=batched` forces
    /// [`SpillIoMode::Batched`] for configs that do not set the field
    /// explicitly (the CI backend-matrix hook); `blocking`, empty, or
    /// unset yields [`SpillIoMode::Blocking`].  Any *other* value is a
    /// typo (e.g. `bacthed`): it still resolves to `Blocking` so the
    /// process keeps running, but a warning is printed to stderr once —
    /// silently ignoring it would make a mistyped CI matrix leg pass
    /// while testing the wrong backend.
    pub fn env_default() -> Self {
        static FROM_ENV: std::sync::OnceLock<SpillIoMode> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| {
            let var = std::env::var("PISORT_SPILL_IO").ok();
            let (mode, unknown) = Self::parse_env(var.as_deref());
            if let Some(bad) = unknown {
                eprintln!(
                    "warning: unknown PISORT_SPILL_IO value {bad:?} \
                     (expected \"blocking\" or \"batched\"); using blocking"
                );
            }
            mode
        })
    }

    /// Pure resolution rule behind [`SpillIoMode::env_default`]: returns
    /// the resolved mode plus the unrecognized value, if any (the caller
    /// decides how to warn).  Split out so the unknown-value path is unit
    /// testable despite the `OnceLock` cache above.
    pub fn parse_env(value: Option<&str>) -> (Self, Option<&str>) {
        match value {
            None => (SpillIoMode::Blocking, None),
            Some(v) if v.eq_ignore_ascii_case("batched") => (SpillIoMode::Batched, None),
            Some(v) if v.is_empty() || v.eq_ignore_ascii_case("blocking") => {
                (SpillIoMode::Blocking, None)
            }
            Some(v) => (SpillIoMode::Blocking, Some(v)),
        }
    }
}

impl Default for SpillIoMode {
    fn default() -> Self {
        Self::env_default()
    }
}

/// Recovery policy for spill I/O failures (the `stream` crate's engines).
///
/// Spill I/O errors split into two classes.  *Transient* kinds
/// ([`SpillRetryPolicy::is_transient`]: `Interrupted`, `TimedOut`,
/// `WouldBlock`) describe conditions that can clear on their own; a spill
/// write is retried in place up to [`SpillRetryPolicy::max_retries`]
/// times with bounded exponential backoff — deterministic, derived only
/// from the attempt number, never from wall clock or randomness, so
/// failure tests replay identically.  Every other kind (ENOSPC, quota,
/// corruption, permission) is *permanent* and surfaces immediately as a
/// typed `SpillError`.
///
/// A pipelined-writer failure additionally puts the engine on
/// **probation** instead of the old permanent synchronous fallback: the
/// next [`SpillRetryPolicy::probation_spills`] runs are written
/// synchronously (each counted by the `spill.degraded_syncs` metric), and
/// once they complete cleanly the pipeline is restarted — so a transient
/// burst degrades throughput for a bounded window instead of for the rest
/// of the engine's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillRetryPolicy {
    /// Retries per spill operation after the first attempt fails with a
    /// transient kind.  `0` disables retrying (every failure is final).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; each further
    /// retry doubles it.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Clean synchronous spills required after a pipelined-writer failure
    /// before pipelining is re-enabled (clamped to at least 1).  Use
    /// `u32::MAX` to make degradation effectively permanent (the pre-PR-10
    /// behavior).
    pub probation_spills: u32,
}

impl Default for SpillRetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_ms: 2,
            backoff_cap_ms: 50,
            probation_spills: 4,
        }
    }
}

impl SpillRetryPolicy {
    /// A policy that never retries and keeps degradation effectively
    /// permanent — the exact pre-PR-10 behavior, for differentials.
    pub fn disabled() -> Self {
        Self {
            max_retries: 0,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            probation_spills: u32::MAX,
        }
    }

    /// Whether `kind` is worth retrying: the condition can clear without
    /// any corrective action (interrupted call, timeout, contended
    /// resource).  ENOSPC (`StorageFull`) and `QuotaExceeded` are
    /// deliberately *not* transient: retrying a full disk burns the
    /// backoff budget without any chance of success.
    pub fn is_transient(kind: std::io::ErrorKind) -> bool {
        matches!(
            kind,
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::WouldBlock
        )
    }

    /// Deterministic backoff before retry number `attempt` (0-based):
    /// `base · 2^attempt`, capped at [`SpillRetryPolicy::backoff_cap_ms`].
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.backoff_cap_ms);
        std::time::Duration::from_millis(ms)
    }
}

/// A shared, mutable view of a granted memory budget.
///
/// Budgets were per-call constants until the multi-session server made
/// them runtime resources: a memory governor admits a session with some
/// grant and may later *shrink* it while the session's engine is live
/// (reclaiming bytes for a new tenant).  The handle is the channel for
/// that: the granter keeps one clone and calls [`BudgetHandle::set`]; the
/// engine re-reads the grant on every push chunk via
/// [`StreamConfig::effective_budget_bytes`] and spills early instead of
/// erroring when the grant shrank under its buffered records.
///
/// Reads and writes are relaxed atomics — a shrink is advisory and takes
/// effect at the engine's next capacity check, never mid-chunk.
#[derive(Debug, Clone, Default)]
pub struct BudgetHandle(std::sync::Arc<std::sync::atomic::AtomicUsize>);

impl BudgetHandle {
    /// A new handle granting `bytes`.
    pub fn new(bytes: usize) -> Self {
        Self(std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(
            bytes,
        )))
    }

    /// The current grant in bytes.
    pub fn get(&self) -> usize {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Replaces the grant (both growth and reclaim).
    pub fn set(&self, bytes: usize) {
        self.0.store(bytes, std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether two handles share the same grant cell.
    pub fn same_handle(&self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Configuration of a bounded-memory streaming sort (the `stream` crate).
///
/// Lives beside [`SortConfig`] so every layer that tunes the in-memory sort
/// can tune its streaming wrapper the same way.  The streaming sorter
/// accumulates pushed records in a buffer sized from `memory_budget_bytes`,
/// sorts each full buffer into a *run* with DovetailSort (seeding heavy-key
/// detection with keys carried from earlier runs), spills runs to
/// `spill_dir`, and k-way merges all runs at the end.
///
/// Spill I/O is **pipelined** by default: sorted runs are handed to a
/// dedicated writer thread (so run `N + 1` is sorted while run `N` streams
/// to disk) and the final merge reads ahead of the loser tree through
/// bounded channels.  `synchronous_spill` turns both stages off.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total working-set budget in bytes, split into
    /// [`StreamConfig::spill_shares`] equal shares: one buffers incoming
    /// records, one is the sort's ping-pong scratch, and (when spilling is
    /// pipelined) `spill_pipeline_depth` shares bound the sorted runs in
    /// flight to the writer thread.  One run therefore holds about
    /// `memory_budget_bytes / (spill_shares · record_size)` records.
    ///
    /// `record_size` is the *inline* struct size (`size_of::<(K, V)>()`).
    /// For variable-length values (`String`, `Vec<u8>`, `Box<[u8]>`) the
    /// heap payload is not part of that size, so the streaming sorter and
    /// the streaming group-by additionally track the buffered payload
    /// bytes and spill a run early once they reach
    /// `memory_budget_bytes / spill_shares` — with in-flight runs counted
    /// against the budget exactly like buffered ones.
    pub memory_budget_bytes: usize,
    /// Optional live override of `memory_budget_bytes`: when set, every
    /// budget-derived quantity ([`StreamConfig::run_capacity`], the
    /// var-length payload threshold) reads the handle's *current* value
    /// instead of the constant, so a granter (e.g. the server's memory
    /// governor) can shrink or grow the budget while the engine runs.
    /// Engines re-check capacity on every push chunk, so a shrink
    /// triggers an early spill rather than an error.
    pub budget: Option<BudgetHandle>,
    /// Upper bound on the number of heavy keys carried from one run's
    /// sampling into the next (each carried key costs one bucket in the
    /// next run's root distribution).
    pub max_carried_heavy_keys: usize,
    /// Directory for spilled runs; `None` uses the system temp directory.
    /// Each sorter creates (and removes on drop) a unique subdirectory.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Total bytes of read buffering shared by all runs during the final
    /// streaming merge.
    pub merge_read_buffer_bytes: usize,
    /// Disable the spill pipeline: `push` sorts *and* writes each run
    /// inline on the calling thread, and the final merge issues blocking
    /// reads from inside the loser tree — the pre-pipelining behavior,
    /// kept as an escape hatch (and as the reference side of the
    /// pipelined-vs-synchronous differential tests).
    pub synchronous_spill: bool,
    /// Maximum number of sorted runs in flight to the spill-writer thread
    /// (queued plus being written), each counting one budget share; the
    /// producer blocks once the pipeline is full (backpressure).  Clamped
    /// to at least 1.  Ignored when `synchronous_spill` is set.
    ///
    /// The default of 1 is classic double buffering: run `N + 1` sorts
    /// while run `N` writes.  Each extra unit of depth smooths over
    /// burstier disk latency but shrinks the run capacity by one budget
    /// share — and smaller runs mean a wider final merge fan-in, which is
    /// usually the worse trade.
    pub spill_pipeline_depth: usize,
    /// Prefetch decoded record blocks ahead of the final k-way merge, one
    /// reader thread per spilled run, through a channel bounded by the
    /// per-run share of `merge_read_buffer_bytes` — so the loser tree
    /// never blocks on a cold read.
    ///
    /// `None` (the default) auto-tunes: read-ahead engages when the host
    /// reports more than one unit of available parallelism, because on a
    /// single CPU the decode thread cannot run concurrently with the merge
    /// and page-cache-warm reads make it pure overhead.  `Some(true)` /
    /// `Some(false)` force it.  Ignored (off) when `synchronous_spill` is
    /// set.
    pub merge_read_ahead: Option<bool>,
    /// On-disk encoding of spilled runs: [`SpillCompression::Off`] (the
    /// default) writes the flat reference format, while
    /// [`SpillCompression::DeltaLz`] delta-encodes the sorted keys and
    /// LZ-compresses the value payloads in independently decodable
    /// blocks.  Both formats flow through the same writer thread and
    /// merge read-ahead; decoding is transparent to the merge.
    pub spill_compression: SpillCompression,
    /// Backend for the spill-file reads and writes themselves:
    /// [`SpillIoMode::Blocking`] (buffered `std::fs` calls on the calling
    /// thread — the byte-for-byte reference) or [`SpillIoMode::Batched`]
    /// (a fixed I/O-worker pool behind a bounded submission queue; see
    /// [`StreamConfig::spill_io_workers`] /
    /// [`StreamConfig::spill_io_queue_depth`]).  Orthogonal to
    /// `synchronous_spill`, which picks *who calls into* the backend, not
    /// how the bytes move.  Defaults from the `PISORT_SPILL_IO`
    /// environment variable ([`SpillIoMode::env_default`]).
    pub spill_io: SpillIoMode,
    /// Number of I/O worker threads the [`SpillIoMode::Batched`] backend
    /// runs (clamped to at least 1).  Ignored under
    /// [`SpillIoMode::Blocking`].
    pub spill_io_workers: usize,
    /// Bound of the batched backend's submission queue: at most this many
    /// I/O jobs may be queued or in flight at once — submitters block
    /// (backpressure) past it — and the merge read-ahead fan-in cap is
    /// derived from it (one scheduled read per run).  Clamped to at least
    /// 1.  Ignored under [`SpillIoMode::Blocking`].
    pub spill_io_queue_depth: usize,
    /// Recovery policy for spill I/O failures: transient-kind retries
    /// with bounded deterministic backoff, and the probation window that
    /// re-enables pipelined spilling after a writer failure.  See
    /// [`SpillRetryPolicy`]; [`SpillRetryPolicy::disabled`] restores the
    /// pre-recovery behavior (no retries, permanent synchronous
    /// fallback).
    pub spill_retry: SpillRetryPolicy,
    /// Turn on the `obs` tracing/metrics layer for this engine's
    /// lifetime: the streaming sorter and group-by hold an
    /// `obs::EnableGuard` from construction until the engine (and any
    /// stream it returned) is dropped, so their spans (`sort_run`,
    /// `spill_write`, `prefetch`, `merge`) and registry metrics are
    /// recorded.
    ///
    /// The enable state is **scoped and refcounted**: recording stays on
    /// while *any* traced engine is alive and reverts when the last one
    /// drops, so one traced session no longer turns tracing on for every
    /// other tenant of the process forever.  `obs::enable()` /
    /// `obs::disable()` still force the state process-wide, and the
    /// `OBS_TRACE` environment variable enables the same machinery
    /// without touching configs.
    pub trace: bool,
    /// Configuration of the per-run in-memory DovetailSort.
    pub sort: SortConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            memory_budget_bytes: 256 << 20,
            budget: None,
            max_carried_heavy_keys: 1024,
            spill_dir: None,
            merge_read_buffer_bytes: 8 << 20,
            synchronous_spill: false,
            spill_pipeline_depth: 1,
            merge_read_ahead: None,
            spill_compression: SpillCompression::default(),
            spill_io: SpillIoMode::default(),
            spill_io_workers: 2,
            spill_io_queue_depth: 32,
            spill_retry: SpillRetryPolicy::default(),
            trace: false,
            sort: SortConfig::default(),
        }
    }
}

impl StreamConfig {
    /// A config with the given memory budget and defaults elsewhere.
    pub fn with_memory_budget(bytes: usize) -> Self {
        Self {
            memory_budget_bytes: bytes,
            ..Self::default()
        }
    }

    /// [`StreamConfig::with_memory_budget`] with the spill pipeline and
    /// merge read-ahead disabled (the pre-pipelining behavior).
    pub fn synchronous_with_memory_budget(bytes: usize) -> Self {
        Self {
            memory_budget_bytes: bytes,
            synchronous_spill: true,
            ..Self::default()
        }
    }

    /// [`StreamConfig::with_memory_budget`] bound to a live
    /// [`BudgetHandle`]: the handle's current value *is* the budget, so
    /// the granter can resize it while the engine runs.
    pub fn with_budget_handle(handle: BudgetHandle) -> Self {
        Self {
            memory_budget_bytes: handle.get(),
            budget: Some(handle),
            ..Self::default()
        }
    }

    /// The budget in force right now: the live [`StreamConfig::budget`]
    /// handle's current value when one is attached, the
    /// [`StreamConfig::memory_budget_bytes`] constant otherwise.
    pub fn effective_budget_bytes(&self) -> usize {
        match &self.budget {
            Some(handle) => handle.get(),
            None => self.memory_budget_bytes,
        }
    }

    /// Number of equal budget shares the record memory is split into: one
    /// filling buffer + one sort scratch, plus one per possible in-flight
    /// run when spilling is pipelined.  In-flight runs buffer real bytes,
    /// so they must be paid for out of the same budget.
    pub fn spill_shares(&self) -> usize {
        if self.synchronous_spill {
            2
        } else {
            2 + self.spill_pipeline_depth.max(1)
        }
    }

    /// Number of records of `record_size` bytes one run may hold.
    /// Accounts for pipelined in-flight runs via
    /// [`StreamConfig::spill_shares`].
    ///
    /// The floor is a single record, so a degenerate budget still makes
    /// progress but cannot silently multiply: the worst-case resident
    /// record memory is `max(memory_budget_bytes, spill_shares() ·
    /// record_size)` — one record per share — never the
    /// `64 · spill_shares() · record_size` the old `.max(64)` floor
    /// admitted (e.g. 64 records × 5 shares × a 1 KiB record ≈ 320 KiB
    /// against a 1 KiB budget).
    pub fn run_capacity(&self, record_size: usize) -> usize {
        (self.effective_budget_bytes() / (self.spill_shares() * record_size.max(1))).max(1)
    }

    /// Whether the final merge should read ahead of the loser tree:
    /// [`StreamConfig::merge_read_ahead`] resolved against the host's
    /// available parallelism (see that field for the auto rule).
    pub fn wants_merge_read_ahead(&self) -> bool {
        if self.synchronous_spill {
            return false;
        }
        self.merge_read_ahead
            .unwrap_or_else(|| std::thread::available_parallelism().is_ok_and(|p| p.get() > 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = SortConfig::default();
        assert_eq!(c.base_case_threshold, 1 << 14);
        assert_eq!(c.min_radix_bits, 8);
        assert_eq!(c.max_radix_bits, 12);
        assert!(c.heavy_detection);
        assert!(c.overflow_bucket);
        assert_eq!(c.merge_strategy, MergeStrategy::Dovetail);
    }

    #[test]
    fn radix_bits_follows_cuberoot_rule() {
        let c = SortConfig::default();
        // n = 10^9 -> log2 n ≈ 30 -> γ = 10.
        assert_eq!(c.radix_bits(1_000_000_000, 64), 10);
        // Small n clamps to the minimum.
        assert_eq!(c.radix_bits(1 << 15, 64), 8);
        // Huge n clamps to the maximum.
        assert_eq!(c.radix_bits(usize::MAX / 2, 64), 12);
        // Never more than the remaining bits.
        assert_eq!(c.radix_bits(1_000_000_000, 4), 4);
        // Never zero.
        assert_eq!(c.radix_bits(10, 1), 1);
    }

    #[test]
    fn radix_override_wins() {
        let c = SortConfig {
            radix_bits_override: Some(6),
            ..SortConfig::default()
        };
        assert_eq!(c.radix_bits(1_000_000_000, 64), 6);
        assert_eq!(c.radix_bits(1_000_000_000, 3), 3);
    }

    #[test]
    fn sample_count_capped_by_half() {
        let c = SortConfig::default();
        let n = 40_000;
        assert!(c.num_samples(n, 12) <= n / 2);
        assert!(c.num_samples(1_000_000, 8) >= (1 << 8) * 10);
        assert_eq!(c.num_samples(2, 8), 0);
    }

    #[test]
    fn subsample_stride_is_log_n() {
        let c = SortConfig::default();
        assert_eq!(c.subsample_stride(1 << 20), 21);
        assert!(c.subsample_stride(1) >= 1);
    }

    #[test]
    fn presets() {
        assert!(!SortConfig::plain().heavy_detection);
        assert_eq!(
            SortConfig::with_parallel_merge().merge_strategy,
            MergeStrategy::ParallelMerge
        );
    }

    #[test]
    fn stream_config_run_capacity() {
        // Synchronous: half the budget buffers records (the rest is sort
        // scratch).
        let sync = StreamConfig::synchronous_with_memory_budget(1 << 20);
        assert_eq!(sync.spill_shares(), 2);
        assert_eq!(sync.run_capacity(8), (1 << 20) / 16);
        // Pipelined (default depth 1, double buffering): one more share
        // pays for the run in flight to the writer thread.
        let piped = StreamConfig::with_memory_budget(1 << 20);
        assert!(!piped.synchronous_spill);
        assert_eq!(piped.spill_shares(), 3);
        assert_eq!(piped.run_capacity(8), (1 << 20) / 24);
        // A degenerate depth clamps to 1 in-flight run; deeper pipelines
        // pay one share each; degenerate budgets clamp to a record floor.
        let shallow = StreamConfig {
            spill_pipeline_depth: 0,
            ..StreamConfig::default()
        };
        assert_eq!(shallow.spill_shares(), 3);
        let deep = StreamConfig {
            spill_pipeline_depth: 2,
            ..StreamConfig::default()
        };
        assert_eq!(deep.spill_shares(), 4);
        assert_eq!(StreamConfig::with_memory_budget(0).run_capacity(8), 1);
        assert!(StreamConfig::default().memory_budget_bytes > 0);
    }

    #[test]
    fn run_capacity_never_overshoots_the_budget() {
        // Regression: the old `.max(64)` floor admitted 64 records per
        // budget share under a degenerate budget — buffer + scratch +
        // in-flight runs far above `memory_budget_bytes`.  The worst case
        // is now one record per share.
        for record_size in [1usize, 8, 64, 1024, 64 << 10] {
            for budget in [0usize, 1, 100, 4096, 1 << 20] {
                for depth in [1usize, 2, 8] {
                    let cfg = StreamConfig {
                        memory_budget_bytes: budget,
                        spill_pipeline_depth: depth,
                        ..StreamConfig::default()
                    };
                    let resident = cfg.run_capacity(record_size) * cfg.spill_shares() * record_size;
                    let worst = budget.max(cfg.spill_shares() * record_size);
                    assert!(
                        resident <= worst,
                        "budget {budget}, record {record_size}, depth {depth}: \
                         resident {resident} > worst-case {worst}"
                    );
                }
            }
        }
    }

    #[test]
    fn budget_handle_overrides_the_constant_live() {
        let handle = BudgetHandle::new(1 << 20);
        let cfg = StreamConfig {
            memory_budget_bytes: 64, // must be ignored while a handle is attached
            budget: Some(handle.clone()),
            synchronous_spill: true,
            ..StreamConfig::default()
        };
        assert_eq!(cfg.effective_budget_bytes(), 1 << 20);
        assert_eq!(cfg.run_capacity(8), (1 << 20) / 16);
        // A shrink through the handle is visible to an existing config
        // (and all its clones) without rebuilding anything.
        let cloned = cfg.clone();
        handle.set(32 << 10);
        assert_eq!(cfg.run_capacity(8), (32 << 10) / 16);
        assert_eq!(cloned.run_capacity(8), (32 << 10) / 16);
        assert!(cfg.budget.as_ref().unwrap().same_handle(&handle));
        // Without a handle, the constant is the budget.
        assert_eq!(
            StreamConfig::with_memory_budget(4096).effective_budget_bytes(),
            4096
        );
        let bound = StreamConfig::with_budget_handle(BudgetHandle::new(8192));
        assert_eq!(bound.effective_budget_bytes(), 8192);
        assert_eq!(bound.memory_budget_bytes, 8192);
    }

    #[test]
    fn spill_compression_defaults_off() {
        assert_eq!(
            StreamConfig::default().spill_compression,
            SpillCompression::Off
        );
        assert_eq!(SpillCompression::default(), SpillCompression::Off);
    }

    #[test]
    fn spill_io_knobs_default_sanely() {
        let cfg = StreamConfig::default();
        // Without PISORT_SPILL_IO in the environment the default backend
        // is Blocking; with it, the test environment opted the whole
        // binary into Batched and the default must follow.
        let want = match std::env::var("PISORT_SPILL_IO") {
            Ok(v) if v.eq_ignore_ascii_case("batched") => SpillIoMode::Batched,
            _ => SpillIoMode::Blocking,
        };
        assert_eq!(cfg.spill_io, want);
        assert_eq!(cfg.spill_io, SpillIoMode::env_default());
        assert!(cfg.spill_io_workers >= 1);
        assert!(cfg.spill_io_queue_depth >= 1);
        // An explicit field always wins over the environment default.
        let forced = StreamConfig {
            spill_io: SpillIoMode::Batched,
            ..StreamConfig::default()
        };
        assert_eq!(forced.spill_io, SpillIoMode::Batched);
    }

    #[test]
    fn env_spill_io_parse_flags_unknown_values() {
        // Recognized values, any case, resolve silently.
        assert_eq!(SpillIoMode::parse_env(None), (SpillIoMode::Blocking, None));
        assert_eq!(
            SpillIoMode::parse_env(Some("")),
            (SpillIoMode::Blocking, None)
        );
        assert_eq!(
            SpillIoMode::parse_env(Some("blocking")),
            (SpillIoMode::Blocking, None)
        );
        assert_eq!(
            SpillIoMode::parse_env(Some("batched")),
            (SpillIoMode::Batched, None)
        );
        assert_eq!(
            SpillIoMode::parse_env(Some("BATCHED")),
            (SpillIoMode::Batched, None)
        );
        // A typo must fall back to Blocking but be *reported*, not
        // silently swallowed (a mistyped CI leg would otherwise pass
        // while testing the wrong backend).
        assert_eq!(
            SpillIoMode::parse_env(Some("bacthed")),
            (SpillIoMode::Blocking, Some("bacthed"))
        );
        assert_eq!(
            SpillIoMode::parse_env(Some("async")),
            (SpillIoMode::Blocking, Some("async"))
        );
    }

    #[test]
    fn spill_retry_policy_classification_and_backoff() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
        ] {
            assert!(SpillRetryPolicy::is_transient(kind), "{kind:?}");
        }
        for kind in [
            ErrorKind::StorageFull,
            ErrorKind::QuotaExceeded,
            ErrorKind::InvalidData,
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::WriteZero,
            ErrorKind::Other,
        ] {
            assert!(!SpillRetryPolicy::is_transient(kind), "{kind:?}");
        }
        let p = SpillRetryPolicy {
            max_retries: 5,
            backoff_base_ms: 2,
            backoff_cap_ms: 9,
            probation_spills: 3,
        };
        // base · 2^attempt, capped — and deterministic across calls.
        assert_eq!(p.backoff(0).as_millis(), 2);
        assert_eq!(p.backoff(1).as_millis(), 4);
        assert_eq!(p.backoff(2).as_millis(), 8);
        assert_eq!(p.backoff(3).as_millis(), 9, "capped");
        assert_eq!(p.backoff(60).as_millis(), 9, "huge attempts stay capped");
        let off = SpillRetryPolicy::disabled();
        assert_eq!(off.max_retries, 0);
        assert_eq!(off.probation_spills, u32::MAX);
        assert_eq!(off.backoff(0).as_millis(), 0);
        assert_eq!(
            StreamConfig::default().spill_retry,
            SpillRetryPolicy::default()
        );
    }

    #[test]
    fn merge_read_ahead_resolution() {
        // Forced settings win regardless of host parallelism.
        let forced_on = StreamConfig {
            merge_read_ahead: Some(true),
            ..StreamConfig::default()
        };
        assert!(forced_on.wants_merge_read_ahead());
        let forced_off = StreamConfig {
            merge_read_ahead: Some(false),
            ..StreamConfig::default()
        };
        assert!(!forced_off.wants_merge_read_ahead());
        // Synchronous mode disables read-ahead even when forced on.
        let sync = StreamConfig {
            synchronous_spill: true,
            merge_read_ahead: Some(true),
            ..StreamConfig::default()
        };
        assert!(!sync.wants_merge_read_ahead());
        // Auto mode follows the host's available parallelism.
        let auto = StreamConfig::default();
        let multicore = std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
        assert_eq!(auto.wants_merge_read_ahead(), multicore);
    }
}
