//! Semisort-based parallel deduplication.
//!
//! Removing duplicate keys (or keeping the first record per key) never
//! needed a total order — only that equal keys meet.  The semisort engine
//! delivers exactly that: heavy duplicate keys collapse into dedicated
//! buckets in one pass, so dedup on duplicate-heavy inputs is `O(n)` work
//! plus a sort over the (much smaller) distinct-key set for the ordered
//! result.  Stability matters — "first record per key" must mean first *in
//! input order*, which the stable semisort plus group-head selection gives.

/// Returns the distinct keys of `keys`, in increasing order.
pub fn distinct_keys(keys: &[u64]) -> Vec<u64> {
    let mut work = keys.to_vec();
    let groups = semisort::semisort_keys(&mut work);
    let mut distinct: Vec<u64> = groups.into_iter().map(|g| g.key).collect();
    dtsort::sort(&mut distinct);
    distinct
}

/// Keeps, for every distinct key, the *first* record (in input order) with
/// that key; the result is ordered by key.
pub fn first_record_per_key<V: Copy + Send + Sync>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let mut tagged: Vec<(u64, u32)> = records
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| (k, i as u32))
        .collect();
    let groups = semisort::semisort_pairs(&mut tagged);
    // Stability: the head of each group is the first occurrence in input
    // order.
    let mut firsts: Vec<(u64, u32)> = groups.into_iter().map(|g| tagged[g.start]).collect();
    dtsort::sort_pairs(&mut firsts);
    firsts
        .into_iter()
        .map(|(k, tag)| (k, records[tag as usize].1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn distinct_keys_matches_hashset() {
        let rng = Rng::new(1);
        let keys: Vec<u64> = (0..50_000).map(|i| rng.ith_in(i, 500)).collect();
        let got = distinct_keys(&keys);
        let want: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert!(got.iter().all(|k| want.contains(k)));
    }

    #[test]
    fn distinct_keys_on_heavy_duplicates() {
        // 90% one key: the heavy path must still yield each key once.
        let rng = Rng::new(3);
        let keys: Vec<u64> = (0..60_000)
            .map(|i| {
                if rng.ith_f64(i) < 0.9 {
                    7
                } else {
                    rng.ith_in(i, 1000)
                }
            })
            .collect();
        let got = distinct_keys(&keys);
        let want: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn first_record_per_key_respects_input_order() {
        let records = vec![(5u64, 'x'), (3, 'a'), (5, 'y'), (3, 'b'), (9, 'z')];
        let got = first_record_per_key(&records);
        assert_eq!(got, vec![(3, 'a'), (5, 'x'), (9, 'z')]);
    }

    #[test]
    fn first_record_matches_hashmap_on_random_input() {
        let rng = Rng::new(2);
        let records: Vec<(u64, u32)> = (0..30_000)
            .map(|i| (rng.ith_in(i, 300), i as u32))
            .collect();
        let got = first_record_per_key(&records);
        let mut want: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &records {
            want.entry(k).or_insert(v);
        }
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        for &(k, v) in &got {
            assert_eq!(want[&k], v, "key {k}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(distinct_keys(&[]).is_empty());
        let empty: Vec<(u64, u8)> = vec![];
        assert!(first_record_per_key(&empty).is_empty());
    }
}
