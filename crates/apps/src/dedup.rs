//! Sort-based parallel deduplication.
//!
//! Removing duplicate keys (or keeping the first record per key) is another
//! standard consumer of stable integer sorting: sort by key, then keep the
//! first element of every equal-key run.  Stability matters — "first record
//! per key" must mean first *in input order*, which is exactly what a stable
//! sort plus run-head selection gives.

use parlay::pack::pack_index;

/// Returns the distinct keys of `keys`, in increasing order.
pub fn distinct_keys(keys: &[u64]) -> Vec<u64> {
    let mut sorted = keys.to_vec();
    dtsort::sort(&mut sorted);
    let heads = pack_index(sorted.len(), |i| i == 0 || sorted[i] != sorted[i - 1]);
    heads.into_iter().map(|i| sorted[i]).collect()
}

/// Keeps, for every distinct key, the *first* record (in input order) with
/// that key; the result is ordered by key.
pub fn first_record_per_key<V: Copy + Send + Sync>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let mut tagged: Vec<(u64, u32)> = records
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| (k, i as u32))
        .collect();
    dtsort::sort_pairs(&mut tagged);
    let heads = pack_index(tagged.len(), |i| i == 0 || tagged[i].0 != tagged[i - 1].0);
    heads
        .into_iter()
        .map(|i| {
            let (k, tag) = tagged[i];
            (k, records[tag as usize].1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn distinct_keys_matches_hashset() {
        let rng = Rng::new(1);
        let keys: Vec<u64> = (0..50_000).map(|i| rng.ith_in(i, 500)).collect();
        let got = distinct_keys(&keys);
        let want: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert!(got.iter().all(|k| want.contains(k)));
    }

    #[test]
    fn first_record_per_key_respects_input_order() {
        let records = vec![(5u64, 'x'), (3, 'a'), (5, 'y'), (3, 'b'), (9, 'z')];
        let got = first_record_per_key(&records);
        assert_eq!(got, vec![(3, 'a'), (5, 'x'), (9, 'z')]);
    }

    #[test]
    fn first_record_matches_hashmap_on_random_input() {
        let rng = Rng::new(2);
        let records: Vec<(u64, u32)> = (0..30_000)
            .map(|i| (rng.ith_in(i, 300), i as u32))
            .collect();
        let got = first_record_per_key(&records);
        let mut want: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &records {
            want.entry(k).or_insert(v);
        }
        assert_eq!(got.len(), want.len());
        for &(k, v) in &got {
            assert_eq!(want[&k], v, "key {k}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(distinct_keys(&[]).is_empty());
        let empty: Vec<(u64, u8)> = vec![];
        assert!(first_record_per_key(&empty).is_empty());
    }
}
