//! Semisort-based parallel deduplication.
//!
//! Removing duplicate keys (or keeping the first record per key) never
//! needed a total order — only that equal keys meet.  The semisort engine
//! delivers exactly that: heavy duplicate keys collapse into dedicated
//! buckets in one pass, so dedup on duplicate-heavy inputs is `O(n)` work
//! plus a sort over the (much smaller) distinct-key set for the ordered
//! result.  Stability matters — "first record per key" must mean first *in
//! input order*, which the stable semisort plus group-head selection gives.

use dtsort::StreamConfig;
use stream::{FirstAgg, StreamGroupBy};

/// Returns the distinct keys of `keys`, in increasing order.
pub fn distinct_keys(keys: &[u64]) -> Vec<u64> {
    let mut work = keys.to_vec();
    let groups = semisort::semisort_keys(&mut work);
    let mut distinct: Vec<u64> = groups.into_iter().map(|g| g.key).collect();
    dtsort::sort(&mut distinct);
    distinct
}

/// Keeps, for every distinct key, the *first* record (in input order) with
/// that key; the result is ordered by key.
pub fn first_record_per_key<V: Copy + Send + Sync>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let mut tagged: Vec<(u64, u32)> = records
        .iter()
        .enumerate()
        .map(|(i, &(k, _))| (k, i as u32))
        .collect();
    let groups = semisort::semisort_pairs(&mut tagged);
    // Stability: the head of each group is the first occurrence in input
    // order.
    let mut firsts: Vec<(u64, u32)> = groups.into_iter().map(|g| tagged[g.start]).collect();
    dtsort::sort_pairs(&mut firsts);
    firsts
        .into_iter()
        .map(|(k, tag)| (k, records[tag as usize].1))
        .collect()
}

/// Streaming dedup over **variable-length payloads**: keeps, for every
/// distinct key, the *first* payload pushed (in stream order), under the
/// bounded memory budget of `cfg`; the result is ordered by key.
///
/// This is [`first_record_per_key`] for inputs that arrive in batches, do
/// not fit in memory, or carry string payloads (URLs, log lines): each run
/// is aggregated down to one payload per distinct key before it is spilled
/// (`stream::FirstAgg`), so duplicate-heavy streams never materialize
/// their duplicates on disk.
pub fn first_payload_per_key_streaming<I>(
    batches: I,
    cfg: StreamConfig,
) -> std::io::Result<Vec<(u64, String)>>
where
    I: IntoIterator<Item = Vec<(u64, String)>>,
{
    let mut gb: StreamGroupBy<u64, FirstAgg<String>> =
        StreamGroupBy::with_config(FirstAgg::new(), cfg);
    for batch in batches {
        // The batches are owned, so payloads move into the group-by
        // without the per-record clone `push(&batch)` would pay.
        for (key, payload) in batch {
            gb.push_record(key, payload)?;
        }
    }
    gb.finish_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn distinct_keys_matches_hashset() {
        let rng = Rng::new(1);
        let keys: Vec<u64> = (0..50_000).map(|i| rng.ith_in(i, 500)).collect();
        let got = distinct_keys(&keys);
        let want: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert!(got.iter().all(|k| want.contains(k)));
    }

    #[test]
    fn distinct_keys_on_heavy_duplicates() {
        // 90% one key: the heavy path must still yield each key once.
        let rng = Rng::new(3);
        let keys: Vec<u64> = (0..60_000)
            .map(|i| {
                if rng.ith_f64(i) < 0.9 {
                    7
                } else {
                    rng.ith_in(i, 1000)
                }
            })
            .collect();
        let got = distinct_keys(&keys);
        let want: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn first_record_per_key_respects_input_order() {
        let records = vec![(5u64, 'x'), (3, 'a'), (5, 'y'), (3, 'b'), (9, 'z')];
        let got = first_record_per_key(&records);
        assert_eq!(got, vec![(3, 'a'), (5, 'x'), (9, 'z')]);
    }

    #[test]
    fn first_record_matches_hashmap_on_random_input() {
        let rng = Rng::new(2);
        let records: Vec<(u64, u32)> = (0..30_000)
            .map(|i| (rng.ith_in(i, 300), i as u32))
            .collect();
        let got = first_record_per_key(&records);
        let mut want: HashMap<u64, u32> = HashMap::new();
        for &(k, v) in &records {
            want.entry(k).or_insert(v);
        }
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        for &(k, v) in &got {
            assert_eq!(want[&k], v, "key {k}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(distinct_keys(&[]).is_empty());
        let empty: Vec<(u64, u8)> = vec![];
        assert!(first_record_per_key(&empty).is_empty());
        assert!(
            first_payload_per_key_streaming(Vec::new(), StreamConfig::default())
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn streaming_payload_dedup_matches_in_memory_dedup() {
        // The streaming dedup over string payloads must agree with the
        // in-memory semisort dedup over the same records (payload tagged by
        // first-occurrence index), across spilled runs.
        let rng = Rng::new(5);
        let n = 30_000usize;
        let records: Vec<(u64, String)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 250), format!("payload-{i}")))
            .collect();
        let batches: Vec<Vec<(u64, String)>> = records.chunks(997).map(|c| c.to_vec()).collect();
        let cfg = StreamConfig::with_memory_budget(16 << 10);
        let got = first_payload_per_key_streaming(batches, cfg).unwrap();

        let mut want: HashMap<u64, &str> = HashMap::new();
        for (k, v) in &records {
            want.entry(*k).or_insert(v.as_str());
        }
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        for (k, v) in &got {
            assert_eq!(v, want[k], "key {k}");
        }
        // Cross-check against the in-memory path on the same input.
        let tagged: Vec<(u64, u32)> = records
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (*k, i as u32))
            .collect();
        let in_memory = first_record_per_key(&tagged);
        assert!(in_memory
            .iter()
            .zip(&got)
            .all(|(&(k1, tag), (k2, v))| k1 == *k2 && v == &records[tag as usize].1));
    }
}
