//! Top-k most frequent keys, a classic consumer of duplicate-aware grouping.
//!
//! Two implementations are provided: one on top of the semisort group-by
//! engine (works for arbitrary 64-bit key universes) and one on top of the
//! parallel histogram (for small key ranges).  They are cross-checked in
//! the tests and used by the harness to characterize how duplicate-heavy a
//! workload is.

use semisort::GroupBy;

/// Returns the `k` most frequent keys with their counts, most frequent
/// first; ties are broken toward the smaller key.
///
/// Counting needs no key order at all, so this runs on the semisort
/// group-by directly — duplicate-heavy inputs collapse in one pass.
pub fn top_k_by_sort(keys: &[u64], k: usize) -> Vec<(u64, usize)> {
    let records: Vec<(u64, ())> = keys.iter().map(|&x| (x, ())).collect();
    let mut counts = GroupBy::new(records).counts();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.truncate(k);
    counts
}

/// Histogram-based top-k for keys known to lie in `0..range`.
pub fn top_k_small_range(keys: &[u64], range: usize, k: usize) -> Vec<(u64, usize)> {
    parlay::histogram::top_k_frequent(keys, range, k, |&x| x as usize)
        .into_iter()
        .map(|(v, c)| (v as u64, c))
        .collect()
}

/// The fraction of records covered by the `k` most frequent keys — the
/// "heaviness" statistic the harness reports for each workload (the paper's
/// notion of a heavy distribution corresponds to a large value here for
/// small `k`).
pub fn heavy_fraction(keys: &[u64], k: usize) -> f64 {
    if keys.is_empty() {
        return 0.0;
    }
    let covered: usize = top_k_by_sort(keys, k).iter().map(|&(_, c)| c).sum();
    covered as f64 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    #[test]
    fn sort_and_histogram_top_k_agree() {
        let rng = Rng::new(1);
        let keys: Vec<u64> = (0..40_000).map(|i| rng.ith_in(i, 200)).collect();
        let a = top_k_by_sort(&keys, 10);
        let b = top_k_small_range(&keys, 200, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // Counts are non-increasing.
        assert!(a.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn heavy_fraction_tracks_duplication() {
        let rng = Rng::new(2);
        let skewed: Vec<u64> = (0..30_000)
            .map(|i| if rng.ith_f64(i) < 0.8 { 7 } else { rng.ith(i) })
            .collect();
        let uniform: Vec<u64> = (0..30_000).map(|i| rng.fork(9).ith(i)).collect();
        assert!(heavy_fraction(&skewed, 1) > 0.75);
        assert!(heavy_fraction(&uniform, 1) < 0.01);
        assert_eq!(heavy_fraction(&[], 3), 0.0);
    }

    #[test]
    fn k_larger_than_distinct() {
        let keys = vec![1u64, 1, 2];
        let top = top_k_by_sort(&keys, 10);
        assert_eq!(top, vec![(1, 2), (2, 1)]);
    }
}
