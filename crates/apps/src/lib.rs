//! # apps — applications built on parallel integer sorting
//!
//! The paper's Section 6.2 evaluates the sorting algorithms inside two
//! representative applications; this crate implements both (plus a
//! semisort-style group-by that motivates heavy-key handling):
//!
//! * [`mod@transpose`] — directed-graph transposition: the transposed CSR is
//!   obtained by *stably* integer-sorting all edges by their destination
//!   vertex.  Skewed in-degree distributions turn high-degree vertices into
//!   heavy keys.
//! * [`morton`] — Morton (z-order) sort of 2D/3D point sets: coordinates are
//!   bit-interleaved into a z-value and the points are integer-sorted by it.
//! * [`groupby`] — group-by (count records per key), the classic consumer
//!   of duplicate-friendly grouping.  Together with [`dedup`] and [`topk`]
//!   it runs on the `semisort` engine rather than the full sort: equal keys
//!   only need to meet, not to be totally ordered.
//!
//! Every application is parameterized by the sorter so the benchmark harness
//! can compare DovetailSort against every baseline inside the same
//! application code path (as Table 4 does).

pub mod dedup;
pub mod groupby;
pub mod morton;
pub mod topk;
pub mod transpose;

pub use morton::{morton2, morton3, morton_sort_2d, morton_sort_3d};
pub use transpose::{transpose, transpose_with_sorter};

/// A pluggable sorter for `(u32 key, u32 value)` records, used to run the
/// applications with different sorting back-ends (paper Table 4).
pub type PairSorter32 = fn(&mut [(u32, u32)]);

/// A pluggable sorter for `(u64 key, u32 value)` records (Morton codes).
pub type PairSorter64 = fn(&mut [(u64, u32)]);
