//! Graph transpose by stable integer sorting (paper Section 6.2).
//!
//! Given a directed graph `G = (V, E)` in CSR form, the transpose
//! `Gᵀ = (V, Eᵀ)` with `Eᵀ = {(v, u) : (u, v) ∈ E}` is computed by stably
//! sorting all edges with the *destination* vertex as the key: after the
//! sort, edges are grouped by destination (which becomes the source of the
//! transposed graph) and, thanks to stability, the neighbour lists of the
//! transposed graph keep the original source order — exactly the procedure
//! the paper describes.  High in-degree vertices (celebrities in social
//! networks, hubs in web graphs) are heavy keys.

use workloads::graphs::Csr;

/// Transposes `g` using DovetailSort as the sorting back-end.
pub fn transpose(g: &Csr) -> Csr {
    transpose_with_sorter(g, dtsort::sort_pairs)
}

/// Transposes `g`, sorting the edge list with the provided stable sorter.
///
/// The sorter receives `(destination, source)` pairs and must order them by
/// the first component, stably.
pub fn transpose_with_sorter<S>(g: &Csr, sorter: S) -> Csr
where
    S: Fn(&mut [(u32, u32)]),
{
    let n = g.num_vertices();
    // Build the (destination, source) pair list.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges());
    for u in 0..n {
        for &v in g.neighbors(u) {
            pairs.push((v, u as u32));
        }
    }
    sorter(&mut pairs);
    // The pair list is now grouped by destination: build the CSR directly.
    let mut offsets = vec![0usize; n + 1];
    for &(v, _) in &pairs {
        offsets[v as usize + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let targets: Vec<u32> = pairs.iter().map(|&(_, u)| u).collect();
    Csr { offsets, targets }
}

/// Reference transpose (bucket by destination without sorting), used by the
/// tests to validate the sorting-based implementation.
pub fn transpose_reference(g: &Csr) -> Csr {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n {
        for &v in g.neighbors(u) {
            adj[v as usize].push(u as u32);
        }
    }
    let mut offsets = vec![0usize; n + 1];
    let mut targets = Vec::with_capacity(g.num_edges());
    for v in 0..n {
        offsets[v + 1] = offsets[v] + adj[v].len();
        targets.extend_from_slice(&adj[v]);
    }
    Csr { offsets, targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::graphs::{knn_like_graph, power_law_graph, uniform_graph, Csr};

    fn check_transpose(edges: &workloads::graphs::EdgeList) {
        let g = Csr::from_unsorted_edges(edges.num_vertices, &edges.edges);
        let want = transpose_reference(&g);
        let got = transpose(&g);
        assert_eq!(got, want);
    }

    #[test]
    fn transposes_power_law_graph() {
        check_transpose(&power_law_graph(2_000, 40_000, 1.2, 1));
    }

    #[test]
    fn transposes_knn_graph() {
        check_transpose(&knn_like_graph(3_000, 6, 2));
    }

    #[test]
    fn transposes_uniform_graph() {
        check_transpose(&uniform_graph(1_500, 20_000, 3));
    }

    #[test]
    fn double_transpose_is_identity() {
        let e = power_law_graph(1_000, 15_000, 1.1, 4);
        let g = Csr::from_unsorted_edges(e.num_vertices, &e.edges);
        let gtt = transpose(&transpose(&g));
        // G^TT has the same edge multiset grouped by source; because the
        // original CSR was built by a stable sort by source, the two must be
        // identical up to within-neighbour-list order; compare as multisets
        // per vertex.
        assert_eq!(g.offsets, gtt.offsets);
        for v in 0..g.num_vertices() {
            let mut a = g.neighbors(v).to_vec();
            let mut b = gtt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn transpose_with_alternative_sorters_agrees() {
        let e = power_law_graph(2_000, 30_000, 1.3, 5);
        let g = Csr::from_unsorted_edges(e.num_vertices, &e.edges);
        let a = transpose_with_sorter(&g, dtsort::sort_pairs);
        let b = transpose_with_sorter(&g, baselines::plis::sort_pairs);
        let c = transpose_with_sorter(&g, baselines::samplesort::sort_pairs);
        let d = transpose_with_sorter(&g, |p| p.sort_by_key(|&(k, _)| k));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = Csr {
            offsets: vec![0],
            targets: vec![],
        };
        let t = transpose(&g);
        assert_eq!(t.num_vertices(), 0);
        assert_eq!(t.num_edges(), 0);

        let g = Csr::from_unsorted_edges(1, &[(0u32, 0u32), (0, 0)]);
        let t = transpose(&g);
        assert_eq!(t.neighbors(0), &[0, 0]);
    }
}
