//! Group-by built on the heavy-key **semisort** engine.
//!
//! The paper motivates heavy-key handling with semisort-like workloads
//! (Section 2.5): grouping records by key is the canonical consumer of
//! duplicate-heavy sorting — and it never needed a total order.  This
//! module groups `(key, value)` records with [`semisort`], which routes
//! heavy keys into dedicated collision-free buckets and light keys into
//! hashed buckets, skipping the full sort's recursion and dovetail merge.
//!
//! After [`group_by_key`] the record array is *grouped* (each distinct key
//! contiguous, input order preserved within a group) but **not sorted**;
//! the returned group list is sorted by key, so ordered consumers pay a
//! sort over distinct keys instead of one over all records.

/// One group of the result: the key, and the half-open range of its records
/// in the grouped record array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// The common key of the group.
    pub key: u64,
    /// Start index of the group in the grouped record array.
    pub start: usize,
    /// One past the last index of the group.
    pub end: usize,
}

impl Group {
    /// Number of records in the group.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the group is empty (never true for produced groups).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Groups records by key: semisorts `records` in place (equal keys become
/// contiguous, keeping input order within each group) and returns one
/// [`Group`] per distinct key, in increasing key order.
///
/// The record array itself is grouped, not sorted — iterate the returned
/// groups for key-ordered traversal.
pub fn group_by_key<V: Copy + Send + Sync>(records: &mut [(u64, V)]) -> Vec<Group> {
    let mut groups: Vec<Group> = semisort::semisort_pairs(records)
        .into_iter()
        .map(|g| Group {
            key: g.key,
            start: g.start,
            end: g.end,
        })
        .collect();
    // Distinct keys are typically far fewer than records; sorting the group
    // list restores the ordered contract cheaply.
    dtsort::sort_by_key(&mut groups, |g| g.key);
    groups
}

/// Counts the number of records per distinct key (a histogram over an
/// unbounded key universe), returned in increasing key order.
pub fn count_by_key(keys: &[u64]) -> Vec<(u64, usize)> {
    let mut records: Vec<(u64, ())> = keys.iter().map(|&k| (k, ())).collect();
    group_by_key(&mut records)
        .into_iter()
        .map(|g| (g.key, g.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::HashMap;

    #[test]
    fn groups_cover_input_and_match_hashmap() {
        let rng = Rng::new(1);
        let mut records: Vec<(u64, u32)> = (0..50_000)
            .map(|i| (rng.ith_in(i, 200), i as u32))
            .collect();
        let mut want: HashMap<u64, usize> = HashMap::new();
        for &(k, _) in &records {
            *want.entry(k).or_default() += 1;
        }
        let groups = group_by_key(&mut records);
        assert_eq!(groups.len(), want.len());
        let mut covered = 0usize;
        for g in &groups {
            assert_eq!(g.len(), want[&g.key]);
            assert!(records[g.start..g.end].iter().all(|&(k, _)| k == g.key));
            assert!(!g.is_empty());
            covered += g.len();
        }
        assert_eq!(covered, records.len());
        // Groups are in increasing key order.
        assert!(groups.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn group_values_preserve_input_order() {
        let mut records = vec![(5u64, 'a'), (3, 'x'), (5, 'b'), (3, 'y'), (5, 'c')];
        let groups = group_by_key(&mut records);
        assert_eq!(groups.len(), 2);
        let g5 = groups.iter().find(|g| g.key == 5).unwrap();
        let vals: Vec<char> = records[g5.start..g5.end].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec!['a', 'b', 'c'], "stability within a group");
    }

    #[test]
    fn count_by_key_heavy_input() {
        let rng = Rng::new(2);
        let keys: Vec<u64> = (0..30_000).map(|i| rng.ith_in(i, 3)).collect();
        let counts = count_by_key(&keys);
        assert!(counts.len() <= 3);
        assert_eq!(counts.iter().map(|&(_, c)| c).sum::<usize>(), 30_000);
    }

    #[test]
    fn groups_tile_the_array() {
        // The array is grouped (contiguous per key) even though it is not
        // sorted: groups ordered by start index must tile 0..n exactly.
        let rng = Rng::new(3);
        let mut records: Vec<(u64, u32)> = (0..40_000)
            .map(|i| (rng.ith_in(i, 500), i as u32))
            .collect();
        let mut groups = group_by_key(&mut records);
        groups.sort_by_key(|g| g.start);
        let mut expect = 0usize;
        for g in &groups {
            assert_eq!(g.start, expect);
            expect = g.end;
        }
        assert_eq!(expect, records.len());
    }

    #[test]
    fn empty_and_single() {
        let mut empty: Vec<(u64, u8)> = vec![];
        assert!(group_by_key(&mut empty).is_empty());
        let mut one = vec![(9u64, 1u8)];
        let g = group_by_key(&mut one);
        assert_eq!(
            g,
            vec![Group {
                key: 9,
                start: 0,
                end: 1
            }]
        );
    }
}
