//! Morton (z-order) sort of point sets (paper Section 6.2).
//!
//! The z-value of a point is obtained by interleaving the bits of its
//! coordinates; sorting points by z-value orders multidimensional data along
//! a space-filling curve while preserving locality.  Dense spatial clusters
//! (Varden-generated or GPS traces) produce many points with equal or
//! near-equal z-values — heavy keys for the integer sort.

use workloads::points::{Point2, Point3};

/// Interleaves the bits of two 32-bit coordinates into a 64-bit z-value
/// (x in the even bit positions, y in the odd ones).
#[inline]
pub fn morton2(x: u32, y: u32) -> u64 {
    spread_bits_2(x) | (spread_bits_2(y) << 1)
}

/// Interleaves the low 21 bits of three coordinates into a 63-bit z-value.
#[inline]
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    spread_bits_3(x) | (spread_bits_3(y) << 1) | (spread_bits_3(z) << 2)
}

/// Spreads the 32 bits of `v` so that bit `i` moves to bit `2i`.
#[inline]
fn spread_bits_2(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Spreads the low 21 bits of `v` so that bit `i` moves to bit `3i`.
#[inline]
fn spread_bits_3(v: u32) -> u64 {
    let mut x = (v & 0x1F_FFFF) as u64;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Computes the z-values of 2D points as `(z_value, original_index)` pairs.
pub fn morton_codes_2d(points: &[Point2]) -> Vec<(u64, u32)> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| (morton2(p.x, p.y), i as u32))
        .collect()
}

/// Computes the z-values of 3D points as `(z_value, original_index)` pairs.
pub fn morton_codes_3d(points: &[Point3]) -> Vec<(u64, u32)> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| (morton3(p.x, p.y, p.z), i as u32))
        .collect()
}

/// Sorts 2D points into Morton order using DovetailSort; returns the points
/// in z-order.
pub fn morton_sort_2d(points: &[Point2]) -> Vec<Point2> {
    morton_sort_2d_with(points, dtsort::sort_pairs)
}

/// Sorts 2D points into Morton order with a pluggable `(u64, u32)` sorter.
pub fn morton_sort_2d_with<S>(points: &[Point2], sorter: S) -> Vec<Point2>
where
    S: Fn(&mut [(u64, u32)]),
{
    let mut codes = morton_codes_2d(points);
    sorter(&mut codes);
    codes.iter().map(|&(_, i)| points[i as usize]).collect()
}

/// Sorts 3D points into Morton order using DovetailSort.
pub fn morton_sort_3d(points: &[Point3]) -> Vec<Point3> {
    morton_sort_3d_with(points, dtsort::sort_pairs)
}

/// Sorts 3D points into Morton order with a pluggable `(u64, u32)` sorter.
pub fn morton_sort_3d_with<S>(points: &[Point3], sorter: S) -> Vec<Point3>
where
    S: Fn(&mut [(u64, u32)]),
{
    let mut codes = morton_codes_3d(points);
    sorter(&mut codes);
    codes.iter().map(|&(_, i)| points[i as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::points::{uniform_points_2d, uniform_points_3d, varden_points_2d, VardenConfig};

    /// Bit-by-bit reference implementation of 2D interleaving.
    fn morton2_reference(x: u32, y: u32) -> u64 {
        let mut out = 0u64;
        for b in 0..32 {
            out |= (((x >> b) & 1) as u64) << (2 * b);
            out |= (((y >> b) & 1) as u64) << (2 * b + 1);
        }
        out
    }

    fn morton3_reference(x: u32, y: u32, z: u32) -> u64 {
        let mut out = 0u64;
        for b in 0..21 {
            out |= (((x >> b) & 1) as u64) << (3 * b);
            out |= (((y >> b) & 1) as u64) << (3 * b + 1);
            out |= (((z >> b) & 1) as u64) << (3 * b + 2);
        }
        out
    }

    #[test]
    fn morton2_matches_reference() {
        let cases = [
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
            (0x1234_5678, 0x9ABC_DEF0),
        ];
        for &(x, y) in &cases {
            assert_eq!(morton2(x, y), morton2_reference(x, y), "({x}, {y})");
        }
    }

    #[test]
    fn morton3_matches_reference() {
        let cases = [
            (0u32, 0u32, 0u32),
            (1, 2, 3),
            ((1 << 21) - 1, 0, 0),
            (0, (1 << 21) - 1, 0),
            (0, 0, (1 << 21) - 1),
            (0x15_5555, 0x0A_AAAA, 0x1F_FFFF),
        ];
        for &(x, y, z) in &cases {
            assert_eq!(
                morton3(x, y, z),
                morton3_reference(x, y, z),
                "({x},{y},{z})"
            );
        }
    }

    #[test]
    fn morton_order_respects_quadrants() {
        // All points in the lower-left quadrant sort before any point in the
        // upper-right quadrant.
        let low = morton2(100, 200);
        let high = morton2(1 << 31, 1 << 31);
        assert!(low < high);
    }

    #[test]
    fn morton_sort_matches_std_sort_of_codes() {
        let pts = uniform_points_2d(20_000, 1);
        let sorted = morton_sort_2d(&pts);
        let mut want: Vec<u64> = pts.iter().map(|p| morton2(p.x, p.y)).collect();
        want.sort_unstable();
        let got: Vec<u64> = sorted.iter().map(|p| morton2(p.x, p.y)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn morton_sort_3d_and_varden_inputs() {
        let pts = uniform_points_3d(10_000, 2);
        let sorted = morton_sort_3d(&pts);
        let got: Vec<u64> = sorted.iter().map(|p| morton3(p.x, p.y, p.z)).collect();
        assert!(got.windows(2).all(|w| w[0] <= w[1]));

        let pts = varden_points_2d(30_000, &VardenConfig::default(), 3);
        let sorted = morton_sort_2d(&pts);
        let got: Vec<u64> = sorted.iter().map(|p| morton2(p.x, p.y)).collect();
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
        // The multiset of points is preserved.
        let mut a: Vec<(u32, u32)> = pts.iter().map(|p| (p.x, p.y)).collect();
        let mut b: Vec<(u32, u32)> = sorted.iter().map(|p| (p.x, p.y)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn pluggable_sorters_agree() {
        let pts = varden_points_2d(15_000, &VardenConfig::default(), 4);
        let a = morton_sort_2d_with(&pts, dtsort::sort_pairs);
        let b = morton_sort_2d_with(&pts, baselines::lsd::sort_pairs);
        let c = morton_sort_2d_with(&pts, |c| c.sort_by_key(|&(k, _)| k));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_point_set() {
        assert!(morton_sort_2d(&[]).is_empty());
        assert!(morton_sort_3d(&[]).is_empty());
    }
}
