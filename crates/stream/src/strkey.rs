//! Order-preserving string keys for the streaming engines.
//!
//! The sorter and group-by merge in the ordered-`u64` domain
//! ([`dtsort::IntegerKey`]); a variable-length byte-string key rides that
//! domain through its **8-byte big-endian prefix**
//! ([`dtsort::string_key_prefix64`]), which is monotone with respect to
//! lexicographic byte order.  The prefix is not injective — keys sharing
//! their first eight bytes collide — so every record carries its full key
//! bytes in the spill payload ([`StringKeyed`]) and the engines tie-break
//! on them:
//!
//! * **within a run**: after the DovetailSort pass over `(prefix, index)`
//!   tags, equal-prefix spans are stably re-sorted by full key;
//! * **across runs**: the loser-tree comparator
//!   ([`crate::SpillValue::spill_record_lt`]) compares `(prefix, full
//!   key)` pairs, and fully equal keys still favour earlier runs, so the
//!   end-to-end sort stays stable;
//! * **in the group-by**: prefix-colliding keys are sub-grouped by the
//!   embedded key bytes before folding, and the merge refuses to combine
//!   partials whose full keys differ.
//!
//! The result: [`StringStreamSorter`] and [`StringStreamGroupBy`] accept
//! `String` / `Vec<u8>` keys end to end, spilling and merging through the
//! exact same run formats, pipeline, and read-ahead as the integer-keyed
//! engines.
//!
//! ```
//! use stream::StringStreamSorter;
//!
//! let mut sorter: StringStreamSorter<String, u64> = StringStreamSorter::new();
//! sorter.push_record("banana".to_string(), 1).unwrap();
//! sorter.push_record("apple".to_string(), 2).unwrap();
//! sorter.push_record("apricot".to_string(), 3).unwrap();
//! let sorted: Vec<(String, u64)> = sorter.finish().unwrap().collect();
//! assert_eq!(sorted[0].0, "apple");
//! assert_eq!(sorted[2].0, "banana");
//! ```

use crate::groupby::{Aggregator, GroupedStream, StreamGroupBy};
use crate::sorter::{SortedStream, StreamSorter};
use crate::spill::{sealed::Sealed, SpillValue};
use dtsort::{string_key_prefix64, IntegerKey, RunReport, SortConfig, StreamConfig, StringKey};
use parlay::kway::kway_merge_into;
use std::io::{self, Read, Write};
use std::marker::PhantomData;

use crate::groupby::GroupByStats;
use crate::sorter::StreamStats;

/// A spillable record pairing a variable-length key's full bytes with a
/// value, used as the *value* slot of the integer-keyed engines when the
/// logical key is a byte string.
///
/// Spill payload layout (the value part of the flat record format, and
/// the per-record payload inside compressed blocks):
///
/// ```text
/// ┌───────────────────┬────────────┬──────────────────────────┐
/// │ key_len (u32 LE)  │ key bytes  │ value payload (V's own)  │
/// └───────────────────┴────────────┴──────────────────────────┘
/// ```
#[derive(Debug, Clone)]
pub struct StringKeyed<V> {
    key: Box<[u8]>,
    value: V,
}

impl<V: SpillValue> StringKeyed<V> {
    /// Pairs a key's bytes with a value.
    pub fn new<K: StringKey>(key: &K, value: V) -> Self {
        Self {
            key: key.key_bytes().to_vec().into_boxed_slice(),
            value,
        }
    }

    /// The full key bytes this record carries.
    pub fn key_bytes(&self) -> &[u8] {
        &self.key
    }

    /// The wrapped value.
    pub fn value(&self) -> &V {
        &self.value
    }

    /// Unwraps into the value, dropping the key bytes.
    pub fn into_value(self) -> V {
        self.value
    }
}

fn short_record(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, what.to_string())
}

impl<V: SpillValue> Sealed for StringKeyed<V> {}

impl<V: SpillValue> SpillValue for StringKeyed<V> {
    const SPILL_FIXED_SIZE: Option<usize> = None;

    fn spill_size(&self) -> usize {
        4 + self.key.len() + self.value.spill_size()
    }

    fn spill_write(&self, w: &mut dyn Write) -> io::Result<()> {
        let len = u32::try_from(self.key.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "string key of {} bytes exceeds the u32 spill length prefix",
                    self.key.len()
                ),
            )
        })?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&self.key)?;
        self.value.spill_write(w)
    }

    fn spill_read(
        r: &mut dyn Read,
        scratch: &mut Vec<u8>,
        payload_budget: u64,
    ) -> io::Result<Self> {
        if payload_budget < 4 {
            return Err(short_record("spilled run ended mid-key-length"));
        }
        let mut len_bytes = [0u8; 4];
        r.read_exact(&mut len_bytes)?;
        let key_len = u64::from(u32::from_le_bytes(len_bytes));
        if key_len > payload_budget - 4 {
            return Err(short_record(
                "string key length prefix exceeds the bytes remaining in the spilled run",
            ));
        }
        let mut key = vec![0u8; key_len as usize];
        r.read_exact(&mut key)?;
        let value = V::spill_read(r, scratch, payload_budget - 4 - key_len)?;
        Ok(Self {
            key: key.into_boxed_slice(),
            value,
        })
    }

    fn spill_placeholder() -> Self {
        Self {
            key: Box::default(),
            value: V::spill_placeholder(),
        }
    }

    /// DovetailSort over `(prefix, index)` tags like the plain var path,
    /// then a stable full-key re-sort of every equal-prefix span: the run
    /// comes out in exact lexicographic key order, push order preserved
    /// within fully equal keys.
    fn sort_spill_run<K: IntegerKey>(
        buffer: &mut Vec<(K, Self)>,
        cfg: &SortConfig,
        carry: &[u64],
    ) -> RunReport {
        let mut tags: Vec<(u64, u64)> = buffer
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (k.to_ordered_u64(), i as u64))
            .collect();
        let report = dtsort::sort_run_pairs_with(&mut tags, cfg, carry);
        let mut slots: Vec<Option<(K, Self)>> = buffer.drain(..).map(Some).collect();
        buffer.extend(
            tags.iter()
                .map(|&(_, i)| slots[i as usize].take().expect("each slot moved once")),
        );
        let mut s = 0usize;
        while s < buffer.len() {
            let mut e = s + 1;
            while e < buffer.len() && buffer[e].0 == buffer[s].0 {
                e += 1;
            }
            if e - s > 1 {
                // `sort_by` is stable, so records with fully equal keys
                // keep their push order.
                buffer[s..e].sort_by(|a, b| a.1.key.cmp(&b.1.key));
            }
            s = e;
        }
        report
    }

    /// Parallel k-way merge over `(prefix, slot)` tags whose comparator
    /// consults the full key bytes on prefix ties; fully equal keys still
    /// favour earlier runs (the merge's smaller-index tie rule), keeping
    /// the materializing path stable like the streaming one.
    fn merge_spill_runs_into<K: IntegerKey>(
        runs: Vec<Vec<(K, Self)>>,
        tail: Vec<(K, Self)>,
        out: &mut [(K, Self)],
    ) {
        let mut key_runs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(runs.len() + 1);
        let mut full_keys: Vec<&[u8]> = Vec::with_capacity(out.len());
        let mut base = 0u64;
        for run in runs.iter().chain(std::iter::once(&tail)) {
            key_runs.push(
                run.iter()
                    .enumerate()
                    .map(|(i, (k, _))| (k.to_ordered_u64(), base + i as u64))
                    .collect(),
            );
            full_keys.extend(run.iter().map(|(_, v)| &*v.key));
            base += run.len() as u64;
        }
        debug_assert_eq!(base as usize, out.len());
        let slices: Vec<&[(u64, u64)]> = key_runs.iter().map(|r| r.as_slice()).collect();
        let mut merged = vec![(0u64, 0u64); out.len()];
        kway_merge_into(&slices, &mut merged, &|a: &(u64, u64), b: &(u64, u64)| {
            (a.0, full_keys[a.1 as usize]) < (b.0, full_keys[b.1 as usize])
        });
        drop(full_keys);
        let mut slots: Vec<Option<(K, Self)>> = Vec::with_capacity(out.len());
        for run in runs {
            slots.extend(run.into_iter().map(Some));
        }
        slots.extend(tail.into_iter().map(Some));
        for (slot, &(_, tag)) in out.iter_mut().zip(merged.iter()) {
            *slot = slots[tag as usize]
                .take()
                .expect("each record gathered once");
        }
    }

    fn spill_record_lt(a: &(u64, Self), b: &(u64, Self)) -> bool {
        (a.0, &*a.1.key) < (b.0, &*b.1.key)
    }

    fn spill_embedded_key(&self) -> Option<&[u8]> {
        Some(&self.key)
    }
}

/// Rebuilds a typed key from spilled bytes; the bytes were produced from
/// a valid key by this process, so failure means file corruption — the
/// same environment fault a mid-merge read error is, reported the same
/// way (panic; see [`crate::SortedStream`]).
fn rebuild_key<K: StringKey>(bytes: &[u8]) -> K {
    K::from_key_bytes(bytes)
        .unwrap_or_else(|e| panic!("corrupt string key read back from spilled run: {e}"))
}

/// A bounded-memory streaming sorter over **string-keyed** records:
/// [`crate::StreamSorter`]'s push/finish API with `String` / `Vec<u8>`
/// keys (any [`dtsort::StringKey`]), sorted in lexicographic byte order.
///
/// Internally each record's ordering key is its 8-byte prefix
/// ([`dtsort::string_key_prefix64`]) and the full key travels in the
/// spilled payload; see the module docs for why the result is exactly
/// lexicographic and stable.  All [`StreamConfig`] knobs (budget, spill
/// compression, pipelining, read-ahead) apply unchanged.
pub struct StringStreamSorter<K: StringKey, V: SpillValue = ()> {
    inner: StreamSorter<u64, StringKeyed<V>>,
    _key: PhantomData<fn() -> K>,
}

impl<K: StringKey, V: SpillValue> Default for StringStreamSorter<K, V> {
    fn default() -> Self {
        Self::with_config(StreamConfig::default())
    }
}

impl<K: StringKey, V: SpillValue> StringStreamSorter<K, V> {
    /// Sorter with the default [`StreamConfig`] (256 MiB budget).
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(cfg: StreamConfig) -> Self {
        Self {
            inner: StreamSorter::with_config(cfg),
            _key: PhantomData,
        }
    }

    /// Like [`StringStreamSorter::with_config`] but spilling through the
    /// caller's (possibly shared) I/O backend; see
    /// [`crate::StreamSorter::with_config_and_io`].
    pub fn with_config_and_io(cfg: StreamConfig, io: crate::spillio::SpillIoHandle) -> Self {
        Self {
            inner: StreamSorter::with_config_and_io(cfg, io),
            _key: PhantomData,
        }
    }

    /// Appends one record, spilling a full run if due.
    pub fn push_record(&mut self, key: K, value: V) -> io::Result<()> {
        let prefix = string_key_prefix64(key.key_bytes());
        self.inner
            .push_record(prefix, StringKeyed::new(&key, value))
    }

    /// Appends a batch of records (cloning each; use
    /// [`StringStreamSorter::push_record`] to move values in).
    ///
    /// Like [`crate::StreamSorter::push`], a spill error does not drop
    /// the rest of the slice: every record is buffered before its spill
    /// attempt, and the first error is reported once the whole slice is
    /// owned by the sorter.
    pub fn push(&mut self, records: &[(K, V)]) -> io::Result<()> {
        let mut first_err = None;
        for (k, v) in records {
            if let Err(e) = self.push_record(k.clone(), v.clone()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Total records accepted so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Counters (spills, carried heavy prefixes, ...).
    pub fn stats(&self) -> &StreamStats {
        self.inner.stats()
    }

    /// See [`crate::StreamSorter::flush_spills`].
    pub fn flush_spills(&mut self) -> io::Result<()> {
        self.inner.flush_spills()
    }

    /// See [`crate::StreamSorter::shrink_to_budget`].
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.inner.shrink_to_budget()
    }

    /// Finishes the sort, streaming `(key, value)` pairs in lexicographic
    /// key order (stable in push order for equal keys).
    pub fn finish(self) -> io::Result<StringSortedStream<K, V>> {
        Ok(StringSortedStream {
            inner: self.inner.finish()?,
            _key: PhantomData,
        })
    }

    /// Finishes via the materializing parallel merge
    /// ([`crate::StreamSorter::finish_vec`]).
    pub fn finish_vec(self) -> io::Result<Vec<(K, V)>> {
        Ok(self
            .inner
            .finish_vec()?
            .into_iter()
            .map(|(_, rec)| (rebuild_key(&rec.key), rec.value))
            .collect())
    }
}

/// Streaming sorted output of a [`StringStreamSorter`].
pub struct StringSortedStream<K: StringKey, V: SpillValue> {
    inner: SortedStream<u64, StringKeyed<V>>,
    _key: PhantomData<fn() -> K>,
}

impl<K: StringKey, V: SpillValue> StringSortedStream<K, V> {
    /// See [`crate::SortedStream::read_ahead_disabled`].
    pub fn read_ahead_disabled(&self) -> bool {
        self.inner.read_ahead_disabled()
    }

    /// See [`crate::SortedStream::prefetch_capped`].
    pub fn prefetch_capped(&self) -> bool {
        self.inner.prefetch_capped()
    }
}

impl<K: StringKey, V: SpillValue> Iterator for StringSortedStream<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let (_, rec) = self.inner.next()?;
        Some((rebuild_key(&rec.key), rec.value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<K: StringKey, V: SpillValue> ExactSizeIterator for StringSortedStream<K, V> {}

/// Lifts a plain [`Aggregator`] over values into one over
/// [`StringKeyed`] records: the key bytes ride along unchanged while the
/// wrapped aggregator folds the values.  `combine` is only ever called on
/// partials of the same full key (the group-by guarantees it via
/// [`crate::SpillValue::spill_embedded_key`]).
pub struct StringAggAdapter<G>(G);

impl<G: Aggregator> Aggregator for StringAggAdapter<G> {
    type Input = StringKeyed<G::Input>;
    type Acc = StringKeyed<G::Acc>;

    fn lift(&self, v: StringKeyed<G::Input>) -> StringKeyed<G::Acc> {
        StringKeyed {
            key: v.key,
            value: self.0.lift(v.value),
        }
    }

    fn combine(&self, a: StringKeyed<G::Acc>, b: StringKeyed<G::Acc>) -> StringKeyed<G::Acc> {
        debug_assert_eq!(a.key, b.key, "combine across distinct full keys");
        StringKeyed {
            key: a.key,
            value: self.0.combine(a.value, b.value),
        }
    }
}

/// Bounded-memory streaming group-by over **string-keyed** records:
/// [`crate::StreamGroupBy`] with `String` / `Vec<u8>` keys, producing one
/// `(key, aggregate)` pair per distinct key in lexicographic key order.
///
/// Prefix-colliding keys (first 8 bytes equal) are kept apart by the full
/// key bytes embedded in every partial, both when a run is aggregated and
/// when per-run partials combine at merge time.
pub struct StringStreamGroupBy<K: StringKey, G: Aggregator> {
    inner: StreamGroupBy<u64, StringAggAdapter<G>>,
    _key: PhantomData<fn() -> K>,
}

impl<K: StringKey, G: Aggregator> StringStreamGroupBy<K, G> {
    /// Group-by with the default [`StreamConfig`] (256 MiB budget).
    pub fn new(agg: G) -> Self {
        Self::with_config(agg, StreamConfig::default())
    }

    pub fn with_config(agg: G, cfg: StreamConfig) -> Self {
        Self {
            inner: StreamGroupBy::with_config(StringAggAdapter(agg), cfg),
            _key: PhantomData,
        }
    }

    /// Like [`StringStreamGroupBy::with_config`] but spilling through the
    /// caller's (possibly shared) I/O backend; see
    /// [`crate::StreamGroupBy::with_config_and_io`].
    pub fn with_config_and_io(
        agg: G,
        cfg: StreamConfig,
        io: crate::spillio::SpillIoHandle,
    ) -> Self {
        Self {
            inner: StreamGroupBy::with_config_and_io(StringAggAdapter(agg), cfg, io),
            _key: PhantomData,
        }
    }

    /// Appends one record, aggregating and spilling a full run if due.
    pub fn push_record(&mut self, key: K, value: G::Input) -> io::Result<()> {
        let prefix = string_key_prefix64(key.key_bytes());
        self.inner
            .push_record(prefix, StringKeyed::new(&key, value))
    }

    /// Counters (spills, collapse ratio, ...).
    pub fn stats(&self) -> &GroupByStats {
        self.inner.stats()
    }

    /// See [`crate::StreamGroupBy::flush_spills`].
    pub fn flush_spills(&mut self) -> io::Result<()> {
        self.inner.flush_spills()
    }

    /// See [`crate::StreamGroupBy::shrink_to_budget`].
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.inner.shrink_to_budget()
    }

    /// Finishes the group-by: `(key, aggregate)` pairs in lexicographic
    /// key order, one per distinct key.
    pub fn finish(self) -> io::Result<StringGroupedStream<K, G>> {
        Ok(StringGroupedStream {
            inner: self.inner.finish()?,
            _key: PhantomData,
        })
    }

    /// [`StringStreamGroupBy::finish`], materialized into a vector.
    pub fn finish_vec(self) -> io::Result<Vec<(K, G::Acc)>> {
        Ok(self.finish()?.collect())
    }
}

/// Streaming output of a [`StringStreamGroupBy`].
pub struct StringGroupedStream<K: StringKey, G: Aggregator> {
    inner: GroupedStream<u64, StringAggAdapter<G>>,
    _key: PhantomData<fn() -> K>,
}

impl<K: StringKey, G: Aggregator> StringGroupedStream<K, G> {
    /// See [`crate::SortedStream::read_ahead_disabled`].
    pub fn read_ahead_disabled(&self) -> bool {
        self.inner.read_ahead_disabled()
    }

    /// See [`crate::SortedStream::prefetch_capped`].
    pub fn prefetch_capped(&self) -> bool {
        self.inner.prefetch_capped()
    }
}

impl<K: StringKey, G: Aggregator> Iterator for StringGroupedStream<K, G> {
    type Item = (K, G::Acc);

    fn next(&mut self) -> Option<(K, G::Acc)> {
        let (_, rec) = self.inner.next()?;
        Some((rebuild_key(&rec.key), rec.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groupby::{CountAgg, SumAgg};
    use dtsort::SpillCompression;
    use parlay::random::Rng;
    use std::collections::HashMap;

    fn tiny_cfg(budget: usize) -> StreamConfig {
        StreamConfig {
            memory_budget_bytes: budget,
            merge_read_ahead: Some(true),
            sort: dtsort::SortConfig {
                base_case_threshold: 64,
                ..Default::default()
            },
            ..StreamConfig::default()
        }
    }

    /// URL-ish keys with long shared prefixes, plus adversarial cases:
    /// prefix collisions past 8 bytes, NUL-extensions, empty keys.
    fn string_keys(n: usize, seed: u64) -> Vec<String> {
        let rng = Rng::new(seed);
        (0..n)
            .map(|i| match i % 7 {
                0 => String::new(),
                1 => format!("prefix08{:04}", rng.ith_in(i as u64, 50)),
                2 => "prefix08".to_string(),
                3 => format!("https://example.com/users/{}", rng.ith_in(i as u64, 300)),
                4 => format!("k{}", rng.ith_in(i as u64, 26) as u8 as char),
                5 => format!("prefix08\u{0}{}", rng.ith_in(i as u64, 3)),
                _ => format!("w{:06}", rng.ith_in(i as u64, 2000)),
            })
            .collect()
    }

    #[test]
    fn string_sorter_matches_comparison_sort_both_compressions() {
        for compression in [SpillCompression::Off, SpillCompression::DeltaLz] {
            let n = 20_000usize;
            let keys = string_keys(n, 31);
            let cfg = StreamConfig {
                spill_compression: compression,
                ..tiny_cfg(32 << 10)
            };
            let mut sorter: StringStreamSorter<String, u64> = StringStreamSorter::with_config(cfg);
            for (i, k) in keys.iter().enumerate() {
                sorter.push_record(k.clone(), i as u64).unwrap();
            }
            assert!(sorter.stats().spilled_runs > 2, "{:?}", sorter.stats());
            let got: Vec<(String, u64)> = sorter.finish().unwrap().collect();
            let mut want: Vec<(String, u64)> = keys
                .into_iter()
                .enumerate()
                .map(|(i, k)| (k, i as u64))
                .collect();
            want.sort_by(|a, b| a.0.cmp(&b.0));
            assert_eq!(got, want, "compression {compression:?}");
        }
    }

    #[test]
    fn string_finish_vec_parallel_merge_agrees_with_streaming() {
        let n = 12_000usize;
        let keys = string_keys(n, 32);
        let mk = || {
            let mut s: StringStreamSorter<String, u32> =
                StringStreamSorter::with_config(tiny_cfg(32 << 10));
            for (i, k) in keys.iter().enumerate() {
                s.push_record(k.clone(), i as u32).unwrap();
            }
            assert!(s.stats().spilled_runs > 0);
            s
        };
        let via_iter: Vec<(String, u32)> = mk().finish().unwrap().collect();
        let via_vec = mk().finish_vec().unwrap();
        assert_eq!(via_iter, via_vec);
    }

    #[test]
    fn byte_keys_sort_unsigned_lexicographically() {
        // 0xFF-leading keys must sort above ASCII, i.e. byte order is
        // unsigned; Vec<u8> keys exercise the non-UTF-8 path.
        let mut sorter: StringStreamSorter<Vec<u8>, ()> =
            StringStreamSorter::with_config(tiny_cfg(16 << 10));
        let keys: Vec<Vec<u8>> = (0..10_000u32)
            .map(|i| match i % 3 {
                0 => vec![0xFF, (i % 251) as u8],
                1 => format!("ascii-{}", i % 101).into_bytes(),
                _ => vec![(i % 256) as u8; (i % 12) as usize],
            })
            .collect();
        for k in &keys {
            sorter.push_record(k.clone(), ()).unwrap();
        }
        let got: Vec<Vec<u8>> = sorter.finish().unwrap().map(|(k, ())| k).collect();
        let mut want = keys;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn string_groupby_matches_sort_then_scan_oracle() {
        for compression in [SpillCompression::Off, SpillCompression::DeltaLz] {
            let n = 25_000usize;
            let keys = string_keys(n, 33);
            let cfg = StreamConfig {
                spill_compression: compression,
                ..tiny_cfg(16 << 10)
            };
            let mut gb: StringStreamGroupBy<String, SumAgg> =
                StringStreamGroupBy::with_config(SumAgg, cfg);
            for (i, k) in keys.iter().enumerate() {
                gb.push_record(k.clone(), i as u64).unwrap();
            }
            assert!(gb.stats().spilled_runs > 2, "{:?}", gb.stats());
            let got: Vec<(String, u64)> = gb.finish().unwrap().collect();
            // Oracle: sort the records by key, scan, and fold adjacent
            // equal keys.
            let mut sorted: Vec<(String, u64)> = keys
                .into_iter()
                .enumerate()
                .map(|(i, k)| (k, i as u64))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            let mut want: Vec<(String, u64)> = Vec::new();
            for (k, v) in sorted {
                match want.last_mut() {
                    Some((lk, lv)) if *lk == k => *lv += v,
                    _ => want.push((k, v)),
                }
            }
            assert_eq!(got, want, "compression {compression:?}");
        }
    }

    #[test]
    fn prefix_colliding_keys_stay_distinct_groups() {
        // All keys share the same 8-byte prefix, so every ordered-u64 key
        // collides; grouping must still happen on the full key.
        let mut gb: StringStreamGroupBy<String, CountAgg> =
            StringStreamGroupBy::with_config(CountAgg, tiny_cfg(16 << 10));
        let n = 15_000usize;
        for i in 0..n {
            gb.push_record(format!("sameoldprefix-{}", i % 97), ())
                .unwrap();
        }
        assert!(gb.stats().spilled_runs > 1, "{:?}", gb.stats());
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), 97, "one group per distinct full key");
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        let total: u64 = got.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, n as u64, "every record counted exactly once");
    }

    #[test]
    fn equal_keys_keep_push_order_through_spills() {
        // Stability: records under the same full key come out in push
        // order even across spilled runs and prefix collisions.
        let mut sorter: StringStreamSorter<String, u64> =
            StringStreamSorter::with_config(tiny_cfg(16 << 10));
        let n = 12_000u64;
        for i in 0..n {
            sorter
                .push_record(format!("stable-prefix-{}", i % 5), i)
                .unwrap();
        }
        assert!(sorter.stats().spilled_runs > 1);
        let got: Vec<(String, u64)> = sorter.finish().unwrap().collect();
        for pair in got.windows(2) {
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "push order within equal keys");
            }
        }
    }

    #[test]
    fn string_key_groupby_counts_match_hashmap() {
        let n = 20_000usize;
        let keys = string_keys(n, 34);
        let mut gb: StringStreamGroupBy<String, CountAgg> =
            StringStreamGroupBy::with_config(CountAgg, tiny_cfg(16 << 10));
        for k in &keys {
            gb.push_record(k.clone(), ()).unwrap();
        }
        let mut want: HashMap<&str, u64> = HashMap::new();
        for k in &keys {
            *want.entry(k.as_str()).or_default() += 1;
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), want.len());
        for (k, c) in &got {
            assert_eq!(*c, want[k.as_str()], "key {k:?}");
        }
    }
}
