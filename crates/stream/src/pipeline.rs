//! Pipelined spill I/O: a background run writer and merge read-ahead.
//!
//! The streaming engines are CPU/disk alternators when run synchronously:
//! `push` blocks while a full run is sorted *and* written, and the final
//! merge issues blocking reads from inside the loser-tree hot loop, so the
//! hardware is never sorting and doing I/O at the same time.  This module
//! provides the two stages that overlap them:
//!
//! * [`SpillPipeline`] — a dedicated **writer thread** behind a bounded
//!   channel.  The producer hands over a frozen, sorted run and immediately
//!   starts filling a recycled buffer from the pipeline's pool; the writer
//!   streams the run to disk (fsync included) in the background.  The
//!   channel bound is the backpressure: at most
//!   [`dtsort::StreamConfig::spill_pipeline_depth`] runs are in flight, and
//!   each one is paid for by a budget share
//!   ([`dtsort::StreamConfig::spill_shares`]).
//! * [`RunPrefetcher`] — per-run **merge read-ahead** that decodes record
//!   blocks ahead of the k-way merge through a bounded channel sized by
//!   the per-run share of the merge read budget, so the loser tree pops
//!   from warm memory instead of cold buffered reads.  Under the
//!   `Blocking` spill-I/O backend this is one thread per run; under
//!   `Batched` it is a [`BatchedFeed`] — resubmit-on-consume decode tasks
//!   multiplexed onto the backend's fixed worker pool, so a k-way merge
//!   needs `spill_io_workers` threads instead of k.
//!
//! ## Error and ordering contract
//!
//! The writer preserves **submission order**: completed runs are recorded
//! in the order they were submitted, and after the first failure no later
//! run is written — subsequent submissions are stashed (with their
//! records intact) in order, so the owner can reclaim `completed ++
//! failed` as an order-preserving partition of everything it submitted.
//! A writer-side error is never dropped: it is returned by the next
//! [`SpillPipeline::poll_error`] / [`SpillPipeline::close`], which the
//! engines call on every `push` and on `finish`.  Writer panics (e.g. a
//! poisoned value serializer) are caught and converted to errors with the
//! same guarantees.

use crate::metrics::m;
use crate::spill::{wrap_spill_err, write_run_with_retry, RunReader, SpillValue, SpilledRun};
use crate::spillio::{JobPool, SpillIoHandle};
use dtsort::{IntegerKey, SpillCompression, SpillRetryPolicy};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Everything the writer thread and the owning engine share.
struct Shared<K, V> {
    state: Mutex<State<K, V>>,
    /// Signalled by the writer after every finished job (for
    /// [`SpillPipeline::flush`]).
    idle: Condvar,
}

struct State<K, V> {
    /// Runs written and synced, in submission order.
    completed: Vec<SpilledRun>,
    /// Runs *not* written (everything submitted after the first error, plus
    /// the failing run itself), in submission order, records intact.
    failed: Vec<Vec<(K, V)>>,
    /// First writer-side error; later errors are dropped (the first is the
    /// root cause and the pipeline stops writing after it).
    error: Option<io::Error>,
    /// Sticky failure flag: stays set even after the error itself is taken
    /// by [`SpillPipeline::poll_error`], so the writer keeps stashing
    /// (never resumes writing out of order) until the owner closes it.
    broken: bool,
    /// Cleared buffers of written runs, for the producer to reuse.
    pool: Vec<Vec<(K, V)>>,
    /// Jobs handed to [`SpillPipeline::submit`] so far.
    submitted: usize,
    /// Jobs the writer has fully processed (written or stashed).
    finished: usize,
    /// Set by [`SpillPipeline::abandon`]: stash instead of writing (the
    /// owner is being dropped unfinished, the bytes will never be read).
    abandoned: bool,
}

/// What a closed pipeline hands back to its owner.
pub(crate) struct ClosedPipeline<K, V> {
    /// Runs on disk, in submission order (always a prefix of the
    /// submissions).
    pub completed: Vec<SpilledRun>,
    /// Submitted runs that never reached disk, in submission order.
    pub failed: Vec<Vec<(K, V)>>,
    /// The first writer-side error, if any.
    pub error: Option<io::Error>,
}

/// Background spill-writer stage: see the module docs.
pub(crate) struct SpillPipeline<K: IntegerKey, V: SpillValue> {
    tx: Option<SyncSender<Vec<(K, V)>>>,
    worker: Option<JoinHandle<()>>,
    shared: Arc<Shared<K, V>>,
}

impl<K: IntegerKey, V: SpillValue> SpillPipeline<K, V> {
    /// Starts the writer thread over `dir`, naming run files
    /// `{prefix}NNNNNN.bin` and encoding them with `compression`.  `depth`
    /// bounds the in-flight runs (queued + being written); the buffer pool
    /// keeps at most `depth + 1` cleared run buffers for reuse.  `retry`
    /// governs how the writer handles transient I/O failures: each run is
    /// retried from scratch per the policy before it counts as failed.
    pub fn start(
        io: SpillIoHandle,
        dir: PathBuf,
        depth: usize,
        prefix: String,
        compression: SpillCompression,
        retry: SpillRetryPolicy,
    ) -> Self {
        let depth = depth.max(1);
        let (tx, rx) = sync_channel::<Vec<(K, V)>>(depth - 1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                completed: Vec::new(),
                failed: Vec::new(),
                error: None,
                broken: false,
                pool: Vec::new(),
                submitted: 0,
                finished: 0,
                abandoned: false,
            }),
            idle: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let pool_limit = depth + 1;
        let worker = std::thread::Builder::new()
            .name("pisort-spill-writer".to_string())
            .spawn(move || {
                writer_loop(
                    io,
                    rx,
                    dir,
                    prefix,
                    compression,
                    retry,
                    worker_shared,
                    pool_limit,
                )
            })
            .expect("failed to spawn spill-writer thread");
        Self {
            tx: Some(tx),
            worker: Some(worker),
            shared,
        }
    }

    /// Hands a sorted run to the writer, blocking while the pipeline is at
    /// depth (backpressure).  The handoff itself cannot fail: if the writer
    /// has already errored, the run is stashed — in order — for reclaim at
    /// [`SpillPipeline::close`]; call [`SpillPipeline::poll_error`]
    /// afterwards to learn about failures.
    pub fn submit(&mut self, run: Vec<(K, V)>) {
        {
            let mut st = self.shared.state.lock().expect("spill state");
            st.submitted += 1;
            if obs::enabled() {
                m().queue_depth.set((st.submitted - st.finished) as i64);
            }
        }
        let tx = self.tx.as_ref().expect("pipeline already closed");
        // The bounded send is the backpressure point: it blocks while the
        // pipeline is at depth.  Record the wait so budget tuning can see
        // when the producer outruns the disk.
        let send_result = if obs::enabled() {
            let start = std::time::Instant::now();
            let _bp = obs::span!("backpressure");
            let r = tx.send(run);
            m().backpressure_ns.record_duration(start.elapsed());
            r
        } else {
            tx.send(run)
        };
        if let Err(send) = send_result {
            // The writer thread is gone without draining the channel —
            // only possible if it aborted outside `catch_unwind`.  Keep
            // the records and surface an error rather than losing either.
            let mut st = self.shared.state.lock().expect("spill state");
            st.failed.push(send.0);
            st.finished += 1;
            if st.error.is_none() {
                st.error = Some(io::Error::other(
                    "spill writer thread terminated unexpectedly",
                ));
            }
            st.broken = true;
            self.shared.idle.notify_all();
        }
    }

    /// A cleared, capacity-bearing buffer recycled from a written run, if
    /// one is pooled (so steady-state spilling allocates no new run
    /// buffers).
    pub fn recycled_buffer(&self) -> Option<Vec<(K, V)>> {
        self.shared.state.lock().expect("spill state").pool.pop()
    }

    /// Moves the runs completed so far (in submission order) out of the
    /// pipeline.
    pub fn drain_completed(&self) -> Vec<SpilledRun> {
        std::mem::take(&mut self.shared.state.lock().expect("spill state").completed)
    }

    /// Takes the writer-side error, if one has occurred.  The caller is
    /// expected to tear the pipeline down ([`SpillPipeline::close`]) after
    /// seeing one.
    pub fn poll_error(&self) -> Option<io::Error> {
        self.shared.state.lock().expect("spill state").error.take()
    }

    /// Blocks until every submitted run has been written (or stashed), so
    /// spill statistics are exact and the data is durable.
    pub fn flush(&self) {
        let mut st = self.shared.state.lock().expect("spill state");
        while st.finished < st.submitted {
            st = self.shared.idle.wait(st).expect("spill state");
        }
    }

    /// Stops accepting runs, waits for the writer to drain the queue, and
    /// returns everything it produced.
    pub fn close(mut self) -> ClosedPipeline<K, V> {
        self.tx = None; // disconnect: the writer drains the queue and exits
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        let mut st = self.shared.state.lock().expect("spill state");
        ClosedPipeline {
            completed: std::mem::take(&mut st.completed),
            failed: std::mem::take(&mut st.failed),
            error: st.error.take(),
        }
    }

    /// Marks the pipeline as abandoned (owner dropped without `finish`):
    /// still-queued runs are stashed instead of written, since nothing will
    /// ever read them.
    fn abandon(&self) {
        self.shared.state.lock().expect("spill state").abandoned = true;
    }
}

impl<K: IntegerKey, V: SpillValue> Drop for SpillPipeline<K, V> {
    fn drop(&mut self) {
        // `close` consumed the worker already in the normal path.  If the
        // owner is dropped mid-stream, skip the queued writes and join so
        // the spill directory is not deleted under a live writer.
        if self.worker.is_some() {
            self.abandon();
            self.tx = None;
            if let Some(worker) = self.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn writer_loop<K: IntegerKey, V: SpillValue>(
    io: SpillIoHandle,
    rx: Receiver<Vec<(K, V)>>,
    dir: PathBuf,
    prefix: String,
    compression: SpillCompression,
    retry: SpillRetryPolicy,
    shared: Arc<Shared<K, V>>,
    pool_limit: usize,
) {
    let mut seq = 0usize;
    while let Ok(buf) = rx.recv() {
        let skip = {
            let st = shared.state.lock().expect("spill state");
            st.broken || st.abandoned
        };
        if skip {
            // Ordering: stashing happens here, on the single writer
            // thread, so failed runs line up FIFO after the failing one.
            let mut st = shared.state.lock().expect("spill state");
            st.failed.push(buf);
            st.finished += 1;
            shared.idle.notify_all();
            continue;
        }
        let path = dir.join(format!("{prefix}{seq:06}.bin"));
        // A panic inside a value serializer must neither kill the channel
        // (hanging the producer's bounded send) nor drop the run's records:
        // convert it to an error with the run stashed like any I/O failure.
        let result = if obs::enabled() {
            let start = std::time::Instant::now();
            let _span = obs::span!("spill_write", run = seq);
            let r = catch_unwind(AssertUnwindSafe(|| {
                write_run_with_retry(&io, &path, &buf, compression, &retry)
            }));
            m().write_ns.record_duration(start.elapsed());
            r
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                write_run_with_retry(&io, &path, &buf, compression, &retry)
            }))
        };
        let mut st = shared.state.lock().expect("spill state");
        match result {
            Ok(Ok(run)) => {
                st.completed.push(run);
                seq += 1;
                if st.pool.len() < pool_limit {
                    let mut recycled = buf;
                    recycled.clear();
                    st.pool.push(recycled);
                }
            }
            Ok(Err(e)) => {
                std::fs::remove_file(&path).ok();
                if st.error.is_none() {
                    // Attach the typed spill context without disturbing the
                    // error's kind, so callers can still tell ENOSPC from
                    // corruption after the pipeline relays it.
                    let attempted: u64 = buf.iter().map(|(_, v)| 8 + v.spill_size() as u64).sum();
                    st.error = Some(wrap_spill_err(&path, seq, attempted, e));
                }
                st.broken = true;
                st.failed.push(buf);
            }
            Err(panic) => {
                std::fs::remove_file(&path).ok();
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if st.error.is_none() {
                    st.error = Some(io::Error::other(format!("spill writer panicked: {msg}")));
                }
                st.broken = true;
                st.failed.push(buf);
            }
        }
        st.finished += 1;
        if obs::enabled() {
            m().queue_depth.set((st.submitted - st.finished) as i64);
        }
        shared.idle.notify_all();
    }
}

/// Decodes the next batch of records (roughly `block_bytes` of decoded
/// payload) from `reader`; returns the batch and whether the run is now
/// exhausted.  Shared by both read-ahead schedulers so the two backends
/// produce identical batch streams.
fn decode_one_block<V: SpillValue>(
    reader: &mut RunReader<V>,
    block_bytes: usize,
) -> io::Result<(Vec<(u64, V)>, bool)> {
    let refill_start = obs::enabled().then(std::time::Instant::now);
    let mut block: Vec<(u64, V)> = Vec::new();
    let mut bytes = 0usize;
    let mut end_of_run = false;
    loop {
        match reader.next_record()? {
            Some((key, value)) => {
                bytes += 8 + value.spill_size();
                block.push((key, value));
                if bytes >= block_bytes {
                    break;
                }
            }
            None => {
                end_of_run = true;
                break;
            }
        }
    }
    if let Some(start) = refill_start {
        m().prefetch_refill_ns.record_duration(start.elapsed());
        if !block.is_empty() {
            m().blocks_prefetched.incr();
        }
    }
    Ok((block, end_of_run))
}

/// Where a merge cursor's read-ahead batches come from: a dedicated
/// decode thread per run (`Blocking`), or resubmit-on-consume tasks on
/// the shared batched I/O workers (`Batched`).
pub(crate) enum PrefetchSource<V: SpillValue> {
    Thread(Receiver<io::Result<Vec<(u64, V)>>>),
    Batched(BatchedFeed<V>),
}

impl<V: SpillValue> PrefetchSource<V> {
    /// The next decoded batch: `None` is clean end of run, `Some(Err)` a
    /// read error (terminal — no further batches follow).
    pub fn recv(&mut self) -> Option<io::Result<Vec<(u64, V)>>> {
        match self {
            PrefetchSource::Thread(rx) => rx.recv().ok(),
            PrefetchSource::Batched(feed) => feed.recv(),
        }
    }
}

/// One message per decode task: the batch, and whether it is the run's
/// last (error or end of run).
struct FeedMsg<V> {
    block: io::Result<Vec<(u64, V)>>,
    last: bool,
}

/// The per-run producer state a decode task operates on.  `None` once the
/// run is exhausted or failed.
struct FeedWork<V: SpillValue> {
    reader: RunReader<V>,
    block_bytes: usize,
    tx: SyncSender<FeedMsg<V>>,
    index: usize,
}

/// Batched-backend read-ahead for one run: short-lived decode tasks on
/// the shared I/O workers, **resubmitted on consume** — at most one task
/// per run is ever in flight, and each task sends exactly one message
/// into a capacity-1 channel, so a task never blocks a worker on its
/// output side.  On the input side a decode step may span several read
/// chunks; the claimable-pread discipline in `spillio.rs` services those
/// inline on the decoding worker (and `submit` never blocks on a full
/// queue), so a task cannot wedge the pool waiting on I/O jobs queued
/// behind it — even with merge fan-in at or above the worker count.
/// That is what lets a k-way merge run with `spill_io_workers` threads
/// total where the thread scheduler needed k.
pub(crate) struct BatchedFeed<V: SpillValue> {
    rx: Receiver<FeedMsg<V>>,
    state: Arc<Mutex<Option<FeedWork<V>>>>,
    pool: JobPool,
    done: bool,
}

impl<V: SpillValue> BatchedFeed<V> {
    fn start(pool: JobPool, reader: RunReader<V>, block_bytes: usize, index: usize) -> Self {
        let (tx, rx) = sync_channel::<FeedMsg<V>>(1);
        let state = Arc::new(Mutex::new(Some(FeedWork {
            reader,
            block_bytes,
            tx,
            index,
        })));
        let task_state = Arc::clone(&state);
        pool.submit(Box::new(move || pump_feed(&task_state)));
        Self {
            rx,
            state,
            pool,
            done: false,
        }
    }

    fn recv(&mut self) -> Option<io::Result<Vec<(u64, V)>>> {
        if self.done {
            return None;
        }
        let msg = match self.rx.recv() {
            Ok(msg) => msg,
            Err(_) => {
                // Unreachable by construction (the work state owns the
                // sender until the last message); surface it rather than
                // serving a silently short run.
                self.done = true;
                return Some(Err(io::Error::other("spill prefetch task lost its feed")));
            }
        };
        if msg.last {
            self.done = true;
        } else {
            // Resubmit before handing the batch out, so the next decode
            // overlaps with the consumer working through this one.
            let state = Arc::clone(&self.state);
            self.pool.submit(Box::new(move || pump_feed(&state)));
        }
        match msg.block {
            Ok(block) if block.is_empty() => None, // clean end of run
            other => Some(other),
        }
    }
}

/// One decode step of a [`BatchedFeed`], run on an I/O worker.  A panic
/// inside a value deserializer is converted to an error message (the
/// worker survives; the consumer sees `Some(Err)`).
fn pump_feed<V: SpillValue>(state: &Mutex<Option<FeedWork<V>>>) {
    let mut guard = state.lock().expect("prefetch feed state");
    let Some(work) = guard.as_mut() else { return };
    let _span = obs::span!("prefetch", run = work.index);
    let block_bytes = work.block_bytes;
    let decoded = catch_unwind(AssertUnwindSafe(|| {
        decode_one_block(&mut work.reader, block_bytes)
    }));
    let (msg, keep) = match decoded {
        Ok(Ok((block, end))) => (
            FeedMsg {
                block: Ok(block),
                last: end,
            },
            !end,
        ),
        Ok(Err(e)) => (
            FeedMsg {
                block: Err(e),
                last: true,
            },
            false,
        ),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (
                FeedMsg {
                    block: Err(io::Error::other(format!("spill prefetch panicked: {what}"))),
                    last: true,
                },
                false,
            )
        }
    };
    let tx = work.tx.clone();
    if !keep {
        *guard = None; // drop the reader: the run is finished or failed
    }
    drop(guard);
    // Capacity-1 channel with exactly one task in flight per run: this
    // send never blocks the worker.
    let _ = tx.send(msg);
}

/// Read-ahead stage of the final merge: decodes one spilled run into
/// record batches ahead of the consumer.  Under the `Blocking` backend
/// this is a dedicated thread per run (bounded to one queued batch, so at
/// most ~three are in flight: queued, decoding, being consumed); under
/// `Batched` it is a [`BatchedFeed`] on the shared I/O workers.
///
/// The producer stops when the run is exhausted, on the first read error
/// (which it forwards), or when the consumer hangs up.
pub(crate) struct RunPrefetcher<V: SpillValue> {
    source: PrefetchSource<V>,
}

impl<V: SpillValue> RunPrefetcher<V> {
    /// Opens `run` through `io` (surfacing open-time validation errors
    /// synchronously) and starts the read-ahead producer.  `reader_budget`
    /// is this run's share of the merge read budget, split so the total
    /// stays within the share: half for the underlying buffered reader,
    /// the rest for the decoded batches — of which up to three are alive
    /// at once (one queued, one decoding, one being consumed), hence
    /// sixths.  `index` is the run's position in the merge, used only to
    /// label the prefetcher's trace spans.
    ///
    /// The floors below keep the reader functional without re-inflating a
    /// small share: merges only engage read-ahead when the per-run budget
    /// is at least [`crate::sorter::MIN_PREFETCH_RUN_BUDGET`], so the
    /// splits here stay within the share the caller granted.
    pub fn spawn(
        io: &SpillIoHandle,
        run: &SpilledRun,
        reader_budget: usize,
        index: usize,
    ) -> io::Result<Self> {
        let mut reader: RunReader<V> = RunReader::open(io, run, (reader_budget / 2).max(64))?;
        let block_bytes = (reader_budget / 6).max(64);
        if let Some(pool) = io.pool() {
            let feed = BatchedFeed::start(pool, reader, block_bytes, index);
            return Ok(Self {
                source: PrefetchSource::Batched(feed),
            });
        }
        let (tx, rx) = sync_channel::<io::Result<Vec<(u64, V)>>>(1);
        std::thread::Builder::new()
            .name("pisort-run-prefetch".to_string())
            .spawn(move || {
                // One span covering the prefetcher's whole life: overlap
                // with the consumer's `merge` span is the read-ahead
                // actually running ahead.
                let _run_span = obs::span!("prefetch", run = index);
                loop {
                    match decode_one_block(&mut reader, block_bytes) {
                        Ok((block, end_of_run)) => {
                            if !block.is_empty() && tx.send(Ok(block)).is_err() {
                                return; // consumer hung up (stream dropped early)
                            }
                            if end_of_run {
                                return; // dropping tx signals a clean end of run
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })
            .expect("failed to spawn prefetch thread");
        Ok(Self {
            source: PrefetchSource::Thread(rx),
        })
    }

    /// The batch source the merge cursor pulls from.
    pub fn into_source(self) -> PrefetchSource<V> {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::write_run;
    use std::path::Path;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pisort-pipe-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn bio() -> SpillIoHandle {
        SpillIoHandle::blocking()
    }

    fn read_back(run: &SpilledRun) -> Vec<(u64, u64)> {
        RunReader::<u64>::open(&bio(), run, 4096)
            .unwrap()
            .read_all::<u64>()
            .unwrap()
    }

    #[test]
    fn writes_runs_in_submission_order_and_recycles_buffers() {
        let dir = tmp_dir("order");
        let mut pipe: SpillPipeline<u64, u64> = SpillPipeline::start(
            bio(),
            dir.clone(),
            2,
            "run-p".to_string(),
            SpillCompression::Off,
            SpillRetryPolicy::default(),
        );
        for r in 0..6u64 {
            let run: Vec<(u64, u64)> = (0..100).map(|i| (i, r)).collect();
            pipe.submit(run);
        }
        pipe.flush();
        assert!(pipe.recycled_buffer().is_some(), "pool must recycle");
        let closed = pipe.close();
        assert!(closed.error.is_none());
        assert!(closed.failed.is_empty());
        assert_eq!(closed.completed.len(), 6);
        for (r, run) in closed.completed.iter().enumerate() {
            assert_eq!(run.len, 100);
            let records = read_back(run);
            // The r-th completed run is exactly the r-th submitted run.
            assert!(records.iter().all(|&(_, tag)| tag == r as u64));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_stops_writing_and_stashes_later_runs_in_order() {
        let dir = tmp_dir("err");
        let mut pipe: SpillPipeline<u64, u64> = SpillPipeline::start(
            bio(),
            dir.clone(),
            2,
            "run-p".to_string(),
            SpillCompression::Off,
            SpillRetryPolicy::default(),
        );
        pipe.submit(vec![(1, 0)]);
        pipe.flush();
        // Break the spill directory under the writer: every later write
        // must fail, and no later run may be partially written.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"blocked").unwrap();
        for r in 1..5u64 {
            pipe.submit(vec![(1, r)]);
        }
        pipe.flush();
        assert!(pipe.poll_error().is_some(), "writer error must surface");
        let closed = pipe.close();
        assert_eq!(closed.completed.len(), 1, "only the pre-error run");
        assert_eq!(closed.failed.len(), 4, "every post-error run reclaimed");
        for (i, run) in closed.failed.iter().enumerate() {
            assert_eq!(run[0].1, 1 + i as u64, "stash preserves order");
        }
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn close_surfaces_the_error_when_not_polled() {
        let dir = tmp_dir("close-err");
        let blocked = dir.join("blocked-file");
        std::fs::write(&blocked, b"x").unwrap();
        // Point the pipeline *at a file*: the very first write fails.
        let mut pipe: SpillPipeline<u64, u64> = SpillPipeline::start(
            bio(),
            blocked.clone(),
            1,
            "run-p".to_string(),
            SpillCompression::Off,
            SpillRetryPolicy::default(),
        );
        pipe.submit(vec![(9, 9)]);
        let closed = pipe.close();
        assert!(closed.error.is_some(), "close must never drop the error");
        assert_eq!(closed.failed.len(), 1);
        assert_eq!(closed.failed[0], vec![(9, 9)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetcher_streams_a_run_in_blocks() {
        let dir = tmp_dir("prefetch");
        let path: &Path = &dir.join("run.bin");
        let records: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i * 3)).collect();
        // Both encodings × both backends must stream identical batches.
        for io in [bio(), SpillIoHandle::batched(2, 8)] {
            for compression in [SpillCompression::Off, SpillCompression::DeltaLz] {
                let run = write_run(&io, path, &records, compression).unwrap();
                // A tiny budget forces many small blocks through the channel.
                let mut src = RunPrefetcher::<u64>::spawn(&io, &run, 8 << 10, 0)
                    .unwrap()
                    .into_source();
                let mut got: Vec<(u64, u64)> = Vec::new();
                let mut blocks = 0usize;
                while let Some(block) = src.recv() {
                    got.extend(block.expect("clean run must not error"));
                    blocks += 1;
                }
                assert!(blocks > 5, "expected several blocks, got {blocks}");
                assert_eq!(got, records);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetcher_forwards_read_errors() {
        for io in [bio(), SpillIoHandle::batched(1, 4)] {
            let dir = tmp_dir("prefetch-err");
            let path = dir.join("run.bin");
            let records: Vec<(u64, u64)> = (0..1000u64).map(|i| (i, i)).collect();
            let good = write_run(&io, &path, &records, SpillCompression::Off).unwrap();
            // Lie about the record count: the reader must hit the in-stream
            // guard and the prefetcher must forward it (not hang or panic).
            let run = SpilledRun {
                path,
                len: records.len() + 1,
                bytes: good.bytes + 16,
                raw_bytes: good.raw_bytes + 16,
                compression: SpillCompression::Off,
                retries: 0,
            };
            match RunPrefetcher::<u64>::spawn(&io, &run, 4096, 0) {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
                Ok(p) => {
                    let mut src = p.into_source();
                    let mut saw_error = false;
                    while let Some(block) = src.recv() {
                        if block.is_err() {
                            saw_error = true;
                            break;
                        }
                    }
                    assert!(saw_error, "overcount must surface as a read error");
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
