//! Registry handles for the streaming engines' metrics.
//!
//! One lazily initialized bundle of handles into [`obs::global`], shared
//! by the sorter, the group-by, the spill pipeline, and the prefetchers.
//! Every call site gates on [`obs::enabled`] *before* touching [`m`], so a
//! fully disabled run never registers anything — the first `m()` call is
//! the registration, and it only happens on an enabled path.
//!
//! Metric names are the stable external contract (the benches and the CI
//! smoke validation select by these names):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `stream.records_pushed` | counter | records accepted by the sorter |
//! | `stream.spilled_runs` | counter | sorter runs durable on disk |
//! | `stream.spilled_bytes` | counter | sorter bytes durable on disk |
//! | `stream.sort_ns` | histogram | per-run DovetailSort latency |
//! | `stream.run_fill_pct` | histogram | run occupancy at spill time (budget-share utilization) |
//! | `groupby.records_pushed` | counter | records accepted by the group-by |
//! | `groupby.spilled_runs` | counter | aggregated runs durable on disk |
//! | `groupby.spilled_bytes` | counter | group-by bytes durable on disk |
//! | `groupby.partial_aggregates` | counter | partials produced (spilled + tail) |
//! | `groupby.aggregate_ns` | histogram | per-run semisort + fold latency |
//! | `spill.backpressure_ns` | histogram | producer wait on the full pipeline |
//! | `spill.write_ns` | histogram | per-run write (encode + flush + fsync) |
//! | `spill.fsync_ns` | histogram | per-run flush + `sync_data` alone |
//! | `spill.bytes_written` | counter | bytes through `write_run` (both engines, sync + pipelined; post-compression) |
//! | `spill.raw_bytes` | counter | pre-compression (flat-encoding) bytes through `write_run`; the ratio against `spill.bytes_written` is the compression win |
//! | `spill.queue_depth` | gauge | runs in flight to the writer thread |
//! | `prefetch.refill_ns` | histogram | per-block decode latency (reader thread) |
//! | `prefetch.stall_ns` | histogram | merge-side wait for the next block |
//! | `prefetch.blocks_prefetched` | counter | blocks decoded ahead of the merge |
//! | `prefetch.blocks_consumed` | counter | blocks the merge actually took |
//! | `prefetch.disabled_merges` | counter | merges that wanted read-ahead but ran without it (fan-in above the backend's cap, or per-run budget below `MIN_PREFETCH_RUN_BUDGET`) |
//! | `prefetch.capped_merges` | counter | merges whose read-ahead was disabled *specifically* by the fan-in cap (`MAX_PREFETCH_RUNS` for `Blocking`, the in-flight cap for `Batched`) |
//! | `spillio.jobs` | counter | jobs submitted to the batched I/O workers |
//! | `spillio.queue_depth` | gauge | batched I/O jobs in flight (queued + running) |
//! | `spillio.inline_jobs` | counter | jobs run inline by their submitter because the queue was at depth (submit never blocks) |
//! | `spillio.complete_ns` | histogram | per-job service time on the batched I/O workers |
//! | `spill.retries` | counter | transient spill-I/O failures retried (writes and merge-side reads) |
//! | `spill.degraded_syncs` | counter | synchronous spills performed while pipelining was on probation after a failure |
//! | `fault.injected` | counter | faults injected by an active [`crate::FaultPlan`] (zero outside chaos runs) |

use std::sync::OnceLock;

pub(crate) struct StreamMetrics {
    pub records_pushed: obs::Counter,
    pub spilled_runs: obs::Counter,
    pub spilled_bytes: obs::Counter,
    pub sort_ns: obs::Histogram,
    pub run_fill_pct: obs::Histogram,

    pub gb_records_pushed: obs::Counter,
    pub gb_spilled_runs: obs::Counter,
    pub gb_spilled_bytes: obs::Counter,
    pub gb_partial_aggregates: obs::Counter,
    pub gb_aggregate_ns: obs::Histogram,

    pub backpressure_ns: obs::Histogram,
    pub write_ns: obs::Histogram,
    pub fsync_ns: obs::Histogram,
    pub bytes_written: obs::Counter,
    pub raw_bytes_spilled: obs::Counter,
    pub queue_depth: obs::Gauge,

    pub prefetch_refill_ns: obs::Histogram,
    pub prefetch_stall_ns: obs::Histogram,
    pub blocks_prefetched: obs::Counter,
    pub blocks_consumed: obs::Counter,
    pub prefetch_disabled_merges: obs::Counter,
    pub prefetch_capped_merges: obs::Counter,

    pub spillio_jobs: obs::Counter,
    pub spillio_queue_depth: obs::Gauge,
    pub spillio_inline_jobs: obs::Counter,
    pub spillio_complete_ns: obs::Histogram,

    pub spill_retries: obs::Counter,
    pub degraded_syncs: obs::Counter,
    pub fault_injected: obs::Counter,
}

/// The handle bundle, registered in [`obs::global`] on first use.  Call
/// only from behind an `obs::enabled()` check.
pub(crate) fn m() -> &'static StreamMetrics {
    static METRICS: OnceLock<StreamMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        StreamMetrics {
            records_pushed: reg.counter("stream.records_pushed"),
            spilled_runs: reg.counter("stream.spilled_runs"),
            spilled_bytes: reg.counter("stream.spilled_bytes"),
            sort_ns: reg.histogram("stream.sort_ns"),
            run_fill_pct: reg.histogram("stream.run_fill_pct"),
            gb_records_pushed: reg.counter("groupby.records_pushed"),
            gb_spilled_runs: reg.counter("groupby.spilled_runs"),
            gb_spilled_bytes: reg.counter("groupby.spilled_bytes"),
            gb_partial_aggregates: reg.counter("groupby.partial_aggregates"),
            gb_aggregate_ns: reg.histogram("groupby.aggregate_ns"),
            backpressure_ns: reg.histogram("spill.backpressure_ns"),
            write_ns: reg.histogram("spill.write_ns"),
            fsync_ns: reg.histogram("spill.fsync_ns"),
            bytes_written: reg.counter("spill.bytes_written"),
            raw_bytes_spilled: reg.counter("spill.raw_bytes"),
            queue_depth: reg.gauge("spill.queue_depth"),
            prefetch_refill_ns: reg.histogram("prefetch.refill_ns"),
            prefetch_stall_ns: reg.histogram("prefetch.stall_ns"),
            blocks_prefetched: reg.counter("prefetch.blocks_prefetched"),
            blocks_consumed: reg.counter("prefetch.blocks_consumed"),
            prefetch_disabled_merges: reg.counter("prefetch.disabled_merges"),
            prefetch_capped_merges: reg.counter("prefetch.capped_merges"),
            spillio_jobs: reg.counter("spillio.jobs"),
            spillio_queue_depth: reg.gauge("spillio.queue_depth"),
            spillio_inline_jobs: reg.counter("spillio.inline_jobs"),
            spillio_complete_ns: reg.histogram("spillio.complete_ns"),
            spill_retries: reg.counter("spill.retries"),
            degraded_syncs: reg.counter("spill.degraded_syncs"),
            fault_injected: reg.counter("fault.injected"),
        }
    })
}
