//! The bounded-memory streaming sorter.

use crate::spill::{pod_zeroed, write_run, PodValue, RunReader, SpillSpace, SpilledRun};
use dtsort::{sort_run_pairs_with, IntegerKey, StreamConfig};
use parlay::kway::{kway_merge_into, LoserTree, RunSource};
use std::io;
use std::marker::PhantomData;

/// Counters describing what a [`StreamSorter`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Records accepted by `push` / `push_record` so far.
    pub records_pushed: u64,
    /// Runs spilled to disk so far.
    pub spilled_runs: usize,
    /// Bytes written to spill files so far.
    pub spilled_bytes: u64,
    /// Heavy keys currently carried into the next run's sampling.
    pub carried_heavy_keys: usize,
}

/// A bounded-memory, out-of-core stable sorter over pushed record batches.
///
/// Records are buffered up to the run capacity derived from
/// [`StreamConfig::memory_budget_bytes`]; each full buffer is stably sorted
/// with DovetailSort into a *run* and spilled to disk.  Heavy keys
/// confirmed by one run seed the next run's heavy-key detection
/// ([`dtsort::sort_run_pairs_with`]), so duplicate-dominated streams keep
/// DovetailSort's `O(n)` fast path in every run regardless of how the
/// stream is chunked.  [`StreamSorter::finish`] k-way merges all runs with
/// a loser tree into a sorted iterator; [`StreamSorter::finish_into`]
/// merges in parallel into a caller-provided slice.
///
/// ```
/// use stream::StreamSorter;
/// use dtsort::StreamConfig;
///
/// // A tiny budget forces several spilled runs even for small inputs.
/// let mut sorter: StreamSorter<u32, u32> =
///     StreamSorter::with_config(StreamConfig::with_memory_budget(16 << 10));
/// for batch in 0..10u32 {
///     let records: Vec<(u32, u32)> =
///         (0..1000u32).map(|i| (i.wrapping_mul(2654435761).rotate_left(7), batch * 1000 + i)).collect();
///     sorter.push(&records).unwrap();
/// }
/// let sorted: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
/// assert_eq!(sorted.len(), 10_000);
/// assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
/// ```
pub struct StreamSorter<K: IntegerKey, V: PodValue = ()> {
    cfg: StreamConfig,
    run_capacity: usize,
    buffer: Vec<(K, V)>,
    runs: Vec<SpilledRun>,
    carry: Vec<u64>,
    space: Option<SpillSpace>,
    stats: StreamStats,
}

impl<K: IntegerKey, V: PodValue> Default for StreamSorter<K, V> {
    fn default() -> Self {
        Self::with_config(StreamConfig::default())
    }
}

impl<K: IntegerKey, V: PodValue> StreamSorter<K, V> {
    /// Sorter with the default [`StreamConfig`] (256 MiB budget).
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(cfg: StreamConfig) -> Self {
        let run_capacity = cfg.run_capacity(std::mem::size_of::<(K, V)>());
        Self {
            cfg,
            run_capacity,
            buffer: Vec::new(),
            runs: Vec::new(),
            carry: Vec::new(),
            space: None,
            stats: StreamStats::default(),
        }
    }

    /// Total records accepted so far.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.len).sum::<usize>() + self.buffer.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of runs the final merge will see: spilled runs plus the
    /// in-memory tail, if any records are currently buffered.
    pub fn run_count(&self) -> usize {
        self.runs.len() + usize::from(!self.buffer.is_empty())
    }

    /// Counters (spills, carried heavy keys, ...).
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Heavy keys (ordered-`u64` domain) carried into the next run.
    pub fn carried_heavy_keys(&self) -> &[u64] {
        &self.carry
    }

    /// Appends a batch of records, spilling full runs to disk as needed.
    pub fn push(&mut self, records: &[(K, V)]) -> io::Result<()> {
        let mut rest = records;
        while !rest.is_empty() {
            let space = self.run_capacity - self.buffer.len();
            let take = space.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.run_capacity {
                self.spill_run()?;
            }
        }
        self.stats.records_pushed += records.len() as u64;
        Ok(())
    }

    /// Appends a single record.
    pub fn push_record(&mut self, key: K, value: V) -> io::Result<()> {
        self.push(&[(key, value)])
    }

    /// Sorts the buffered run (seeding detection with the carried heavy
    /// keys) and updates the carry from its report.
    fn sort_buffer(&mut self) {
        let report = sort_run_pairs_with(&mut self.buffer, &self.cfg.sort, &self.carry);
        self.carry = report.heavy_keys;
        self.carry.truncate(self.cfg.max_carried_heavy_keys);
        self.stats.carried_heavy_keys = self.carry.len();
    }

    fn spill_run(&mut self) -> io::Result<()> {
        self.sort_buffer();
        if self.space.is_none() {
            self.space = Some(SpillSpace::create(self.cfg.spill_dir.as_ref())?);
        }
        let dir = &self.space.as_ref().expect("spill space just created").dir;
        let path = dir.join(format!("run-{:06}.bin", self.runs.len()));
        let bytes = write_run(&path, &self.buffer)?;
        self.runs.push(SpilledRun {
            path,
            len: self.buffer.len(),
        });
        self.stats.spilled_runs += 1;
        self.stats.spilled_bytes += bytes;
        self.buffer.clear();
        Ok(())
    }

    /// Read-buffer bytes granted to each spilled run during the merge.
    fn reader_budget(&self) -> usize {
        (self.cfg.merge_read_buffer_bytes / self.runs.len().max(1)).clamp(4096, 8 << 20)
    }

    /// Finishes the sort, returning a streaming sorted iterator.
    ///
    /// The iterator holds one read buffer per spilled run (bounded by
    /// [`StreamConfig::merge_read_buffer_bytes`]) plus the final in-memory
    /// run, so its footprint stays within the configured budget no matter
    /// how large the dataset grew.
    pub fn finish(mut self) -> io::Result<SortedStream<K, V>> {
        self.sort_buffer();
        let total = self.len();
        let reader_budget = self.reader_budget();
        let mut cursors: Vec<RunCursor<V>> = Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            cursors.push(RunCursor::open_disk(run, reader_budget)?);
        }
        if !self.buffer.is_empty() {
            let mem: Vec<(u64, V)> = self
                .buffer
                .drain(..)
                .map(|(k, v)| (k.to_ordered_u64(), v))
                .collect();
            cursors.push(RunCursor::from_memory(mem));
        }
        Ok(SortedStream {
            tree: LoserTree::new(cursors, lt_by_ordered_key::<V>),
            remaining: total,
            _space: self.space.take(),
            _key: PhantomData,
        })
    }

    /// Finishes the sort by merging every run, in parallel, into `out`.
    ///
    /// All runs are loaded back into memory for the parallel merge, so
    /// `out` (which the caller sized to the full dataset) dominates the
    /// footprint.  Use [`StreamSorter::finish`] when the result must not be
    /// materialized.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn finish_into(mut self, out: &mut [(K, V)]) -> io::Result<()> {
        assert_eq!(
            out.len(),
            self.len(),
            "finish_into: output slice must hold exactly the pushed records"
        );
        self.sort_buffer();
        if self.runs.is_empty() {
            out.copy_from_slice(&self.buffer);
            return Ok(());
        }
        let reader_budget = self.reader_budget();
        // Load all spilled runs back in parallel: each run is its own file,
        // so reads are independent and the deserialization fans out across
        // the pool.  Errors are surfaced after the barrier (first one wins).
        let mut results: Vec<io::Result<Vec<(K, V)>>> =
            (0..self.runs.len()).map(|_| Ok(Vec::new())).collect();
        {
            let cell = parlay::slice::UnsafeSliceCell::new(&mut results);
            let runs = &self.runs;
            parlay::par::parallel_for_grained(0, runs.len(), 1, &|i| {
                let res =
                    RunReader::<V>::open(&runs[i], reader_budget).and_then(|mut r| r.read_all());
                unsafe { cell.write(i, res) };
            });
        }
        let mut loaded: Vec<Vec<(K, V)>> = Vec::with_capacity(self.runs.len());
        for res in results {
            loaded.push(res?);
        }
        let mut slices: Vec<&[(K, V)]> = loaded.iter().map(|r| r.as_slice()).collect();
        slices.push(&self.buffer);
        kway_merge_into(&slices, out, &|a: &(K, V), b: &(K, V)| a.0 < b.0);
        Ok(())
    }

    /// [`StreamSorter::finish_into`] allocating the output vector.
    pub fn finish_vec(self) -> io::Result<Vec<(K, V)>> {
        let total = self.len();
        let mut out = vec![(K::from_ordered_u64(0), pod_zeroed::<V>()); total];
        self.finish_into(&mut out)?;
        Ok(out)
    }
}

pub(crate) fn lt_by_ordered_key<V>(a: &(u64, V), b: &(u64, V)) -> bool {
    a.0 < b.0
}

enum CursorInner<V: PodValue> {
    Disk(RunReader<V>),
    Memory(std::vec::IntoIter<(u64, V)>),
}

/// One run's cursor in the final merge ([`parlay::kway::RunSource`]).
/// Shared with the streaming group-by merge ([`crate::groupby`]).
pub(crate) struct RunCursor<V: PodValue> {
    inner: CursorInner<V>,
    current: Option<(u64, V)>,
}

impl<V: PodValue> RunCursor<V> {
    pub(crate) fn open_disk(run: &SpilledRun, buffer_bytes: usize) -> io::Result<Self> {
        let mut reader = RunReader::open(run, buffer_bytes)?;
        let current = reader.next_record()?;
        Ok(Self {
            inner: CursorInner::Disk(reader),
            current,
        })
    }

    pub(crate) fn from_memory(records: Vec<(u64, V)>) -> Self {
        let mut iter = records.into_iter();
        let current = iter.next();
        Self {
            inner: CursorInner::Memory(iter),
            current,
        }
    }
}

impl<V: PodValue> RunSource for RunCursor<V> {
    type Item = (u64, V);

    fn peek(&self) -> Option<&(u64, V)> {
        self.current.as_ref()
    }

    fn pop(&mut self) -> Option<(u64, V)> {
        let item = self.current.take()?;
        self.current = match &mut self.inner {
            CursorInner::Memory(iter) => iter.next(),
            // The merge happens mid-iteration where no Result channel
            // exists; a read failure on a spill file we just wrote is an
            // environment fault, reported by panic (documented on
            // `SortedStream`).
            CursorInner::Disk(reader) => reader
                .next_record()
                .unwrap_or_else(|e| panic!("I/O error reading spilled run: {e}")),
        };
        Some(item)
    }
}

/// Streaming sorted output of a [`StreamSorter`] (ascending, stable).
///
/// Holds the spill directory alive until dropped; the directory and its
/// run files are deleted on drop.  Open/initial-read errors surface from
/// [`StreamSorter::finish`]; an I/O error in the middle of iteration
/// panics (the spill files live in a directory this process just wrote).
pub struct SortedStream<K: IntegerKey, V: PodValue> {
    tree: MergeTree<V>,
    remaining: usize,
    _space: Option<SpillSpace>,
    _key: PhantomData<K>,
}

type MergeTree<V> = LoserTree<RunCursor<V>, fn(&(u64, V), &(u64, V)) -> bool>;

impl<K: IntegerKey, V: PodValue> Iterator for SortedStream<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let (key, value) = self.tree.pop()?;
        self.remaining -= 1;
        Some((K::from_ordered_u64(key), value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K: IntegerKey, V: PodValue> ExactSizeIterator for SortedStream<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    fn tiny_cfg(budget: usize) -> StreamConfig {
        StreamConfig {
            memory_budget_bytes: budget,
            sort: dtsort::SortConfig {
                base_case_threshold: 64,
                ..Default::default()
            },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn in_memory_only_path() {
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::new();
        let input: Vec<(u32, u32)> = vec![(5, 0), (3, 1), (5, 2), (1, 3)];
        sorter.push(&input).unwrap();
        assert_eq!(sorter.len(), 4);
        assert_eq!(sorter.stats().spilled_runs, 0);
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        assert_eq!(got, vec![(1, 3), (3, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn spills_and_merges_more_data_than_budget() {
        let n = 50_000usize;
        let rng = Rng::new(11);
        let input: Vec<(u32, u32)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 1 << 20) as u32, i as u32))
            .collect();
        // 8-byte records, ~2k records per run => ~25 spilled runs.
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_cfg(32 << 10));
        for batch in input.chunks(997) {
            sorter.push(batch).unwrap();
        }
        assert!(
            sorter.stats().spilled_runs > 5,
            "expected spills, got {:?}",
            sorter.stats()
        );
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want, "stable sorted permutation expected");
    }

    #[test]
    fn finish_into_and_finish_vec_match_iterator() {
        let n = 20_000usize;
        let rng = Rng::new(12);
        let input: Vec<(u64, u64)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 500), i as u64))
            .collect();
        let mk = || {
            let mut s: StreamSorter<u64, u64> = StreamSorter::with_config(tiny_cfg(64 << 10));
            s.push(&input).unwrap();
            s
        };
        let via_iter: Vec<(u64, u64)> = mk().finish().unwrap().collect();
        let via_vec = mk().finish_vec().unwrap();
        let mut via_slice = vec![(0u64, 0u64); n];
        mk().finish_into(&mut via_slice).unwrap();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(via_iter, want);
        assert_eq!(via_vec, want);
        assert_eq!(via_slice, want);
    }

    #[test]
    fn heavy_keys_are_carried_across_runs() {
        // 70% of every batch is key 42: after the first spilled run the
        // carry must contain 42's ordered image.
        let rng = Rng::new(13);
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_cfg(64 << 10));
        let mut pushed = 0u32;
        while sorter.stats().spilled_runs < 3 {
            let batch: Vec<(u32, u32)> = (0..1024u32)
                .map(|i| {
                    let k = if rng.ith_f64((pushed + i) as u64) < 0.7 {
                        42
                    } else {
                        rng.ith((pushed + i) as u64) as u32
                    };
                    (k, pushed + i)
                })
                .collect();
            sorter.push(&batch).unwrap();
            pushed += 1024;
        }
        assert!(
            sorter.carried_heavy_keys().contains(&42),
            "carry: {:?}",
            sorter.carried_heavy_keys()
        );
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn unit_values_and_signed_keys() {
        let rng = Rng::new(14);
        let mut sorter: StreamSorter<i64> = StreamSorter::with_config(tiny_cfg(32 << 10));
        let keys: Vec<i64> = (0..30_000).map(|i| rng.ith(i) as i64).collect();
        for k in &keys {
            sorter.push_record(*k, ()).unwrap();
        }
        assert!(sorter.stats().spilled_runs > 0);
        let got: Vec<i64> = sorter.finish().unwrap().map(|(k, ())| k).collect();
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let sorter: StreamSorter<u32, u32> = StreamSorter::new();
        assert!(sorter.is_empty());
        assert_eq!(sorter.finish().unwrap().count(), 0);

        let mut one: StreamSorter<u32, u32> = StreamSorter::new();
        one.push_record(9, 1).unwrap();
        assert_eq!(one.finish_vec().unwrap(), vec![(9, 1)]);
    }

    #[test]
    #[should_panic(expected = "output slice")]
    fn finish_into_length_mismatch_panics() {
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::new();
        sorter.push_record(1, 1).unwrap();
        let mut out = vec![(0u32, 0u32); 5];
        sorter.finish_into(&mut out).unwrap();
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let base = std::env::temp_dir().join(format!("pisort-droptest-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let cfg = StreamConfig {
            spill_dir: Some(base.clone()),
            ..tiny_cfg(16 << 10)
        };
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
        let batch: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i % 100, i)).collect();
        sorter.push(&batch).unwrap();
        assert!(sorter.stats().spilled_runs > 0);
        let stream = sorter.finish().unwrap();
        assert!(std::fs::read_dir(&base).unwrap().count() > 0);
        drop(stream);
        assert_eq!(std::fs::read_dir(&base).unwrap().count(), 0);
        std::fs::remove_dir_all(&base).ok();
    }
}
