//! The bounded-memory streaming sorter.

use crate::pipeline::{PrefetchSource, RunPrefetcher, SpillPipeline};
use crate::spill::{
    per_run_reader_budget, var_payload_bytes, var_payload_should_spill, with_transient_retry,
    wrap_spill_err, write_run_with_retry, PodValue, RunReader, SpillSpace, SpillValue, SpilledRun,
    VarValue,
};
use crate::spillio::SpillIoHandle;
use dtsort::{sort_run_pairs_with, IntegerKey, RunReport, SortConfig, SpillIoMode, StreamConfig};
use parlay::kway::{kway_merge_into, BlockSource, LoserTree, RunSource};
use std::collections::VecDeque;
use std::io;
use std::marker::PhantomData;

/// Above this merge fan-in the read-ahead stage is skipped (one prefetch
/// thread per run would be a thread explosion; the per-run buffer shares
/// are tiny at that point anyway) and the merge reads synchronously.
pub(crate) const MAX_PREFETCH_RUNS: usize = 64;

/// Below this per-run share of [`StreamConfig::merge_read_buffer_bytes`]
/// the read-ahead stage is also skipped: a prefetch thread double-buffers
/// its budget, and at a few hundred bytes per buffer the channel overhead
/// dwarfs the read it hides.  Merges that wanted read-ahead but lost it to
/// either gate bump the `prefetch.disabled_merges` metric and are flagged
/// on the returned stream ([`SortedStream::read_ahead_disabled`]).
pub(crate) const MIN_PREFETCH_RUN_BUDGET: usize = 4096;

/// Counters describing what a [`StreamSorter`] did.
///
/// `records_pushed` and `carried_heavy_keys` are always exact.  With
/// pipelined spilling, `spilled_runs` / `spilled_bytes` count only runs
/// *confirmed durable*, reconciled lazily at each `push`: a run still in
/// flight to the background writer is not yet counted.  [`is_settled`]
/// reports whether that lag currently exists; calling
/// [`StreamSorter::flush_spills`] drains it, after which every counter is
/// exact (and `is_settled` is `true`).
///
/// [`is_settled`]: StreamStats::is_settled
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Records accepted by `push` / `push_record` so far.  Counted per
    /// accepted chunk, so a failed spill mid-push leaves every record the
    /// sorter still owns counted (`records_pushed` always equals
    /// [`StreamSorter::len`]).
    pub records_pushed: u64,
    /// Runs spilled to disk so far.
    pub spilled_runs: usize,
    /// Bytes written to spill files so far (on-disk, post-compression).
    pub spilled_bytes: u64,
    /// Bytes the same runs would have occupied in the uncompressed (flat)
    /// spill encoding.  Equal to `spilled_bytes` when
    /// [`StreamConfig::spill_compression`] is off (up to the flat format's
    /// lack of block headers); the ratio `spilled_bytes /
    /// spilled_raw_bytes` is the on-disk compression win.
    pub spilled_raw_bytes: u64,
    /// Heavy keys currently carried into the next run's sampling.
    pub carried_heavy_keys: usize,
    /// Transient spill-write failures that were retried (and eventually
    /// succeeded) under [`StreamConfig::spill_retry`], across both the
    /// synchronous and the pipelined writer.
    pub spill_retries: u64,
    /// Runs spilled synchronously while pipelining was on probation after
    /// a writer failure.  Stops growing once the probation run count is
    /// served and pipelining resumes.
    pub degraded_syncs: u64,
    /// Whether the spill counters are exact right now: `false` while runs
    /// are in flight to the background spill writer (their bytes are not
    /// yet in `spilled_runs` / `spilled_bytes`), `true` once reconciliation
    /// has caught up.  Always `true` under
    /// [`StreamConfig::synchronous_spill`];
    /// [`StreamSorter::flush_spills`] forces it back to `true`.
    pub is_settled: bool,
}

impl Default for StreamStats {
    fn default() -> Self {
        Self {
            records_pushed: 0,
            spilled_runs: 0,
            spilled_bytes: 0,
            spilled_raw_bytes: 0,
            carried_heavy_keys: 0,
            spill_retries: 0,
            degraded_syncs: 0,
            // Nothing in flight before the first pipelined spill.
            is_settled: true,
        }
    }
}

/// A bounded-memory, out-of-core stable sorter over pushed record batches.
///
/// Records are buffered up to the run capacity derived from
/// [`StreamConfig::memory_budget_bytes`]; each full buffer is stably sorted
/// with DovetailSort into a *run* and spilled to disk.  Heavy keys
/// confirmed by one run seed the next run's heavy-key detection
/// ([`dtsort::sort_run_pairs_with`]), so duplicate-dominated streams keep
/// DovetailSort's `O(n)` fast path in every run regardless of how the
/// stream is chunked.  [`StreamSorter::finish`] k-way merges all runs with
/// a loser tree into a sorted iterator; [`StreamSorter::finish_into`]
/// merges in parallel into a caller-provided slice.
///
/// Values may be fixed-size [`PodValue`]s (spilled as raw byte images) or
/// variable-length [`VarValue`]s such as `String` and `Vec<u8>` (spilled
/// length-prefixed); see [`SpillValue`].  For variable-length values the
/// sorter additionally tracks the buffered payload bytes and spills early
/// once they reach one budget share
/// ([`StreamConfig::spill_shares`]), so a stream of large values cannot
/// overshoot the budget through the record-count heuristic.
///
/// ```
/// use stream::StreamSorter;
/// use dtsort::StreamConfig;
///
/// // A tiny budget forces several spilled runs even for small inputs.
/// let mut sorter: StreamSorter<u32, u32> =
///     StreamSorter::with_config(StreamConfig::with_memory_budget(16 << 10));
/// for batch in 0..10u32 {
///     let records: Vec<(u32, u32)> =
///         (0..1000u32).map(|i| (i.wrapping_mul(2654435761).rotate_left(7), batch * 1000 + i)).collect();
///     sorter.push(&records).unwrap();
/// }
/// let sorted: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
/// assert_eq!(sorted.len(), 10_000);
/// assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
/// ```
pub struct StreamSorter<K: IntegerKey, V: SpillValue = ()> {
    cfg: StreamConfig,
    /// The spill I/O backend every read and write goes through
    /// ([`dtsort::StreamConfig::spill_io`]); possibly shared with sibling
    /// engines by [`StreamSorter::with_config_and_io`].
    io: SpillIoHandle,
    pub(crate) run_capacity: usize,
    buffer: Vec<(K, V)>,
    /// Spilled payload bytes currently buffered (tracked only for
    /// variable-length values; always 0 on the pod path).
    buffered_value_bytes: usize,
    runs: Vec<SpilledRun>,
    /// Sorted runs whose spill write failed, reclaimed with their records
    /// intact (in run order): retried by the next spill, merged from
    /// memory by `finish` otherwise.
    pending_runs: VecDeque<Vec<(K, V)>>,
    /// Records currently in flight to the spill-writer thread.
    in_flight_records: usize,
    /// Runs currently in flight to the spill-writer thread.
    in_flight_runs: usize,
    /// Distinct name counter for synchronously written run files (the
    /// pipelined writer numbers its own `run-p*` namespace).
    sync_run_seq: usize,
    /// `Some(n)` after a writer-side error surfaced: the sorter is on
    /// *probation*, spilling synchronously (the error path converges onto
    /// one code path) until `n` more clean synchronous spills have
    /// succeeded, after which pipelining is re-enabled
    /// ([`dtsort::SpillRetryPolicy::probation_spills`]).  `None` while
    /// pipelining is allowed.
    degraded: Option<u32>,
    /// Runs sorted so far (labels the `sort_run` trace spans).
    runs_sorted: usize,
    /// Pipeline incarnations started so far.  Each gets its own run-file
    /// namespace (`run-p{generation}-NNNNNN.bin`), so a pipeline restarted
    /// after probation cannot collide with a previous incarnation's files.
    pipeline_generation: usize,
    carry: Vec<u64>,
    // Field order matters: the pipeline must drop (joining its writer)
    // before the spill space deletes the directory under it.
    pipeline: Option<SpillPipeline<K, V>>,
    space: Option<SpillSpace>,
    stats: StreamStats,
    /// Scoped obs enable for [`StreamConfig::trace`]; transferred to the
    /// finished stream so recording covers the merge drain too.
    trace_guard: Option<obs::EnableGuard>,
}

impl<K: IntegerKey, V: SpillValue> Default for StreamSorter<K, V> {
    fn default() -> Self {
        Self::with_config(StreamConfig::default())
    }
}

impl<K: IntegerKey, V: SpillValue> StreamSorter<K, V> {
    /// Sorter with the default [`StreamConfig`] (256 MiB budget).
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(cfg: StreamConfig) -> Self {
        let io = SpillIoHandle::from_config(&cfg);
        Self::with_config_and_io(cfg, io)
    }

    /// Like [`StreamSorter::with_config`], but spilling through a
    /// caller-provided I/O backend — this is how a multi-session server
    /// shares one batched worker pool (and its queue-depth budget) across
    /// every engine instead of giving each session its own pool.
    pub fn with_config_and_io(cfg: StreamConfig, io: SpillIoHandle) -> Self {
        // Scoped, not sticky: tracing reverts when this engine (and any
        // stream it returns) is dropped.
        let trace_guard = cfg.trace.then(obs::scoped_enable);
        let run_capacity = cfg.run_capacity(std::mem::size_of::<(K, V)>());
        Self {
            cfg,
            io,
            run_capacity,
            buffer: Vec::new(),
            buffered_value_bytes: 0,
            runs: Vec::new(),
            pending_runs: VecDeque::new(),
            in_flight_records: 0,
            in_flight_runs: 0,
            sync_run_seq: 0,
            degraded: None,
            runs_sorted: 0,
            pipeline_generation: 0,
            carry: Vec::new(),
            pipeline: None,
            space: None,
            stats: StreamStats::default(),
            trace_guard,
        }
    }

    /// Re-reads the budget (which a live [`dtsort::BudgetHandle`] may have
    /// resized since the last check) into the run capacity.  Called on
    /// every push chunk, so a shrunk grant takes effect mid-stream as an
    /// early spill instead of an over-budget buffer.
    fn refresh_run_capacity(&mut self) {
        if self.cfg.budget.is_some() {
            self.run_capacity = self.cfg.run_capacity(std::mem::size_of::<(K, V)>());
        }
    }

    /// Applies the current budget grant immediately: re-reads the
    /// (possibly shrunk) [`dtsort::BudgetHandle`] and spills the buffered
    /// run early if it no longer fits the grant.  `push` re-checks per
    /// chunk anyway; this hook exists for granters (e.g. a memory
    /// governor) reclaiming from a session that is idle between pushes.
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.refresh_run_capacity();
        if self.should_spill() {
            self.spill_run()?;
        }
        Ok(())
    }

    /// Total records accepted so far (buffered, in flight to the writer,
    /// pending retry, or spilled).
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.len).sum::<usize>()
            + self.in_flight_records
            + self.pending_runs.iter().map(|r| r.len()).sum::<usize>()
            + self.buffer.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of runs the final merge will see: spilled runs (including
    /// those still in flight to the writer), runs pending a spill retry,
    /// plus the in-memory tail, if any records are currently buffered.
    pub fn run_count(&self) -> usize {
        self.runs.len()
            + self.in_flight_runs
            + self.pending_runs.len()
            + usize::from(!self.buffer.is_empty())
    }

    /// Counters (spills, carried heavy keys, ...).
    ///
    /// With pipelined spilling, `spilled_runs` / `spilled_bytes` count runs
    /// confirmed durable, reconciled at every `push`;
    /// [`StreamStats::is_settled`] tells whether they are exact right now,
    /// and [`StreamSorter::flush_spills`] makes them exact.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Blocks until every run handed to the background spill writer is
    /// durable on disk, surfacing any writer-side error.  Afterwards
    /// [`StreamSorter::stats`] is exact.  A no-op under
    /// [`StreamConfig::synchronous_spill`].
    pub fn flush_spills(&mut self) -> io::Result<()> {
        if let Some(pipeline) = &self.pipeline {
            pipeline.flush();
        }
        self.reconcile_pipeline()
    }

    /// Heavy keys (ordered-`u64` domain) carried into the next run.
    pub fn carried_heavy_keys(&self) -> &[u64] {
        &self.carry
    }

    fn buffer_needs_spill(&self) -> bool {
        !self.buffer.is_empty()
            && (self.buffer.len() >= self.run_capacity
                || var_payload_should_spill::<V>(
                    self.buffered_value_bytes,
                    self.cfg.effective_budget_bytes(),
                    self.cfg.spill_shares(),
                ))
    }

    fn should_spill(&self) -> bool {
        !self.pending_runs.is_empty() || self.buffer_needs_spill()
    }

    /// Appends a batch of records, spilling full runs to disk as needed.
    ///
    /// On a spill error the sorter still takes ownership of the *whole*
    /// slice before the error surfaces: the un-consumed tail is buffered
    /// (transiently past the run capacity, bounded by the slice length),
    /// so a caller that treats the error as transient and keeps pushing
    /// never loses the records it already handed over.
    pub fn push(&mut self, records: &[(K, V)]) -> io::Result<()> {
        let mut rest = records;
        loop {
            self.refresh_run_capacity();
            if self.should_spill() {
                if let Err(e) = self.spill_run() {
                    // A failed spill parks its run in the pending queue,
                    // but must not cost the caller the rest of the slice:
                    // absorb it, then report.  The next successful spill
                    // drains the excess.
                    self.buffer_chunk(rest);
                    return Err(e);
                }
            }
            if rest.is_empty() {
                return Ok(());
            }
            // A shrunk grant can put the buffer over the new capacity; the
            // saturating space is then 0 and the spill above drains it on
            // the next iteration.
            let space = self.run_capacity.saturating_sub(self.buffer.len());
            let take = space.min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            self.buffer_chunk(chunk);
            rest = tail;
        }
    }

    /// Moves `chunk` into the run buffer, keeping byte and record
    /// accounting exact (`records_pushed == len()` even on error paths).
    fn buffer_chunk(&mut self, chunk: &[(K, V)]) {
        if chunk.is_empty() {
            return;
        }
        self.buffer.extend_from_slice(chunk);
        self.buffered_value_bytes += var_payload_bytes(chunk);
        self.stats.records_pushed += chunk.len() as u64;
        if obs::enabled() {
            crate::metrics::m().records_pushed.add(chunk.len() as u64);
        }
    }

    /// Appends a single record (no clone of the value).
    pub fn push_record(&mut self, key: K, value: V) -> io::Result<()> {
        // Buffer the record *before* any spill attempt: on a spill error
        // the caller's (possibly only) copy of the value is then owned by
        // the sorter rather than dropped on the error return.
        if V::SPILL_FIXED_SIZE.is_none() {
            self.buffered_value_bytes += value.spill_size();
        }
        self.buffer.push((key, value));
        self.stats.records_pushed += 1;
        if obs::enabled() {
            crate::metrics::m().records_pushed.incr();
        }
        self.refresh_run_capacity();
        if self.should_spill() {
            self.spill_run()?;
        }
        Ok(())
    }

    /// Sorts the buffered run (seeding detection with the carried heavy
    /// keys) and updates the carry from its report.
    fn sort_buffer(&mut self) {
        let traced = obs::enabled() && !self.buffer.is_empty();
        let start = traced.then(std::time::Instant::now);
        let report = {
            let _span = traced.then(|| obs::span!("sort_run", run = self.runs_sorted));
            V::sort_spill_run(&mut self.buffer, &self.cfg.sort, &self.carry)
        };
        if let Some(start) = start {
            let metrics = crate::metrics::m();
            metrics.sort_ns.record_duration(start.elapsed());
            metrics
                .run_fill_pct
                .record((self.buffer.len() * 100 / self.run_capacity.max(1)) as u64);
        }
        if !self.buffer.is_empty() {
            self.runs_sorted += 1;
        }
        self.carry = report.heavy_keys;
        self.carry.truncate(self.cfg.max_carried_heavy_keys);
        self.stats.carried_heavy_keys = self.carry.len();
    }

    /// Secures the spill directory, creating it on first use.
    fn ensure_space(&mut self) -> io::Result<()> {
        if self.space.is_none() {
            self.space = Some(SpillSpace::create(self.cfg.spill_dir.as_ref())?);
        }
        Ok(())
    }

    fn spill_run(&mut self) -> io::Result<()> {
        // The directory is secured before the buffer is touched, so a
        // failure here leaves every record buffered (and counted).
        self.ensure_space()?;
        // Runs reclaimed from a failed write are retried first, in run
        // order, so the merge's smaller-index-wins tie rule keeps encoding
        // push order.
        self.retry_pending_runs()?;
        if !self.buffer_needs_spill() {
            return Ok(());
        }
        if self.cfg.synchronous_spill || self.degraded.is_some() {
            self.sort_buffer();
            let run = std::mem::take(&mut self.buffer);
            self.buffered_value_bytes = 0;
            self.write_run_sync(run)
        } else {
            self.spill_run_pipelined()
        }
    }

    /// Retries runs whose earlier spill write failed (synchronously: the
    /// pipeline is torn down by the time pending runs exist).
    fn retry_pending_runs(&mut self) -> io::Result<()> {
        while let Some(run) = self.pending_runs.pop_front() {
            if let Err(e) = self.write_run_sync_inner(&run) {
                self.pending_runs.push_front(run);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Writes one sorted run inline on the calling thread; on failure the
    /// run's records are reclaimed into the pending queue.
    fn write_run_sync(&mut self, run: Vec<(K, V)>) -> io::Result<()> {
        if let Err(e) = self.write_run_sync_inner(&run) {
            self.pending_runs.push_back(run);
            return Err(e);
        }
        Ok(())
    }

    fn write_run_sync_inner(&mut self, run: &[(K, V)]) -> io::Result<()> {
        let dir = &self.space.as_ref().expect("spill space secured").dir;
        let path = dir.join(format!("run-s{:06}.bin", self.sync_run_seq));
        let _span = obs::enabled().then(|| obs::span!("spill_write", run = self.sync_run_seq));
        let spilled = match write_run_with_retry(
            &self.io,
            &path,
            run,
            self.cfg.spill_compression,
            &self.cfg.spill_retry,
        ) {
            Ok(spilled) => spilled,
            Err(e) => {
                std::fs::remove_file(&path).ok();
                let attempted: u64 = run.iter().map(|(_, v)| 8 + v.spill_size() as u64).sum();
                return Err(wrap_spill_err(&path, self.sync_run_seq, attempted, e));
            }
        };
        self.sync_run_seq += 1;
        self.stats.spilled_runs += 1;
        self.stats.spilled_bytes += spilled.bytes;
        self.stats.spilled_raw_bytes += spilled.raw_bytes;
        self.stats.spill_retries += spilled.retries as u64;
        if obs::enabled() {
            let metrics = crate::metrics::m();
            metrics.spilled_runs.incr();
            metrics.spilled_bytes.add(spilled.bytes);
        }
        self.runs.push(spilled);
        self.note_degraded_sync();
        Ok(())
    }

    /// One clean synchronous spill while on probation: count it, and once
    /// [`dtsort::SpillRetryPolicy::probation_spills`] of them have
    /// succeeded, lift the probation so the next spill restarts the
    /// pipeline.  A no-op outside probation (including under
    /// [`StreamConfig::synchronous_spill`], which is a choice, not a
    /// degradation).
    fn note_degraded_sync(&mut self) {
        let Some(left) = self.degraded else { return };
        self.stats.degraded_syncs += 1;
        if obs::enabled() {
            crate::metrics::m().degraded_syncs.incr();
        }
        let left = left.saturating_sub(1);
        self.degraded = (left > 0).then_some(left);
    }

    /// Hands the sorted buffer to the background writer and keeps going
    /// with a recycled buffer: run `N + 1` is sorted while run `N` streams
    /// to disk.
    fn spill_run_pipelined(&mut self) -> io::Result<()> {
        if self.pipeline.is_none() {
            let dir = self
                .space
                .as_ref()
                .expect("spill space secured")
                .dir
                .clone();
            let generation = self.pipeline_generation;
            self.pipeline_generation += 1;
            self.pipeline = Some(SpillPipeline::start(
                self.io.clone(),
                dir,
                self.cfg.spill_pipeline_depth,
                format!("run-p{generation}-"),
                self.cfg.spill_compression,
                self.cfg.spill_retry,
            ));
        }
        self.sort_buffer();
        let pipeline = self.pipeline.as_mut().expect("pipeline just started");
        let replacement = pipeline.recycled_buffer().unwrap_or_default();
        let run = std::mem::replace(&mut self.buffer, replacement);
        self.buffered_value_bytes = 0;
        self.in_flight_records += run.len();
        self.in_flight_runs += 1;
        // The run's bytes will not reach the spill counters until the
        // writer confirms them durable.
        self.stats.is_settled = false;
        pipeline.submit(run); // blocks while the pipeline is at depth
        self.reconcile_pipeline()
    }

    /// Accounts runs the writer has completed and surfaces any writer-side
    /// error; on error the pipeline is torn down, its unwritten runs are
    /// reclaimed as pending, and the sorter falls back to synchronous
    /// spilling.
    fn reconcile_pipeline(&mut self) -> io::Result<()> {
        let (completed, error) = match &self.pipeline {
            None => return Ok(()),
            Some(p) => (p.drain_completed(), p.poll_error()),
        };
        self.account_completed(completed);
        if let Some(e) = error {
            self.teardown_pipeline();
            return Err(e);
        }
        Ok(())
    }

    fn account_completed(&mut self, completed: Vec<SpilledRun>) {
        for run in completed {
            self.in_flight_records -= run.len;
            self.in_flight_runs -= 1;
            self.stats.spilled_runs += 1;
            self.stats.spilled_bytes += run.bytes;
            self.stats.spilled_raw_bytes += run.raw_bytes;
            self.stats.spill_retries += run.retries as u64;
            if obs::enabled() {
                let metrics = crate::metrics::m();
                metrics.spilled_runs.incr();
                metrics.spilled_bytes.add(run.bytes);
            }
            self.runs.push(run);
        }
        if self.in_flight_runs == 0 {
            self.stats.is_settled = true;
        }
    }

    /// Joins the writer, reclaims everything it did not write, and switches
    /// to synchronous spilling.  Returns the writer's error if one was
    /// still unreported.
    fn teardown_pipeline(&mut self) -> Option<io::Error> {
        let pipeline = self.pipeline.take()?;
        let closed = pipeline.close();
        self.account_completed(closed.completed);
        for run in closed.failed {
            self.in_flight_records -= run.len();
            self.in_flight_runs -= 1;
            self.pending_runs.push_back(run);
        }
        // Nothing is in flight any more: completed runs were accounted
        // above and failed ones reclaimed as pending.
        self.stats.is_settled = true;
        // Probation, not a life sentence: spill synchronously until enough
        // clean spills prove the fault was transient, then re-pipeline.
        self.degraded = Some(self.cfg.spill_retry.probation_spills.max(1));
        closed.error
    }

    /// Waits out the spill pipeline before a final merge; a writer error
    /// that never got the chance to surface on a `push` surfaces here.
    fn close_pipeline(&mut self) -> io::Result<()> {
        match self.teardown_pipeline() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Finishes the sort, returning a streaming sorted iterator.
    ///
    /// The iterator holds one read buffer per spilled run (bounded by
    /// [`StreamConfig::merge_read_buffer_bytes`]) plus the final in-memory
    /// run, so its footprint stays within the configured budget no matter
    /// how large the dataset grew.  Unless
    /// [`StreamConfig::synchronous_spill`] is set, each spilled run is
    /// decoded ahead of the merge ([`StreamConfig::merge_read_ahead`]), so
    /// the loser tree pops from prefetched blocks instead of blocking on
    /// cold reads.  Past the backend's fan-in cap (64 runs under
    /// `Blocking`, the in-flight queue depth under `Batched`), or once the
    /// per-run buffer share drops below 4 KiB, read-ahead falls back to
    /// synchronous reads — [`SortedStream::read_ahead_disabled`] and
    /// [`SortedStream::prefetch_capped`] report when that happened.
    pub fn finish(mut self) -> io::Result<SortedStream<K, V>> {
        self.close_pipeline()?;
        self.sort_buffer();
        let total = self.len();
        let (mut cursors, read_ahead_disabled, prefetch_capped) =
            open_run_cursors::<V>(&self.runs, &self.cfg, &self.io)?;
        for run in self.pending_runs.drain(..) {
            let mem: Vec<(u64, V)> = run
                .into_iter()
                .map(|(k, v)| (k.to_ordered_u64(), v))
                .collect();
            cursors.push(RunCursor::from_memory(mem));
        }
        if !self.buffer.is_empty() {
            let mem: Vec<(u64, V)> = self
                .buffer
                .drain(..)
                .map(|(k, v)| (k.to_ordered_u64(), v))
                .collect();
            cursors.push(RunCursor::from_memory(mem));
        }
        Ok(SortedStream {
            tree: LoserTree::new(cursors, V::spill_record_lt),
            remaining: total,
            read_ahead_disabled,
            prefetch_capped,
            // Records the merge phase as one span from here until the
            // stream is dropped, so prefetch spans can be shown (and
            // asserted) to overlap it.
            _merge_span: obs::enabled().then(|| obs::span!("merge")),
            // The scoped enable moves to the stream so the merge drain
            // records too; it reverts when the stream drops.
            _trace: self.trace_guard.take(),
            _space: self.space.take(),
            _key: PhantomData,
        })
    }

    /// Finishes the sort by merging every run, in parallel, into `out`.
    ///
    /// All runs are loaded back into memory for the parallel merge, so
    /// `out` (which the caller sized to the full dataset) dominates the
    /// footprint.  Use [`StreamSorter::finish`] when the result must not be
    /// materialized.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn finish_into(mut self, out: &mut [(K, V)]) -> io::Result<()> {
        assert_eq!(
            out.len(),
            self.len(),
            "finish_into: output slice must hold exactly the pushed records"
        );
        // One merge span over run loading + the parallel merge, matching
        // the span the streaming [`StreamSorter::finish`] path records.
        let _merge_span = obs::enabled().then(|| obs::span!("merge"));
        self.close_pipeline()?;
        self.sort_buffer();
        if self.runs.is_empty() && self.pending_runs.is_empty() {
            for (slot, rec) in out.iter_mut().zip(self.buffer.drain(..)) {
                *slot = rec;
            }
            return Ok(());
        }
        let reader_budget =
            per_run_reader_budget(self.cfg.merge_read_buffer_bytes, self.runs.len());
        // Load all spilled runs back in parallel: each run is its own file,
        // so reads are independent and the deserialization fans out across
        // the pool.  Errors are surfaced after the barrier (first one wins).
        let mut results: Vec<io::Result<Vec<(K, V)>>> =
            (0..self.runs.len()).map(|_| Ok(Vec::new())).collect();
        {
            let cell = parlay::slice::UnsafeSliceCell::new(&mut results);
            let runs = &self.runs;
            let io = &self.io;
            let retry = &self.cfg.spill_retry;
            parlay::par::parallel_for_grained(0, runs.len(), 1, &|i| {
                // Whole-run granularity: a transient read failure anywhere
                // in the run re-opens and re-reads it from the start.
                let res = with_transient_retry(retry, || {
                    RunReader::<V>::open(io, &runs[i], reader_budget).and_then(|mut r| r.read_all())
                })
                .map(|(records, _)| records)
                .map_err(|e| wrap_spill_err(&runs[i].path, i, runs[i].bytes, e));
                unsafe { cell.write(i, res) };
            });
        }
        let mut loaded: Vec<Vec<(K, V)>> =
            Vec::with_capacity(self.runs.len() + self.pending_runs.len());
        for res in results {
            loaded.push(res?);
        }
        // Runs reclaimed from failed writes are already in memory; they
        // follow the disk runs in run order.
        loaded.extend(self.pending_runs.drain(..));
        let tail = std::mem::take(&mut self.buffer);
        V::merge_spill_runs_into(loaded, tail, out);
        Ok(())
    }

    /// [`StreamSorter::finish_into`] allocating the output vector.
    pub fn finish_vec(self) -> io::Result<Vec<(K, V)>> {
        let total = self.len();
        let mut out = vec![(K::from_ordered_u64(0), V::spill_placeholder()); total];
        self.finish_into(&mut out)?;
        Ok(out)
    }
}

/// Pod-path run sort: records move through DovetailSort directly (the
/// pre-variable-length fast path, byte-for-byte).
pub(crate) fn pod_sort_run<K: IntegerKey, V: PodValue>(
    buffer: &mut [(K, V)],
    cfg: &SortConfig,
    carry: &[u64],
) -> RunReport {
    sort_run_pairs_with(buffer, cfg, carry)
}

/// Var-path run sort: DovetailSort moves only `(ordered key, index)` tags;
/// the owned values are permuted once afterwards.  Stable because the sort
/// is stable and tags are unique.  The permutation goes through a
/// transient slot vector (one extra inline-size copy of the run) rather
/// than in-place cycle-following: two straight-line passes beat chased
/// cycles on large runs, and the inline records are a small fraction of a
/// var-length run's footprint.
pub(crate) fn var_sort_run<K: IntegerKey, V: VarValue>(
    buffer: &mut Vec<(K, V)>,
    cfg: &SortConfig,
    carry: &[u64],
) -> RunReport {
    let mut tags: Vec<(u64, u64)> = buffer
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (k.to_ordered_u64(), i as u64))
        .collect();
    let report = sort_run_pairs_with(&mut tags, cfg, carry);
    let mut slots: Vec<Option<(K, V)>> = buffer.drain(..).map(Some).collect();
    buffer.extend(
        tags.iter()
            .map(|&(_, i)| slots[i as usize].take().expect("each slot moved once")),
    );
    report
}

/// Pod-path final merge: the parallel k-way merge over the records
/// themselves (the pre-variable-length fast path, byte-for-byte).
pub(crate) fn pod_merge_runs_into<K: IntegerKey, V: PodValue>(
    runs: Vec<Vec<(K, V)>>,
    tail: Vec<(K, V)>,
    out: &mut [(K, V)],
) {
    let mut slices: Vec<&[(K, V)]> = runs.iter().map(|r| r.as_slice()).collect();
    slices.push(&tail);
    kway_merge_into(&slices, out, &|a: &(K, V), b: &(K, V)| a.0 < b.0);
}

/// Var-path final merge: the parallel k-way merge runs over pod
/// `(ordered key, slot)` tags, then the owned records are gathered by tag.
/// Ties favour earlier runs and slots increase within a run, so stability
/// matches the pod path exactly.
pub(crate) fn var_merge_runs_into<K: IntegerKey, V: VarValue>(
    runs: Vec<Vec<(K, V)>>,
    tail: Vec<(K, V)>,
    out: &mut [(K, V)],
) {
    let mut key_runs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(runs.len() + 1);
    let mut base = 0u64;
    for run in runs.iter().chain(std::iter::once(&tail)) {
        key_runs.push(
            run.iter()
                .enumerate()
                .map(|(i, (k, _))| (k.to_ordered_u64(), base + i as u64))
                .collect(),
        );
        base += run.len() as u64;
    }
    debug_assert_eq!(base as usize, out.len());
    let slices: Vec<&[(u64, u64)]> = key_runs.iter().map(|r| r.as_slice()).collect();
    let mut merged = vec![(0u64, 0u64); out.len()];
    kway_merge_into(&slices, &mut merged, &|a: &(u64, u64), b: &(u64, u64)| {
        a.0 < b.0
    });
    let mut slots: Vec<Option<(K, V)>> = Vec::with_capacity(out.len());
    for run in runs {
        slots.extend(run.into_iter().map(Some));
    }
    slots.extend(tail.into_iter().map(Some));
    for (slot, &(_, tag)) in out.iter_mut().zip(merged.iter()) {
        *slot = slots[tag as usize]
            .take()
            .expect("each record gathered once");
    }
}

/// Opens one merge cursor per spilled run, splitting
/// [`StreamConfig::merge_read_buffer_bytes`] across them.  With read-ahead
/// resolved on ([`StreamConfig::wants_merge_read_ahead`]) and a sane
/// fan-in, each run gets a read-ahead producer decoding blocks ahead of
/// the merge; otherwise the cursors read synchronously.  Shared by the
/// sorter and the group-by so the two merge paths cannot drift.
///
/// Read-ahead is silently a no-op in two regimes, both reported through
/// the returned flags (and the `prefetch.disabled_merges` /
/// `prefetch.capped_merges` metrics) rather than only through slower
/// merges: a fan-in above the backend's cap ([`MAX_PREFETCH_RUNS`] under
/// `Blocking`, where one thread per run would be a thread explosion; the
/// in-flight cap under `Batched`, where more runs than queue slots would
/// starve each other), and a per-run budget share below
/// [`MIN_PREFETCH_RUN_BUDGET`] (the double-buffered blocks would be too
/// small to hide any read latency).  Returns `(cursors,
/// read_ahead_disabled, capped_by_fan_in)`; the second flag covers both
/// regimes, the third specifically the fan-in cap.
pub(crate) fn open_run_cursors<V: SpillValue>(
    runs: &[SpilledRun],
    cfg: &StreamConfig,
    io: &SpillIoHandle,
) -> io::Result<(Vec<RunCursor<V>>, bool, bool)> {
    let reader_budget = per_run_reader_budget(cfg.merge_read_buffer_bytes, runs.len());
    let wants = cfg.wants_merge_read_ahead() && !runs.is_empty();
    let fan_in_cap = match io.mode() {
        SpillIoMode::Blocking => MAX_PREFETCH_RUNS,
        // One in-flight read per run: more runs than queue slots would
        // leave some feeds permanently starved, so cap at the depth.
        SpillIoMode::Batched => io.max_inflight().max(1),
    };
    let capped = wants && runs.len() > fan_in_cap;
    let prefetch = wants && !capped && reader_budget >= MIN_PREFETCH_RUN_BUDGET;
    let read_ahead_disabled = wants && !prefetch;
    if obs::enabled() {
        if read_ahead_disabled {
            crate::metrics::m().prefetch_disabled_merges.incr();
        }
        if capped {
            crate::metrics::m().prefetch_capped_merges.incr();
        }
    }
    let mut cursors: Vec<RunCursor<V>> = Vec::with_capacity(runs.len() + 2);
    if prefetch {
        // Spawn every producer before priming any cursor, so all the
        // first blocks decode in parallel.  Open-time failures (the only
        // ones with a clean retry point) are retried per the policy.
        let prefetchers: Vec<RunPrefetcher<V>> = runs
            .iter()
            .enumerate()
            .map(|(i, run)| {
                with_transient_retry(&cfg.spill_retry, || {
                    RunPrefetcher::spawn(io, run, reader_budget, i)
                })
                .map(|(p, _)| p)
                .map_err(|e| wrap_spill_err(&run.path, i, run.bytes, e))
            })
            .collect::<io::Result<_>>()?;
        for p in prefetchers {
            cursors.push(RunCursor::from_prefetch(p.into_source())?);
        }
    } else {
        for (i, run) in runs.iter().enumerate() {
            let cursor = with_transient_retry(&cfg.spill_retry, || {
                RunCursor::open_disk(io, run, reader_budget)
            })
            .map(|(c, _)| c)
            .map_err(|e| wrap_spill_err(&run.path, i, run.bytes, e))?;
            cursors.push(cursor);
        }
    }
    Ok((cursors, read_ahead_disabled, capped))
}

type Refill<V> = Box<dyn FnMut() -> Option<Vec<(u64, V)>> + Send>;

enum CursorInner<V: SpillValue> {
    Disk(RunReader<V>),
    Memory(std::vec::IntoIter<(u64, V)>),
    Blocks(BlockSource<(u64, V), Refill<V>>),
}

/// One run's cursor in the final merge ([`parlay::kway::RunSource`]).
/// Shared with the streaming group-by merge ([`crate::groupby`]).
pub(crate) struct RunCursor<V: SpillValue> {
    inner: CursorInner<V>,
    current: Option<(u64, V)>,
}

impl<V: SpillValue> RunCursor<V> {
    pub(crate) fn open_disk(
        io: &SpillIoHandle,
        run: &SpilledRun,
        buffer_bytes: usize,
    ) -> io::Result<Self> {
        let mut reader = RunReader::open(io, run, buffer_bytes)?;
        let current = reader.next_record()?;
        Ok(Self {
            inner: CursorInner::Disk(reader),
            current,
        })
    }

    pub(crate) fn from_memory(records: Vec<(u64, V)>) -> Self {
        let mut iter = records.into_iter();
        let current = iter.next();
        Self {
            inner: CursorInner::Memory(iter),
            current,
        }
    }

    /// A cursor fed by a [`RunPrefetcher`]'s batch source.  The first
    /// block is received here, so early read errors surface as a `Result`
    /// exactly like [`RunCursor::open_disk`]'s eager first read; errors in
    /// later blocks panic mid-merge (documented on [`SortedStream`]).
    pub(crate) fn from_prefetch(mut src: PrefetchSource<V>) -> io::Result<Self> {
        let mut first = match src.recv() {
            Some(res) => Some(res?),
            None => None, // empty run
        };
        let refill: Refill<V> = Box::new(move || {
            if let Some(block) = first.take() {
                if obs::enabled() {
                    crate::metrics::m().blocks_consumed.incr();
                }
                return Some(block);
            }
            // The receive is where the merge stalls when the read-ahead
            // is not actually ahead; record the wait so the prefetch
            // stage's effectiveness is measurable.
            let stall_start = obs::enabled().then(std::time::Instant::now);
            let received = src.recv();
            if let Some(start) = stall_start {
                crate::metrics::m()
                    .prefetch_stall_ns
                    .record_duration(start.elapsed());
            }
            match received {
                Some(Ok(block)) => {
                    if obs::enabled() {
                        crate::metrics::m().blocks_consumed.incr();
                    }
                    Some(block)
                }
                Some(Err(e)) => panic!("I/O error reading spilled run: {e}"),
                None => None, // clean end of run
            }
        });
        let mut source = BlockSource::new(refill);
        let current = source.pop();
        Ok(Self {
            inner: CursorInner::Blocks(source),
            current,
        })
    }
}

impl<V: SpillValue> RunSource for RunCursor<V> {
    type Item = (u64, V);

    fn peek(&self) -> Option<&(u64, V)> {
        self.current.as_ref()
    }

    fn pop(&mut self) -> Option<(u64, V)> {
        let item = self.current.take()?;
        self.current = match &mut self.inner {
            CursorInner::Memory(iter) => iter.next(),
            // The merge happens mid-iteration where no Result channel
            // exists; a read failure on a spill file we just wrote is an
            // environment fault, reported by panic (documented on
            // `SortedStream`).
            CursorInner::Disk(reader) => reader
                .next_record()
                .unwrap_or_else(|e| panic!("I/O error reading spilled run: {e}")),
            CursorInner::Blocks(source) => source.pop(),
        };
        Some(item)
    }
}

/// Streaming sorted output of a [`StreamSorter`] (ascending, stable).
///
/// Holds the spill directory alive until dropped; the directory and its
/// run files are deleted on drop.  Open/initial-read errors surface from
/// [`StreamSorter::finish`]; an I/O error in the middle of iteration
/// panics (the spill files live in a directory this process just wrote).
pub struct SortedStream<K: IntegerKey, V: SpillValue> {
    tree: MergeTree<V>,
    remaining: usize,
    read_ahead_disabled: bool,
    prefetch_capped: bool,
    /// Open `merge` trace span; recorded when the stream is dropped.
    _merge_span: Option<obs::SpanGuard>,
    /// Keeps [`StreamConfig::trace`]'s scoped enable alive through the
    /// merge drain (the span above is recorded on drop, while tracing is
    /// still on: [`obs::SpanGuard`] captures its enable state at start).
    _trace: Option<obs::EnableGuard>,
    _space: Option<SpillSpace>,
    _key: PhantomData<K>,
}

type MergeTree<V> = LoserTree<RunCursor<V>, fn(&(u64, V), &(u64, V)) -> bool>;

impl<K: IntegerKey, V: SpillValue> SortedStream<K, V> {
    /// Whether this merge *wanted* read-ahead
    /// ([`StreamConfig::wants_merge_read_ahead`]) but ran synchronously
    /// anyway: the fan-in exceeded the backend's cap (64 runs under
    /// `Blocking`, the in-flight queue depth under `Batched`), or the
    /// per-run share of [`StreamConfig::merge_read_buffer_bytes`] fell
    /// below the 4 KiB floor where double-buffering stops paying.  Also
    /// counted by the `prefetch.disabled_merges` metric.  Widen the read
    /// buffer (or the memory budget, to get fewer, larger runs) to re-arm
    /// the read-ahead.
    pub fn read_ahead_disabled(&self) -> bool {
        self.read_ahead_disabled
    }

    /// Whether read-ahead was disabled *specifically* by the fan-in cap
    /// (the first regime of [`SortedStream::read_ahead_disabled`]; also
    /// counted by the `prefetch.capped_merges` metric).  Under `Batched`,
    /// raise [`StreamConfig::spill_io_queue_depth`] to lift the cap.
    pub fn prefetch_capped(&self) -> bool {
        self.prefetch_capped
    }
}

impl<K: IntegerKey, V: SpillValue> Iterator for SortedStream<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let (key, value) = self.tree.pop()?;
        self.remaining -= 1;
        Some((K::from_ordered_u64(key), value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K: IntegerKey, V: SpillValue> ExactSizeIterator for SortedStream<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;

    fn tiny_cfg(budget: usize) -> StreamConfig {
        StreamConfig {
            memory_budget_bytes: budget,
            // Force the read-ahead merge path so it is exercised even on
            // single-CPU CI hosts (where auto mode would disable it).
            merge_read_ahead: Some(true),
            sort: dtsort::SortConfig {
                base_case_threshold: 64,
                ..Default::default()
            },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn in_memory_only_path() {
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::new();
        let input: Vec<(u32, u32)> = vec![(5, 0), (3, 1), (5, 2), (1, 3)];
        sorter.push(&input).unwrap();
        assert_eq!(sorter.len(), 4);
        assert_eq!(sorter.stats().spilled_runs, 0);
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        assert_eq!(got, vec![(1, 3), (3, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn spills_and_merges_more_data_than_budget() {
        let n = 50_000usize;
        let rng = Rng::new(11);
        let input: Vec<(u32, u32)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 1 << 20) as u32, i as u32))
            .collect();
        // 8-byte records, ~2k records per run => ~25 spilled runs.
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_cfg(32 << 10));
        for batch in input.chunks(997) {
            sorter.push(batch).unwrap();
        }
        assert!(
            sorter.stats().spilled_runs > 5,
            "expected spills, got {:?}",
            sorter.stats()
        );
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want, "stable sorted permutation expected");
    }

    #[test]
    fn finish_into_and_finish_vec_match_iterator() {
        let n = 20_000usize;
        let rng = Rng::new(12);
        let input: Vec<(u64, u64)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 500), i as u64))
            .collect();
        let mk = || {
            let mut s: StreamSorter<u64, u64> = StreamSorter::with_config(tiny_cfg(64 << 10));
            s.push(&input).unwrap();
            s
        };
        let via_iter: Vec<(u64, u64)> = mk().finish().unwrap().collect();
        let via_vec = mk().finish_vec().unwrap();
        let mut via_slice = vec![(0u64, 0u64); n];
        mk().finish_into(&mut via_slice).unwrap();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(via_iter, want);
        assert_eq!(via_vec, want);
        assert_eq!(via_slice, want);
    }

    #[test]
    fn heavy_keys_are_carried_across_runs() {
        // 70% of every batch is key 42: after the first spilled run the
        // carry must contain 42's ordered image.
        let rng = Rng::new(13);
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_cfg(64 << 10));
        let mut pushed = 0u32;
        while sorter.stats().spilled_runs < 3 {
            let batch: Vec<(u32, u32)> = (0..1024u32)
                .map(|i| {
                    let k = if rng.ith_f64((pushed + i) as u64) < 0.7 {
                        42
                    } else {
                        rng.ith((pushed + i) as u64) as u32
                    };
                    (k, pushed + i)
                })
                .collect();
            sorter.push(&batch).unwrap();
            pushed += 1024;
        }
        assert!(
            sorter.carried_heavy_keys().contains(&42),
            "carry: {:?}",
            sorter.carried_heavy_keys()
        );
        let got: Vec<(u32, u32)> = sorter.finish().unwrap().collect();
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn unit_values_and_signed_keys() {
        let rng = Rng::new(14);
        let mut sorter: StreamSorter<i64> = StreamSorter::with_config(tiny_cfg(32 << 10));
        let keys: Vec<i64> = (0..30_000).map(|i| rng.ith(i) as i64).collect();
        for k in &keys {
            sorter.push_record(*k, ()).unwrap();
        }
        assert!(sorter.stats().spilled_runs > 0);
        let got: Vec<i64> = sorter.finish().unwrap().map(|(k, ())| k).collect();
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let sorter: StreamSorter<u32, u32> = StreamSorter::new();
        assert!(sorter.is_empty());
        assert_eq!(sorter.finish().unwrap().count(), 0);

        let mut one: StreamSorter<u32, u32> = StreamSorter::new();
        one.push_record(9, 1).unwrap();
        assert_eq!(one.finish_vec().unwrap(), vec![(9, 1)]);
    }

    #[test]
    #[should_panic(expected = "output slice")]
    fn finish_into_length_mismatch_panics() {
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::new();
        sorter.push_record(1, 1).unwrap();
        let mut out = vec![(0u32, 0u32); 5];
        sorter.finish_into(&mut out).unwrap();
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let base = std::env::temp_dir().join(format!("pisort-droptest-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let cfg = StreamConfig {
            spill_dir: Some(base.clone()),
            ..tiny_cfg(16 << 10)
        };
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
        let batch: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i % 100, i)).collect();
        sorter.push(&batch).unwrap();
        assert!(sorter.stats().spilled_runs > 0);
        let stream = sorter.finish().unwrap();
        assert!(std::fs::read_dir(&base).unwrap().count() > 0);
        drop(stream);
        assert_eq!(std::fs::read_dir(&base).unwrap().count(), 0);
        std::fs::remove_dir_all(&base).ok();
    }

    /// Deterministic variable-length payload embedding the record index.
    fn payload(i: usize) -> String {
        let filler = "abcdefghijklmnop"
            .chars()
            .cycle()
            .take((i * 37) % 120)
            .collect::<String>();
        format!("v{i:06}-{filler}")
    }

    #[test]
    fn string_values_spill_and_merge_stably() {
        let n = 30_000usize;
        let rng = Rng::new(21);
        let input: Vec<(u64, String)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 300), payload(i)))
            .collect();
        let mut sorter: StreamSorter<u64, String> = StreamSorter::with_config(tiny_cfg(64 << 10));
        for chunk in input.chunks(997) {
            sorter.push(chunk).unwrap();
        }
        assert!(
            sorter.stats().spilled_runs > 2,
            "stats: {:?}",
            sorter.stats()
        );
        let got: Vec<(u64, String)> = sorter.finish().unwrap().collect();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want, "stable sorted permutation of string records");
    }

    #[test]
    fn string_finish_paths_agree() {
        let n = 12_000usize;
        let rng = Rng::new(22);
        let input: Vec<(u32, String)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 64) as u32, payload(i)))
            .collect();
        let mk = || {
            let mut s: StreamSorter<u32, String> = StreamSorter::with_config(tiny_cfg(32 << 10));
            s.push(&input).unwrap();
            assert!(s.stats().spilled_runs > 0);
            s
        };
        let via_iter: Vec<(u32, String)> = mk().finish().unwrap().collect();
        let via_vec = mk().finish_vec().unwrap();
        let mut via_slice = vec![(0u32, String::new()); n];
        mk().finish_into(&mut via_slice).unwrap();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(via_iter, want);
        assert_eq!(via_vec, want);
        assert_eq!(via_slice, want);
    }

    #[test]
    fn byte_vec_values_roundtrip_including_empty_and_multi_kb() {
        let rng = Rng::new(23);
        let input: Vec<(u32, Vec<u8>)> = (0..4_000usize)
            .map(|i| {
                let len = match i % 3 {
                    0 => 0,
                    1 => (i * 13) % 200,
                    _ => 2048 + (i % 1024),
                };
                let payload = (0..len).map(|j| (i + j) as u8).collect();
                (rng.ith_in(i as u64, 40) as u32, payload)
            })
            .collect();
        let mut sorter: StreamSorter<u32, Vec<u8>> = StreamSorter::with_config(tiny_cfg(64 << 10));
        sorter.push(&input).unwrap();
        assert!(sorter.stats().spilled_runs > 0);
        let got = sorter.finish_vec().unwrap();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want);
    }

    #[test]
    fn large_var_values_spill_by_bytes_not_record_count() {
        // 100 records fit the record-count capacity comfortably, but their
        // multi-KiB payloads exceed half the budget many times over; the
        // byte tracker must force spills anyway.
        let mut sorter: StreamSorter<u64, String> = StreamSorter::with_config(tiny_cfg(64 << 10));
        assert!(sorter.run_capacity > 100, "premise: count would not spill");
        for i in 0..100u64 {
            sorter.push_record(i % 7, "z".repeat(2 << 10)).unwrap();
        }
        assert!(
            sorter.stats().spilled_runs > 3,
            "payload bytes must trigger spills: {:?}",
            sorter.stats()
        );
        let got = sorter.finish_vec().unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn records_pushed_counts_accepted_records_when_spill_fails() {
        // Point the spill directory below a regular *file*: creating the
        // unique spill subdirectory fails, so the first spill errors out.
        let base = std::env::temp_dir().join(format!("pisort-failtest-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let blocker = base.join("not-a-directory");
        std::fs::write(&blocker, b"x").unwrap();
        let cfg = StreamConfig {
            spill_dir: Some(blocker.clone()),
            ..tiny_cfg(16 << 10)
        };
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
        let batch: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i, i)).collect();
        let err = sorter
            .push(&batch)
            .expect_err("spill into a file must fail");
        assert_ne!(err.kind(), io::ErrorKind::NotFound);
        // Regression (stats drift): every record the sorter still owns is
        // counted, even though the batch failed part-way.
        assert!(sorter.stats().records_pushed > 0);
        assert_eq!(
            sorter.stats().records_pushed,
            sorter.len() as u64,
            "records_pushed must track exactly the records the sorter holds"
        );
        assert_eq!(sorter.stats().spilled_runs, 0);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn flush_spills_makes_stats_exact() {
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_cfg(32 << 10));
        let batch: Vec<(u32, u32)> = (0..40_000u32).map(|i| (i.rotate_left(16), i)).collect();
        sorter.push(&batch).unwrap();
        sorter.flush_spills().unwrap();
        // After a flush nothing is in flight: every spilled run is durable
        // and counted, and the byte meter matches the files on disk.
        assert_eq!(sorter.in_flight_records, 0);
        assert_eq!(sorter.in_flight_runs, 0);
        let on_disk: u64 = sorter.runs.iter().map(|r| r.bytes).sum();
        assert_eq!(sorter.stats().spilled_bytes, on_disk);
        assert_eq!(sorter.stats().spilled_runs, sorter.runs.len());
        for run in &sorter.runs {
            assert_eq!(std::fs::metadata(&run.path).unwrap().len(), run.bytes);
        }
        let got = sorter.finish_vec().unwrap();
        let mut want = batch;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want);
    }

    #[test]
    fn budget_shrink_is_respected_by_every_later_push() {
        // Regression (governor reclaim): `run_capacity` was read once at
        // construction, so shrinking a live grant changed nothing.  Now a
        // [`dtsort::BudgetHandle`] shrink must take effect on the next
        // chunk: buffered + in-flight bytes never exceed the current
        // grant once the pre-shrink backlog drains.
        let handle = dtsort::BudgetHandle::new(64 << 10);
        let cfg = StreamConfig {
            merge_read_ahead: Some(true),
            sort: dtsort::SortConfig {
                base_case_threshold: 64,
                ..Default::default()
            },
            ..StreamConfig::with_budget_handle(handle.clone())
        };
        let record_size = std::mem::size_of::<(u64, u64)>();
        let mut sorter: StreamSorter<u64, u64> = StreamSorter::with_config(cfg);
        let initial_capacity = sorter.run_capacity;
        let rng = Rng::new(31);
        let mut pushed: Vec<(u64, u64)> = Vec::new();
        for step in 0..40usize {
            if step == 15 {
                // The governor reclaims 7/8 of the grant from a live
                // session: the hook spills early rather than erroring,
                // and the old in-flight backlog is drained right here.
                handle.set(8 << 10);
                sorter.shrink_to_budget().unwrap();
                sorter.flush_spills().unwrap();
                assert!(
                    sorter.run_capacity < initial_capacity,
                    "capacity must track the shrunk grant"
                );
            }
            let batch: Vec<(u64, u64)> = (0..512u64)
                .map(|i| {
                    let tag = (step as u64) * 512 + i;
                    (rng.ith(tag), tag)
                })
                .collect();
            pushed.extend_from_slice(&batch);
            sorter.push(&batch).unwrap();
            if step >= 15 {
                let held_bytes = (sorter.buffer.len() + sorter.in_flight_records) * record_size;
                assert!(
                    held_bytes <= handle.get(),
                    "step {step}: {held_bytes} held bytes exceed the \
                     {} byte grant",
                    handle.get()
                );
            }
        }
        let got = sorter.finish_vec().unwrap();
        let mut want = pushed;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want, "shrink must not perturb the sorted output");
    }

    #[test]
    fn concurrent_sorters_in_one_process_use_distinct_spill_dirs() {
        // Regression (spill-dir collision): the spill directory name was
        // derived from the pid alone, so two live sorters in one process
        // shared a directory and `remove_dir_all` on one stream's drop
        // deleted the other's runs mid-merge.
        let mk = |seed: u64| {
            let s: StreamSorter<u32, u32> = StreamSorter::with_config(tiny_cfg(16 << 10));
            let rng = Rng::new(seed);
            let input: Vec<(u32, u32)> = (0..20_000usize)
                .map(|i| (rng.ith(i as u64) as u32, i as u32))
                .collect();
            // Interleave pushes so both spill spaces are live at once.
            (s, input)
        };
        let (mut a, input_a) = mk(41);
        let (mut b, input_b) = mk(42);
        for (ca, cb) in input_a.chunks(997).zip(input_b.chunks(997)) {
            a.push(ca).unwrap();
            b.push(cb).unwrap();
        }
        assert!(a.stats().spilled_runs > 0 && b.stats().spilled_runs > 0);
        let dir_a = a.space.as_ref().unwrap().dir.clone();
        let dir_b = b.space.as_ref().unwrap().dir.clone();
        assert_ne!(dir_a, dir_b, "two live sorters must not share a dir");
        // Dropping one sorter's finished stream (deleting its directory)
        // must leave the other's runs readable.
        let got_a: Vec<(u32, u32)> = a.finish().unwrap().collect();
        assert!(!dir_a.exists(), "finished stream cleans its own dir");
        assert!(dir_b.exists(), "the sibling's dir must survive");
        let got_b: Vec<(u32, u32)> = b.finish().unwrap().collect();
        let sort = |mut v: Vec<(u32, u32)>| {
            v.sort_by_key(|r| r.0);
            v
        };
        assert_eq!(got_a, sort(input_a));
        assert_eq!(got_b, sort(input_b));
    }

    // -----------------------------------------------------------------
    // Failure injection: a value whose serializer panics after a chosen
    // number of writes, modelling a mid-spill crash.
    // -----------------------------------------------------------------

    use crate::spill::sealed::Sealed;
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    /// A var-length value that panics inside `spill_write` when its shared
    /// fuse counts down to zero (exactly once).
    #[derive(Debug, Clone)]
    struct Grenade {
        fuse: Arc<AtomicI64>,
        payload: Vec<u8>,
    }

    impl Grenade {
        fn new(fuse: &Arc<AtomicI64>, i: u64) -> Self {
            Self {
                fuse: Arc::clone(fuse),
                payload: format!("payload-{i:06}-{}", "g".repeat((i as usize * 11) % 64))
                    .into_bytes(),
            }
        }
    }

    impl VarValue for Grenade {
        fn as_spill_bytes(&self) -> &[u8] {
            &self.payload
        }
        fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
            Ok(Self {
                fuse: Arc::new(AtomicI64::new(i64::MAX)),
                payload: bytes.to_vec(),
            })
        }
    }

    impl Sealed for Grenade {}
    impl SpillValue for Grenade {
        const SPILL_FIXED_SIZE: Option<usize> = None;
        fn spill_size(&self) -> usize {
            4 + self.payload.len()
        }
        fn spill_write(&self, w: &mut dyn Write) -> io::Result<()> {
            if self.fuse.fetch_sub(1, Ordering::SeqCst) == 1 {
                panic!("injected spill-write failure");
            }
            self.payload.spill_write(w)
        }
        fn spill_read(
            r: &mut dyn Read,
            scratch: &mut Vec<u8>,
            payload_budget: u64,
        ) -> io::Result<Self> {
            Vec::<u8>::spill_read(r, scratch, payload_budget).map(|payload| Self {
                fuse: Arc::new(AtomicI64::new(i64::MAX)),
                payload,
            })
        }
        fn spill_placeholder() -> Self {
            Self {
                fuse: Arc::new(AtomicI64::new(i64::MAX)),
                payload: Vec::new(),
            }
        }
        fn sort_spill_run<K: IntegerKey>(
            buffer: &mut Vec<(K, Self)>,
            cfg: &SortConfig,
            carry: &[u64],
        ) -> RunReport {
            var_sort_run(buffer, cfg, carry)
        }
        fn merge_spill_runs_into<K: IntegerKey>(
            runs: Vec<Vec<(K, Self)>>,
            tail: Vec<(K, Self)>,
            out: &mut [(K, Self)],
        ) {
            var_merge_runs_into(runs, tail, out)
        }
    }

    #[test]
    fn panic_mid_spill_leaves_every_recorded_run_complete_on_disk() {
        // Synchronous mode: the injected panic unwinds straight through
        // `write_run`'s `BufWriter`, the classic silent-truncation shape.
        // The invariant under test: a run the sorter *recorded* as spilled
        // is fully on disk — only the never-recorded run may be partial.
        let cfg = StreamConfig {
            synchronous_spill: true,
            ..tiny_cfg(16 << 10)
        };
        let mut sorter: StreamSorter<u64, Grenade> = StreamSorter::with_config(cfg);
        let capacity = sorter.run_capacity;
        // Detonate in the middle of the second run's write.
        let fuse = Arc::new(AtomicI64::new(capacity as i64 + (capacity / 2) as i64));
        let n = 4 * capacity;
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..n as u64 {
                sorter.push_record(i % 97, Grenade::new(&fuse, i)).unwrap();
            }
        }))
        .is_err();
        assert!(panicked, "the fuse must have gone off mid-write");
        assert_eq!(sorter.stats().spilled_runs, 1, "one run recorded");
        assert_eq!(sorter.runs.len(), 1);
        // The recorded run reads back completely — byte size, record count
        // and payloads all intact.
        let run = &sorter.runs[0];
        assert_eq!(std::fs::metadata(&run.path).unwrap().len(), run.bytes);
        let records: Vec<(u64, Grenade)> =
            RunReader::<Grenade>::open(&SpillIoHandle::blocking(), run, 4096)
                .unwrap()
                .read_all()
                .unwrap();
        assert_eq!(records.len(), run.len);
        assert!(records
            .iter()
            .all(|(_, g)| g.payload.starts_with(b"payload-")));
        // The panicking run's file is the partial one: it was never
        // recorded, and its truncation is visible on disk.
        let dir = run.path.parent().unwrap();
        let partial = dir.join("run-s000001.bin");
        assert!(partial.exists(), "the interrupted write left a file");
        let complete_run_bytes = run.bytes;
        assert!(
            std::fs::metadata(&partial).unwrap().len() < complete_run_bytes,
            "the unrecorded file must be visibly incomplete"
        );
    }

    #[test]
    fn writer_thread_panic_surfaces_as_error_and_loses_no_records() {
        // Pipelined mode: the same injected panic happens on the writer
        // thread, where it must convert to an io::Error surfaced by a
        // later push or by finish — never a hang — and the failed run's
        // records must still come out of the final merge.
        let mut sorter: StreamSorter<u64, Grenade> = StreamSorter::with_config(tiny_cfg(16 << 10));
        let capacity = sorter.run_capacity;
        let fuse = Arc::new(AtomicI64::new(capacity as i64 + (capacity / 2) as i64));
        let n = 6 * capacity;
        let mut input: Vec<(u64, Grenade)> = Vec::new();
        let mut saw_error = false;
        for i in 0..n as u64 {
            let record = (i % 89, Grenade::new(&fuse, i));
            input.push(record.clone());
            match sorter.push_record(record.0, record.1) {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.to_string().contains("panicked"), "unexpected error: {e}");
                    // At the moment the error surfaces, the failed run's
                    // records are reclaimed, none are lost in flight, and
                    // the sorter has fallen back to synchronous spilling
                    // (which will retry the reclaimed runs).
                    assert!(!sorter.pending_runs.is_empty(), "records reclaimed");
                    assert_eq!(sorter.in_flight_records, 0);
                    assert!(sorter.degraded.is_some(), "probation engaged");
                    saw_error = true;
                }
            }
        }
        assert!(saw_error, "the writer panic must surface on a push");
        // The fuse only fires once, so the sorter (now in synchronous
        // fallback) finishes the sort with zero data loss.
        let got = sorter.finish_vec().unwrap();
        assert_eq!(got.len(), input.len());
        let mut want = input;
        want.sort_by_key(|r| r.0);
        let got_payloads: Vec<&[u8]> = got.iter().map(|(_, g)| g.payload.as_slice()).collect();
        let want_payloads: Vec<&[u8]> = want.iter().map(|(_, g)| g.payload.as_slice()).collect();
        assert_eq!(got_payloads, want_payloads, "stable, lossless recovery");
    }

    // -----------------------------------------------------------------
    // Batched spill-I/O backend: fan-in capping, failure injection.
    // -----------------------------------------------------------------

    fn batched_cfg(budget: usize, workers: usize, depth: usize) -> StreamConfig {
        StreamConfig {
            spill_io: SpillIoMode::Batched,
            spill_io_workers: workers,
            spill_io_queue_depth: depth,
            ..tiny_cfg(budget)
        }
    }

    #[test]
    fn batched_backend_merges_correctly_and_caps_fan_in_at_the_queue_depth() {
        let rng = Rng::new(51);
        let input: Vec<(u32, u32)> = (0..50_000usize)
            .map(|i| (rng.ith(i as u64) as u32, i as u32))
            .collect();
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);
        // Ample queue depth: the merge read-ahead runs as batched feeds on
        // the shared workers, and the output matches the reference sort.
        let mut roomy: StreamSorter<u32, u32> =
            StreamSorter::with_config(batched_cfg(32 << 10, 2, 64));
        for chunk in input.chunks(997) {
            roomy.push(chunk).unwrap();
        }
        assert!(roomy.stats().spilled_runs > 5);
        let stream = roomy.finish().unwrap();
        assert!(!stream.prefetch_capped(), "fan-in fits the queue depth");
        let got: Vec<(u32, u32)> = stream.collect();
        assert_eq!(got, want);
        // Queue depth below the fan-in: read-ahead must be disabled (no
        // starved feeds), reported through both flags, output unchanged.
        let mut narrow: StreamSorter<u32, u32> =
            StreamSorter::with_config(batched_cfg(32 << 10, 1, 2));
        for chunk in input.chunks(997) {
            narrow.push(chunk).unwrap();
        }
        assert!(narrow.stats().spilled_runs > 2);
        let stream = narrow.finish().unwrap();
        assert!(stream.prefetch_capped(), "fan-in above the in-flight cap");
        assert!(stream.read_ahead_disabled());
        let got: Vec<(u32, u32)> = stream.collect();
        assert_eq!(got, want);
    }

    #[test]
    fn batched_short_write_surfaces_on_push_and_loses_no_records() {
        // An injected short write (the full-disk shape) under the batched
        // backend: the failing spill surfaces on a push, the run's records
        // are reclaimed, and the final merge loses nothing.
        let cfg = StreamConfig {
            synchronous_spill: true,
            ..batched_cfg(16 << 10, 2, 8)
        };
        let io = SpillIoHandle::batched(2, 8);
        let mut sorter: StreamSorter<u64, u64> = StreamSorter::with_config_and_io(cfg, io.clone());
        let capacity = sorter.run_capacity;
        let run_bytes = (capacity * 16) as u64; // flat: 8B key + 8B value
        io.inject_write_failure_after(run_bytes + run_bytes / 2);
        let n = 4 * capacity;
        let input: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 101, i)).collect();
        let mut saw_error = false;
        for &(k, v) in &input {
            if let Err(e) = sorter.push_record(k, v) {
                assert!(e.to_string().contains("injected"), "unexpected: {e}");
                saw_error = true;
            }
        }
        assert!(saw_error, "the fused write must surface on a push");
        assert_eq!(
            sorter.stats().records_pushed,
            sorter.len() as u64,
            "every accepted record stays owned and counted"
        );
        // The fuse stays blown, so later retries keep failing — but the
        // merge reads the durable run and serves the reclaimed ones from
        // memory: zero loss.
        let got = sorter.finish_vec().unwrap();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want, "stable, lossless recovery after short write");
    }

    #[test]
    fn probation_reenables_pipelining_after_clean_sync_spills() {
        // A writer failure no longer demotes the sorter to synchronous
        // spilling forever: after `probation_spills` clean synchronous
        // spills the pipeline restarts, and `degraded_syncs` stops
        // growing — the observable signature of a served probation.
        let cfg = batched_cfg(16 << 10, 2, 8);
        let io = SpillIoHandle::batched(2, 8);
        let mut sorter: StreamSorter<u64, u64> = StreamSorter::with_config_and_io(cfg, io.clone());
        let capacity = sorter.run_capacity;
        let run_bytes = (capacity * 16) as u64; // flat: 8B key + 8B value
        io.inject_write_failure_after(run_bytes + run_bytes / 2);
        let n = 24 * capacity;
        let input: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 101, i)).collect();
        let mut saw_error = false;
        for &(k, v) in &input {
            match sorter.push_record(k, v) {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.to_string().contains("injected"), "unexpected: {e}");
                    assert!(sorter.degraded.is_some(), "probation engaged");
                    saw_error = true;
                    // Heal the disk: the fault was transient after all.
                    io.clear_write_failures();
                }
            }
        }
        assert!(saw_error, "the fused write must surface on a push");
        let probation = sorter.cfg.spill_retry.probation_spills as u64;
        assert_eq!(
            sorter.stats().degraded_syncs,
            probation,
            "probation served exactly once, then degraded counting stopped"
        );
        assert!(sorter.degraded.is_none(), "probation lifted");
        assert!(
            sorter.pipeline.is_some(),
            "pipelining resumed after probation"
        );
        let got = sorter.finish_vec().unwrap();
        let mut want = input;
        want.sort_by_key(|r| r.0);
        assert_eq!(got, want, "lossless through failure, probation, resume");
    }

    #[test]
    fn batched_writer_panic_surfaces_as_error_and_loses_no_records() {
        // The Grenade detonates inside the spill-writer thread while it is
        // streaming into the batched backend: same error contract as the
        // blocking run of this scenario above.
        let mut sorter: StreamSorter<u64, Grenade> =
            StreamSorter::with_config(batched_cfg(16 << 10, 2, 8));
        let capacity = sorter.run_capacity;
        let fuse = Arc::new(AtomicI64::new(capacity as i64 + (capacity / 2) as i64));
        let n = 6 * capacity;
        let mut input: Vec<(u64, Grenade)> = Vec::new();
        let mut saw_error = false;
        for i in 0..n as u64 {
            let record = (i % 89, Grenade::new(&fuse, i));
            input.push(record.clone());
            match sorter.push_record(record.0, record.1) {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.to_string().contains("panicked"), "unexpected error: {e}");
                    assert_eq!(sorter.in_flight_records, 0);
                    assert!(sorter.degraded.is_some(), "probation engaged");
                    saw_error = true;
                }
            }
        }
        assert!(saw_error, "the writer panic must surface on a push");
        let got = sorter.finish_vec().unwrap();
        assert_eq!(got.len(), input.len());
        let mut want = input;
        want.sort_by_key(|r| r.0);
        let got_payloads: Vec<&[u8]> = got.iter().map(|(_, g)| g.payload.as_slice()).collect();
        let want_payloads: Vec<&[u8]> = want.iter().map(|(_, g)| g.payload.as_slice()).collect();
        assert_eq!(got_payloads, want_payloads, "stable, lossless recovery");
    }

    #[test]
    fn batched_deltalz_merge_survives_fan_in_above_the_worker_count() {
        // Regression for a pool deadlock: batched decode tasks run on the
        // same bounded workers as the preads they wait on, and with a
        // merge read buffer this tight every DeltaLz block decode spans
        // several read chunks, so each task needs preads submitted
        // mid-task.  With fan-in above the worker count, every worker
        // could once block on a queued pread no worker was free to run —
        // the claimable-pread discipline must service them inline and
        // finish the merge.
        let cfg = StreamConfig {
            spill_compression: dtsort::SpillCompression::DeltaLz,
            merge_read_buffer_bytes: 128 << 10,
            ..batched_cfg(32 << 10, 2, 32)
        };
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
        let rng = Rng::new(87);
        let input: Vec<(u32, u32)> = (0..30_000usize)
            .map(|i| (rng.ith(i as u64) as u32, i as u32))
            .collect();
        for chunk in input.chunks(997) {
            sorter.push(chunk).unwrap();
        }
        assert!(
            sorter.stats().spilled_runs > 2,
            "the deadlock regime needs fan-in above the 2 workers, got {}",
            sorter.stats().spilled_runs
        );
        let stream = sorter.finish().unwrap();
        assert!(
            !stream.read_ahead_disabled(),
            "the deadlock regime needs engaged read-ahead (widen the read buffer?)"
        );
        let mut want = input.clone();
        want.sort_by_key(|r| r.0);
        let got: Vec<(u32, u32)> = stream.collect();
        assert_eq!(got, want);
    }

    #[test]
    fn batched_merge_surfaces_a_corrupted_block_checksum() {
        // Bit rot between spill and merge, read back through the batched
        // feeds: the block CRC must turn it into an error, never silently
        // wrong output.
        let cfg = StreamConfig {
            spill_compression: dtsort::SpillCompression::DeltaLz,
            ..batched_cfg(32 << 10, 2, 64)
        };
        let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
        let batch: Vec<(u32, u32)> = (0..30_000u32).map(|i| (i.rotate_left(13), i)).collect();
        sorter.push(&batch).unwrap();
        sorter.flush_spills().unwrap();
        assert!(sorter.stats().spilled_runs > 0);
        let victim = sorter.runs[0].path.clone();
        let mut bytes = std::fs::read(&victim).unwrap();
        *bytes.last_mut().unwrap() ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sorter.finish().map(|s| s.count())
        }));
        let message = match outcome {
            Ok(Ok(_)) => panic!("corrupted run must not merge cleanly"),
            Ok(Err(e)) => e.to_string(),
            Err(panic) => panic
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".to_string()),
        };
        assert!(
            message.contains("checksum"),
            "corruption must be named a checksum failure, got: {message}"
        );
    }
}
