//! # stream — bounded-memory, out-of-core sorting on top of DovetailSort
//!
//! The core `dtsort` crate sorts fully in-memory slices.  This crate opens
//! the two scenario families the in-memory API cannot serve:
//!
//! * **Larger-than-memory inputs** — datasets that exceed the configured
//!   memory budget are sorted with the classic external-sort shape:
//!   sorted *runs* are spilled to disk and k-way merged at the end.
//! * **Pipelined ingestion** — records arrive as pushed batches (network
//!   shards, log segments, generator output) and the sorter overlaps
//!   run-sorting with ingestion instead of requiring the full dataset up
//!   front.
//!
//! ## How it works
//!
//! [`StreamSorter`] buffers pushed records up to the run capacity derived
//! from [`dtsort::StreamConfig::memory_budget_bytes`], which is split
//! into equal shares ([`dtsort::StreamConfig::spill_shares`]): one
//! buffers records, one is DovetailSort's ping-pong scratch, and one per
//! unit of pipeline depth pays for runs in flight to the spill writer.
//! Each full buffer is stably sorted with the paper's DovetailSort and
//! written to a spill file; the final partial buffer stays in memory.
//! [`StreamSorter::finish`] merges all runs with a tournament loser tree
//! ([`parlay::kway::LoserTree`]) behind a streaming iterator whose
//! footprint stays within the budget, while [`StreamSorter::finish_into`]
//! uses the parallel k-way merge ([`parlay::kway::kway_merge_into`]) when
//! the caller wants the result materialized in a slice.  Both merges break
//! ties toward earlier runs, so the end-to-end sort is **stable** with
//! respect to push order.
//!
//! ## Heavy-key carry-over and the dovetail merge
//!
//! DovetailSort's `O(n)` behaviour on duplicate-dominated inputs comes
//! from *heavy keys*: sampling detects keys with `Ω(n/2^γ)` occurrences,
//! each heavy key gets a dedicated bucket that skips all further radix
//! recursion, and the *dovetail merge* re-interleaves those buckets with
//! the sorted light records.  Chunking a stream into runs would normally
//! re-randomize that detection per run — a key that is heavy over the
//! whole stream but borderline within one run might be missed, sending
//! its records down the full radix recursion of that run.
//!
//! The streaming sorter closes this gap by **carrying heavy keys across
//! runs** ([`dtsort::sort_run_pairs_with`]): the heavy keys confirmed by
//! run `i`'s bucket counts are injected into run `i+1`'s root sampling, so
//! a stream-wide heavy key is dovetailed in *every* subsequent run, paying
//! `O(1)` per record from the second run on.  Carried keys that have
//! fallen light are dropped by the per-run confirmation (bucket count
//! below `n/2^{γ+2}`), so a drifting key distribution cannot bloat the
//! bucket table.  The dovetail merge itself is unchanged — carried keys
//! enter it exactly as natively sampled heavy keys do — and the final
//! k-way merge sees one sorted sequence per run, so heavy records cost
//! `log(runs)` comparisons there like everything else.
//!
//! ## Pipelined spill I/O
//!
//! Spilling is pipelined by default (the crate-private `pipeline`
//! module): each
//! sorted run is handed to a dedicated **writer thread** through a
//! bounded channel, so run `N + 1` sorts while run `N` streams to disk
//! (fsync included — a run recorded as spilled is durably on disk), and
//! the final merge **reads ahead** of the loser tree with one block
//! prefetcher per spilled run.  The memory budget is split into *spill
//! shares* ([`dtsort::StreamConfig::spill_shares`]) so in-flight runs are
//! paid for out of the same budget; the bounded channel is the
//! backpressure.  Writer-side errors surface on the next `push` or on
//! `finish` — never dropped, never a hang — with the failed runs'
//! records reclaimed and the engine entering **degradation probation**:
//! it spills synchronously until
//! [`dtsort::SpillRetryPolicy::probation_spills`] consecutive spills
//! succeed, then re-enables the pipeline (visible as
//! `spill.degraded_syncs` / [`StreamStats::degraded_syncs`]).
//! Transient failures (interrupted/timed-out syscalls) are retried with
//! bounded deterministic backoff before any of that
//! ([`dtsort::SpillRetryPolicy`]), and errors that survive the retries
//! are typed [`SpillError`]s naming the run file, run index and bytes
//! attempted.  [`dtsort::StreamConfig::synchronous_spill`] turns the
//! whole stage off (the reference behavior for the differential tests).
//!
//! ## Spill I/O backends
//!
//! All spill reads and writes go through the crate-private `SpillIo`
//! abstraction (re-exported as the opaque [`SpillIoHandle`]), selected by
//! [`dtsort::StreamConfig::spill_io`]:
//!
//! * [`SpillIoMode::Blocking`] (default) — buffered `File` I/O on the
//!   calling thread, byte-for-byte the original path and the
//!   differential reference.
//! * [`SpillIoMode::Batched`] — a fixed pool of
//!   [`dtsort::StreamConfig::spill_io_workers`] I/O threads behind a
//!   submission queue bounded by
//!   [`dtsort::StreamConfig::spill_io_queue_depth`], with pooled,
//!   recycled transfer buffers.  Writes are chunked and submitted
//!   asynchronously (`finish` still syncs before a run is recorded
//!   durable), reads are double-buffered, and the merge read-ahead
//!   becomes one scheduler with at most `queue_depth` in-flight
//!   requests instead of one thread per run.
//!
//! Both backends produce byte-identical spill files and sorted output;
//! the differential suites pin that equivalence.
//!
//! ## Streaming group-by
//!
//! When the consumer wants *aggregates per key* rather than the sorted
//! records themselves, [`StreamGroupBy`] does strictly less work: each run
//! is semisorted (heavy duplicate keys collapse in one pass), folded into
//! one partial aggregate per distinct key, and only those partials are
//! spilled; the final merge combines equal-key partials while streaming.
//! Duplicate-dominated streams never materialize their duplicates on disk.
//!
//! ## Variable-length values
//!
//! Spilled values come in two families, unified by the sealed
//! [`SpillValue`] abstraction:
//!
//! * [`PodValue`] — fixed-size `Copy` types spilled as their raw byte
//!   image (`key | value`), read back with zero-copy scratch.  This is
//!   the original fast path and its on-disk format and in-memory sort are
//!   unchanged.
//! * [`VarValue`] — `Vec<u8>`, `String` and `Box<[u8]>`, spilled
//!   length-prefixed (`key | value_len (u32 LE) | value bytes`) and
//!   streamed through a reusable side buffer.  In memory, DovetailSort
//!   moves only `(key, index)` tags and the owned payloads are permuted
//!   once per run, so strings are never copied through the sort.
//!
//! `StreamSorter<u64, String>` therefore spills URLs or log lines as
//! naturally as pod records, and the sorter additionally spills early when
//! buffered payload *bytes* (not just record count) reach one budget
//! share.  [`FirstAgg`] turns [`StreamGroupBy`] into a bounded-memory
//! first-payload-per-key dedup over such values.
//!
//! ## String keys
//!
//! Byte-string *keys* (not just values) are supported end to end by
//! [`StringStreamSorter`] and [`StringStreamGroupBy`]: a key's 8-byte
//! big-endian prefix rides the ordered-`u64` merge domain
//! ([`dtsort::string_key_prefix64`] is monotone in lexicographic order)
//! and the full key bytes travel in the spilled record, tie-breaking
//! equal prefixes at sort, merge, and group time.  The output order is
//! exactly lexicographic over the key bytes and the sort stays stable.
//! See the `strkey` module docs for the collision analysis.
//!
//! ## Compressed spill runs
//!
//! [`dtsort::StreamConfig::spill_compression`] switches spilled runs from
//! the flat record encoding to delta-compressed blocks
//! ([`SpillCompression::DeltaLz`]): sorted keys are varint-delta encoded
//! and payloads are compressed with a built-in LZ codec (independently
//! decodable 64 KiB blocks, store-raw fallback for incompressible data).
//! Both encodings decode through the same reader, flow through the same
//! background writer thread and merge read-ahead, and yield
//! byte-identical output — the uncompressed format stays the
//! differential reference.  [`StreamStats::spilled_raw_bytes`] /
//! [`GroupByStats::spilled_raw_bytes`] expose the achieved on-disk
//! ratio.
//!
//! ## Choosing an API
//!
//! | Need | Call |
//! |---|---|
//! | Stream the sorted result, bounded memory | [`StreamSorter::finish`] |
//! | Materialize into a caller-owned slice, parallel merge | [`StreamSorter::finish_into`] |
//! | Materialize into a fresh vector | [`StreamSorter::finish_vec`] |
//! | Per-key aggregates of a stream, bounded memory | [`StreamGroupBy::finish`] |
//! | Dedup variable-length payloads per key | [`StreamGroupBy`] + [`FirstAgg`] |

mod codec;
mod fault;
mod groupby;
mod metrics;
#[cfg(test)]
mod obs_tests;
mod pipeline;
mod sorter;
mod spill;
mod spillio;
mod strkey;

pub use dtsort::{
    SortConfig, SpillCompression, SpillIoMode, SpillRetryPolicy, StreamConfig, StringKey,
};
pub use fault::{FaultKind, FaultPlan, DEFAULT_FAULT_KINDS, DEFAULT_FAULT_PERIOD};
pub use groupby::{
    Aggregator, ConcatAgg, CountAgg, FirstAgg, FoldAgg, GroupByStats, GroupedStream, MaxAgg,
    MinAgg, StreamGroupBy, SumAgg,
};
pub use sorter::{SortedStream, StreamSorter, StreamStats};
pub use spill::{PodValue, SpillError, SpillValue, VarValue};
pub use spillio::SpillIoHandle;
pub use strkey::{
    StringAggAdapter, StringGroupedStream, StringKeyed, StringSortedStream, StringStreamGroupBy,
    StringStreamSorter,
};
