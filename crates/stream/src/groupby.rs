//! Streaming group-by: bounded-memory aggregation over pushed records.
//!
//! [`StreamGroupBy`] is the group-by counterpart of [`crate::StreamSorter`]
//! and the streaming face of the `semisort` engine.  Where the sorter
//! spills every *record* of a run, the group-by **aggregates each run
//! before spilling**: a full buffer is semisorted (heavy duplicate keys
//! collapse into dedicated buckets in one pass), each group is folded into
//! one `(key, partial-aggregate)` record, and only those partials — one per
//! distinct key per run — reach disk.  A key that dominates the stream
//! therefore costs one spilled record per run no matter how many million
//! occurrences it has: heavy-key streams never materialize their
//! duplicates.
//!
//! At read time the per-run partials (each run spilled sorted by key) are
//! k-way merged with a loser tree and equal-key partials are combined on
//! the fly, so the output is one `(key, aggregate)` pair per distinct key,
//! in increasing key order, produced with a footprint bounded by the read
//! buffers.
//!
//! Accumulators may be variable-length ([`crate::VarValue`]: `String`,
//! `Vec<u8>`, `Box<[u8]>`) as well as fixed-size pods; the semisort always
//! runs over `(key, index)` tags, so owned payloads are moved, never
//! copied, through the grouping pass.
//!
//! ```
//! use stream::{CountAgg, StreamGroupBy};
//! use dtsort::StreamConfig;
//!
//! // A tiny budget forces several aggregated runs.
//! let mut gb: StreamGroupBy<u32, CountAgg> =
//!     StreamGroupBy::with_config(CountAgg, StreamConfig::with_memory_budget(16 << 10));
//! for i in 0..30_000u32 {
//!     gb.push_record(i % 100, ()).unwrap();
//! }
//! let counts: Vec<(u32, u64)> = gb.finish().unwrap().collect();
//! assert_eq!(counts.len(), 100);
//! assert!(counts.iter().all(|&(_, c)| c == 300));
//! assert!(counts.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered output");
//! ```

use crate::pipeline::SpillPipeline;
use crate::sorter::{open_run_cursors, RunCursor};
use crate::spill::{
    var_payload_bytes, var_payload_should_spill, wrap_spill_err, write_run_with_retry, SpillSpace,
    SpillValue, SpilledRun,
};
use crate::spillio::SpillIoHandle;
use dtsort::{IntegerKey, StreamConfig};
use parlay::kway::LoserTree;
use semisort::{semisort_pairs_with, SemisortConfig};
use std::collections::VecDeque;
use std::io;
use std::marker::PhantomData;

/// A streaming aggregation: how one value becomes a partial aggregate, and
/// how two partial aggregates merge.
///
/// `combine` must be associative; partials are combined in push order, so
/// commutativity is not required.  The accumulator is spilled to disk
/// between runs, hence the [`SpillValue`] bound (fixed-size pods and
/// variable-length `String` / `Vec<u8>` / `Box<[u8]>` all qualify).
pub trait Aggregator: Send + Sync {
    /// The pushed value type.  The [`SpillValue`] bound exists so the
    /// group-by can meter buffered variable-length payload *bytes* (not
    /// just record count) and spill early, like the streaming sorter.
    type Input: SpillValue;
    /// The partial-aggregate type (spilled to disk between runs).
    type Acc: SpillValue;
    /// Lifts one value into a partial aggregate.
    fn lift(&self, v: Self::Input) -> Self::Acc;
    /// Merges two partial aggregates (earlier-pushed partial first).
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
}

/// Counts records per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountAgg;

impl Aggregator for CountAgg {
    type Input = ();
    type Acc = u64;
    fn lift(&self, _: ()) -> u64 {
        1
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Sums `u64` values per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumAgg;

impl Aggregator for SumAgg {
    type Input = u64;
    type Acc = u64;
    fn lift(&self, v: u64) -> u64 {
        v
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Minimum `u64` value per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinAgg;

impl Aggregator for MinAgg {
    type Input = u64;
    type Acc = u64;
    fn lift(&self, v: u64) -> u64 {
        v
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Maximum `u64` value per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxAgg;

impl Aggregator for MaxAgg {
    type Input = u64;
    type Acc = u64;
    fn lift(&self, v: u64) -> u64 {
        v
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// Keeps the *first* value pushed for each key (streaming dedup).
///
/// Works for any spillable value type, including variable-length payloads:
/// `FirstAgg<String>` turns the group-by into a bounded-memory
/// first-payload-per-key dedup.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstAgg<V>(PhantomData<fn() -> V>);

impl<V> FirstAgg<V> {
    pub fn new() -> Self {
        Self(PhantomData)
    }
}

impl<V: SpillValue> Aggregator for FirstAgg<V> {
    type Input = V;
    type Acc = V;
    fn lift(&self, v: V) -> V {
        v
    }
    fn combine(&self, a: V, _b: V) -> V {
        a
    }
}

/// Concatenates `Vec<u8>` payloads per key, in push order.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcatAgg;

impl Aggregator for ConcatAgg {
    type Input = Vec<u8>;
    type Acc = Vec<u8>;
    fn lift(&self, v: Vec<u8>) -> Vec<u8> {
        v
    }
    fn combine(&self, mut a: Vec<u8>, b: Vec<u8>) -> Vec<u8> {
        a.extend_from_slice(&b);
        a
    }
}

/// A custom fold built from two closures: `lift` turns a value into a
/// partial aggregate, `combine` merges two partials.
pub struct FoldAgg<I, A, L, C> {
    lift: L,
    combine: C,
    _marker: PhantomData<fn(I) -> A>,
}

impl<I, A, L, C> FoldAgg<I, A, L, C>
where
    I: SpillValue,
    A: SpillValue,
    L: Fn(I) -> A + Send + Sync,
    C: Fn(A, A) -> A + Send + Sync,
{
    /// Builds the aggregator; `combine` must be associative.
    pub fn new(lift: L, combine: C) -> Self {
        Self {
            lift,
            combine,
            _marker: PhantomData,
        }
    }
}

impl<I, A, L, C> Aggregator for FoldAgg<I, A, L, C>
where
    I: SpillValue,
    A: SpillValue,
    L: Fn(I) -> A + Send + Sync,
    C: Fn(A, A) -> A + Send + Sync,
{
    type Input = I;
    type Acc = A;
    fn lift(&self, v: I) -> A {
        (self.lift)(v)
    }
    fn combine(&self, a: A, b: A) -> A {
        (self.combine)(a, b)
    }
}

/// Counters describing what a [`StreamGroupBy`] did.
///
/// `records_pushed` and `partial_aggregates` are always exact.  With
/// pipelined spilling, `spilled_runs` / `spilled_bytes` count only runs
/// *confirmed durable*, reconciled lazily at each `push`; [`is_settled`]
/// reports whether that lag currently exists, and
/// [`StreamGroupBy::flush_spills`] drains it.
///
/// [`is_settled`]: GroupByStats::is_settled
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupByStats {
    /// Records accepted by `push` / `push_record` so far.  Counted per
    /// accepted chunk, so a failed spill mid-push leaves every record the
    /// group-by still owns counted.
    pub records_pushed: u64,
    /// Aggregated runs spilled to disk so far.
    pub spilled_runs: usize,
    /// Bytes of partial aggregates written to spill files so far (on-disk,
    /// post-compression).
    pub spilled_bytes: u64,
    /// Bytes the same runs would have occupied in the uncompressed (flat)
    /// spill encoding; see
    /// [`crate::StreamStats::spilled_raw_bytes`].
    pub spilled_raw_bytes: u64,
    /// Partial-aggregate records produced so far (spilled runs + tail);
    /// `records_pushed − partial_aggregates` records were collapsed before
    /// ever reaching disk.
    pub partial_aggregates: u64,
    /// Transient spill-write failures retried (and eventually succeeded)
    /// under [`StreamConfig::spill_retry`]; see
    /// [`crate::StreamStats::spill_retries`].
    pub spill_retries: u64,
    /// Runs spilled synchronously while pipelining was on probation after
    /// a writer failure; see [`crate::StreamStats::degraded_syncs`].
    pub degraded_syncs: u64,
    /// Whether the spill counters are exact right now: `false` while
    /// aggregated runs are in flight to the background spill writer,
    /// `true` once reconciliation has caught up.  Always `true` under
    /// [`StreamConfig::synchronous_spill`];
    /// [`StreamGroupBy::flush_spills`] forces it back to `true`.
    pub is_settled: bool,
}

impl Default for GroupByStats {
    fn default() -> Self {
        Self {
            records_pushed: 0,
            spilled_runs: 0,
            spilled_bytes: 0,
            spilled_raw_bytes: 0,
            partial_aggregates: 0,
            spill_retries: 0,
            degraded_syncs: 0,
            // Nothing in flight before the first pipelined spill.
            is_settled: true,
        }
    }
}

/// Bounded-memory streaming group-by over pushed `(key, value)` records.
///
/// See the module docs for the design; in short: buffer → semisort
/// → fold per group → spill one partial per distinct key → merge-combine
/// partials at read time.
pub struct StreamGroupBy<K: IntegerKey, G: Aggregator> {
    cfg: StreamConfig,
    /// The spill I/O backend ([`dtsort::StreamConfig::spill_io`]);
    /// possibly shared with sibling engines by
    /// [`StreamGroupBy::with_config_and_io`].
    io: SpillIoHandle,
    agg: G,
    run_capacity: usize,
    /// Peak transient footprint per buffered record (see `with_config`);
    /// kept so a live-budget change can recompute `run_capacity`.
    record_footprint: usize,
    buffer: Vec<(K, G::Input)>,
    /// Spilled payload bytes of the buffered inputs (tracked only for
    /// variable-length inputs; always 0 on the pod path).
    buffered_value_bytes: usize,
    /// Aggregated runs whose spill *write* failed, in run order: kept so
    /// the error path loses no data — the next spill retries them, and
    /// `finish` merges them like any other run.
    pending_partials: VecDeque<Vec<(u64, G::Acc)>>,
    runs: Vec<SpilledRun>,
    /// Aggregated runs currently in flight to the spill-writer thread.
    in_flight_runs: usize,
    /// Distinct name counter for synchronously written run files (the
    /// pipelined writer numbers its own `agg-p*` namespace).
    sync_run_seq: usize,
    /// `Some(n)` after a writer-side error surfaced: spill synchronously
    /// until `n` more clean synchronous spills succeed, then re-enable
    /// pipelining ([`dtsort::SpillRetryPolicy::probation_spills`]).
    degraded: Option<u32>,
    /// Runs aggregated so far (labels the `aggregate_run` trace spans).
    runs_aggregated: usize,
    /// Pipeline incarnations started so far; each gets its own
    /// `agg-p{generation}-` file namespace so a restart after probation
    /// cannot collide with a previous incarnation's files.
    pipeline_generation: usize,
    // Field order matters: the pipeline must drop (joining its writer)
    // before the spill space deletes the directory under it.
    pipeline: Option<SpillPipeline<u64, G::Acc>>,
    space: Option<SpillSpace>,
    stats: GroupByStats,
    /// Scoped obs enable for [`StreamConfig::trace`]; transferred to the
    /// finished stream so recording covers the merge drain too.
    trace_guard: Option<obs::EnableGuard>,
}

impl<K: IntegerKey, G: Aggregator> StreamGroupBy<K, G> {
    /// Group-by with the default [`StreamConfig`] (256 MiB budget).
    pub fn new(agg: G) -> Self {
        Self::with_config(agg, StreamConfig::default())
    }

    pub fn with_config(agg: G, cfg: StreamConfig) -> Self {
        let io = SpillIoHandle::from_config(&cfg);
        Self::with_config_and_io(agg, cfg, io)
    }

    /// Like [`StreamGroupBy::with_config`], but spilling through a
    /// caller-provided I/O backend — this is how a multi-session server
    /// shares one batched worker pool across every engine.
    pub fn with_config_and_io(agg: G, cfg: StreamConfig, io: SpillIoHandle) -> Self {
        // Scoped, not sticky: tracing reverts when this engine (and any
        // stream it returns) is dropped.
        let trace_guard = cfg.trace.then(obs::scoped_enable);
        // Peak transient footprint per buffered record: the pushed record
        // itself, plus the `(key, index)` tag pair the semisort moves (and
        // the scratch copy of it the semisort engine allocates), plus the
        // lifted accumulator slot — plus, when spilling is pipelined, one
        // in-flight partial-aggregate slot per pipeline-depth unit (an
        // aggregated run in flight to the writer holds at most one
        // `(u64, Acc)` record per buffered record).  Sizing the run from
        // that sum (not just the input record) keeps aggregation within
        // the configured budget.  Variable-length payloads count their
        // inline struct size only (see `StreamConfig`).
        let in_flight_footprint = if cfg.synchronous_spill {
            0
        } else {
            cfg.spill_pipeline_depth.max(1) * std::mem::size_of::<(u64, G::Acc)>()
        };
        let record_footprint = std::mem::size_of::<(K, G::Input)>()
            + 2 * std::mem::size_of::<(u64, u64)>()
            + std::mem::size_of::<Option<G::Acc>>()
            + in_flight_footprint;
        // Floor of 1 (not some larger convenience floor): any higher floor
        // would admit `floor × record_footprint` resident bytes under a
        // degenerate budget, silently overshooting it (the same fix as
        // `StreamConfig::run_capacity`).
        let record_footprint = record_footprint.max(1);
        let run_capacity = (cfg.effective_budget_bytes() / record_footprint).max(1);
        Self {
            cfg,
            io,
            agg,
            run_capacity,
            record_footprint,
            buffer: Vec::new(),
            buffered_value_bytes: 0,
            pending_partials: VecDeque::new(),
            runs: Vec::new(),
            in_flight_runs: 0,
            sync_run_seq: 0,
            degraded: None,
            runs_aggregated: 0,
            pipeline_generation: 0,
            pipeline: None,
            space: None,
            stats: GroupByStats::default(),
            trace_guard,
        }
    }

    /// Re-reads the budget (which a live [`dtsort::BudgetHandle`] may have
    /// resized since the last check) into the run capacity.  Called on
    /// every push chunk, so a shrunk grant takes effect mid-stream as an
    /// early spill instead of an over-budget buffer.
    fn refresh_run_capacity(&mut self) {
        if self.cfg.budget.is_some() {
            self.run_capacity = (self.cfg.effective_budget_bytes() / self.record_footprint).max(1);
        }
    }

    /// Applies the current budget grant immediately: re-reads the
    /// (possibly shrunk) [`dtsort::BudgetHandle`] and aggregates + spills
    /// the buffered run early if it no longer fits the grant.  `push`
    /// re-checks per chunk anyway; this hook exists for granters (e.g. a
    /// memory governor) reclaiming from a session that is idle between
    /// pushes.
    pub fn shrink_to_budget(&mut self) -> io::Result<()> {
        self.refresh_run_capacity();
        if self.should_spill() {
            self.spill_partial_run()?;
        }
        Ok(())
    }

    /// Counters (spills, collapse ratio, ...).
    ///
    /// With pipelined spilling, `spilled_runs` / `spilled_bytes` count runs
    /// confirmed durable, reconciled at every `push`;
    /// [`GroupByStats::is_settled`] tells whether they are exact right
    /// now, and [`StreamGroupBy::flush_spills`] makes them exact.
    pub fn stats(&self) -> &GroupByStats {
        &self.stats
    }

    /// Blocks until every aggregated run handed to the background spill
    /// writer is durable on disk, surfacing any writer-side error.
    /// Afterwards [`StreamGroupBy::stats`] is exact.  A no-op under
    /// [`StreamConfig::synchronous_spill`].
    pub fn flush_spills(&mut self) -> io::Result<()> {
        if let Some(pipeline) = &self.pipeline {
            pipeline.flush();
        }
        self.reconcile_pipeline()
    }

    /// Number of runs the final merge will see (spilled runs, runs in
    /// flight to the writer, pending runs whose spill write failed, and
    /// the in-memory tail).
    pub fn run_count(&self) -> usize {
        self.runs.len()
            + self.in_flight_runs
            + self.pending_partials.len()
            + usize::from(!self.buffer.is_empty())
    }

    /// Spills are due when a stashed run awaits its retry, the record
    /// count hits capacity, or buffered variable-length input payloads
    /// reach the shared byte threshold (without which large payloads could
    /// pile up un-aggregated far past the budget).
    fn buffer_needs_spill(&self) -> bool {
        !self.buffer.is_empty()
            && (self.buffer.len() >= self.run_capacity
                || var_payload_should_spill::<G::Input>(
                    self.buffered_value_bytes,
                    self.cfg.effective_budget_bytes(),
                    self.cfg.spill_shares(),
                ))
    }

    fn should_spill(&self) -> bool {
        !self.pending_partials.is_empty() || self.buffer_needs_spill()
    }

    /// Appends a batch of records, aggregating and spilling full runs.
    pub fn push(&mut self, records: &[(K, G::Input)]) -> io::Result<()> {
        let mut rest = records;
        loop {
            self.refresh_run_capacity();
            if self.should_spill() {
                if let Err(e) = self.spill_partial_run() {
                    // A failed spill must not cost the caller the rest of
                    // the slice: absorb it (transiently past capacity,
                    // bounded by the slice), then report.
                    self.buffer_chunk(rest);
                    return Err(e);
                }
            }
            if rest.is_empty() {
                return Ok(());
            }
            // A shrunk grant can put the buffer over the new capacity; the
            // saturating space is then 0 and the spill above drains it on
            // the next iteration.
            let space = self.run_capacity.saturating_sub(self.buffer.len());
            let take = space.min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            self.buffer_chunk(chunk);
            rest = tail;
        }
    }

    /// Moves `chunk` into the run buffer, keeping byte and record
    /// accounting exact (`records_pushed == len()` even on error paths).
    fn buffer_chunk(&mut self, chunk: &[(K, G::Input)]) {
        if chunk.is_empty() {
            return;
        }
        self.buffer.extend_from_slice(chunk);
        self.buffered_value_bytes += var_payload_bytes(chunk);
        self.stats.records_pushed += chunk.len() as u64;
        if obs::enabled() {
            crate::metrics::m()
                .gb_records_pushed
                .add(chunk.len() as u64);
        }
    }

    /// Appends a single record (no clone of the value).
    pub fn push_record(&mut self, key: K, value: G::Input) -> io::Result<()> {
        // Buffer the record *before* any spill attempt: on a spill error
        // the caller's (possibly only) copy of the value is then owned by
        // the group-by rather than dropped on the error return.
        if G::Input::SPILL_FIXED_SIZE.is_none() {
            self.buffered_value_bytes += value.spill_size();
        }
        self.buffer.push((key, value));
        self.stats.records_pushed += 1;
        if obs::enabled() {
            crate::metrics::m().gb_records_pushed.incr();
        }
        self.refresh_run_capacity();
        if self.should_spill() {
            self.spill_partial_run()?;
        }
        Ok(())
    }

    /// Semisorts the buffered run and folds each group into one partial
    /// aggregate, returned sorted by (ordered) key.
    ///
    /// The semisort moves only `(ordered key, index)` tags; lifted
    /// accumulators sit in index-addressed slots and are *moved* into the
    /// fold, so variable-length accumulators are never copied here.
    fn aggregate_run(&mut self) -> Vec<(u64, G::Acc)> {
        let traced = obs::enabled() && !self.buffer.is_empty();
        let start = traced.then(std::time::Instant::now);
        let _span = traced.then(|| obs::span!("aggregate_run", run = self.runs_aggregated));
        if !self.buffer.is_empty() {
            self.runs_aggregated += 1;
        }
        let agg = &self.agg;
        let mut tags: Vec<(u64, u64)> = Vec::with_capacity(self.buffer.len());
        let mut accs: Vec<Option<G::Acc>> = Vec::with_capacity(self.buffer.len());
        for (i, (k, v)) in self.buffer.drain(..).enumerate() {
            tags.push((k.to_ordered_u64(), i as u64));
            accs.push(Some(agg.lift(v)));
        }
        self.buffered_value_bytes = 0;
        let semi_cfg = SemisortConfig {
            sort: self.cfg.sort.clone(),
            ..SemisortConfig::default()
        };
        let mut groups = semisort_pairs_with(&mut tags, &semi_cfg);
        // Runs must be spilled sorted by key for the k-way merge; only the
        // distinct keys of the run are sorted, not its records.
        dtsort::sort_by_key(&mut groups, |g| g.key);
        // Reuse a buffer recycled from an already-written run, if the
        // pipeline has one pooled.
        let mut out: Vec<(u64, G::Acc)> = self
            .pipeline
            .as_ref()
            .and_then(|p| p.recycled_buffer())
            .unwrap_or_default();
        let recycled = out.len();
        for g in &groups {
            let group_tags = &tags[g.start..g.end];
            // An ordered-`u64` key need not be injective: a string key's
            // 8-byte prefix collides for keys sharing their first 8 bytes.
            // Accumulators that embed the full key
            // ([`SpillValue::spill_embedded_key`]) are therefore
            // sub-grouped by those bytes before folding; plain integer
            // keys (no embedded key) fold the whole group at once.
            let has_embedded = accs[group_tags[0].1 as usize]
                .as_ref()
                .expect("slot folded once")
                .spill_embedded_key()
                .is_some();
            if !has_embedded {
                let mut tag_iter = group_tags.iter();
                let first = tag_iter.next().expect("groups are never empty");
                let mut acc = accs[first.1 as usize].take().expect("slot folded once");
                for &(_, idx) in tag_iter {
                    // Tags keep push order within a group (stable
                    // semisort), so partials combine in push order.
                    acc = agg.combine(acc, accs[idx as usize].take().expect("slot folded once"));
                }
                out.push((g.key, acc));
                continue;
            }
            // Stable sort by embedded key: sub-groups come out in the
            // order the merge's tie-break expects, and push order is kept
            // within each sub-group.
            fn embedded_of<A: SpillValue>(accs: &[Option<A>], i: u64) -> &[u8] {
                accs[i as usize]
                    .as_ref()
                    .expect("slot folded once")
                    .spill_embedded_key()
                    .unwrap_or(&[])
            }
            let mut idxs: Vec<u64> = group_tags.iter().map(|&(_, i)| i).collect();
            idxs.sort_by(|&a, &b| embedded_of(&accs, a).cmp(embedded_of(&accs, b)));
            let mut s = 0usize;
            while s < idxs.len() {
                let mut e = s + 1;
                while e < idxs.len() && embedded_of(&accs, idxs[e]) == embedded_of(&accs, idxs[s]) {
                    e += 1;
                }
                let mut acc = accs[idxs[s] as usize].take().expect("slot folded once");
                for &idx in &idxs[s + 1..e] {
                    acc = agg.combine(acc, accs[idx as usize].take().expect("slot folded once"));
                }
                out.push((g.key, acc));
                s = e;
            }
        }
        let produced = (out.len() - recycled) as u64;
        self.stats.partial_aggregates += produced;
        if let Some(start) = start {
            let metrics = crate::metrics::m();
            metrics.gb_aggregate_ns.record_duration(start.elapsed());
            metrics.gb_partial_aggregates.add(produced);
        }
        out
    }

    fn spill_partial_run(&mut self) -> io::Result<()> {
        // Secure the spill directory *before* draining the buffer into
        // partials: if directory creation fails, the records stay buffered
        // (and counted) instead of being aggregated into a vector that the
        // error path would drop.
        if self.space.is_none() {
            self.space = Some(SpillSpace::create(self.cfg.spill_dir.as_ref())?);
        }
        // Runs whose write failed earlier are retried before the buffer is
        // aggregated again (the push loop spills once per iteration, so a
        // refilled buffer follows on the next iteration).
        self.retry_pending_partials()?;
        if !self.buffer_needs_spill() {
            return Ok(());
        }
        if self.cfg.synchronous_spill || self.degraded.is_some() {
            let partial = self.aggregate_run();
            self.write_partial_sync(partial)
        } else {
            self.spill_partial_pipelined()
        }
    }

    fn retry_pending_partials(&mut self) -> io::Result<()> {
        while let Some(partial) = self.pending_partials.pop_front() {
            if let Err(e) = self.write_partial_sync_inner(&partial) {
                self.pending_partials.push_front(partial);
                return Err(e);
            }
        }
        Ok(())
    }

    fn write_partial_sync(&mut self, partial: Vec<(u64, G::Acc)>) -> io::Result<()> {
        if let Err(e) = self.write_partial_sync_inner(&partial) {
            // Keep the only copy of this run's aggregates for a retry
            // (or for `finish`, which merges it from memory).
            self.pending_partials.push_back(partial);
            return Err(e);
        }
        Ok(())
    }

    fn write_partial_sync_inner(&mut self, partial: &[(u64, G::Acc)]) -> io::Result<()> {
        let dir = &self.space.as_ref().expect("spill space secured").dir;
        let path = dir.join(format!("agg-s{:06}.bin", self.sync_run_seq));
        let _span = obs::enabled().then(|| obs::span!("spill_write", run = self.sync_run_seq));
        let spilled = match write_run_with_retry(
            &self.io,
            &path,
            partial,
            self.cfg.spill_compression,
            &self.cfg.spill_retry,
        ) {
            Ok(spilled) => spilled,
            Err(e) => {
                std::fs::remove_file(&path).ok();
                let attempted: u64 = partial.iter().map(|(_, a)| 8 + a.spill_size() as u64).sum();
                return Err(wrap_spill_err(&path, self.sync_run_seq, attempted, e));
            }
        };
        self.sync_run_seq += 1;
        self.stats.spilled_runs += 1;
        self.stats.spilled_bytes += spilled.bytes;
        self.stats.spilled_raw_bytes += spilled.raw_bytes;
        self.stats.spill_retries += spilled.retries as u64;
        if obs::enabled() {
            let metrics = crate::metrics::m();
            metrics.gb_spilled_runs.incr();
            metrics.gb_spilled_bytes.add(spilled.bytes);
        }
        self.runs.push(spilled);
        self.note_degraded_sync();
        Ok(())
    }

    /// One clean synchronous spill while on probation: count it, and once
    /// enough succeed, lift the probation so the next spill restarts the
    /// pipeline.  A no-op outside probation.
    fn note_degraded_sync(&mut self) {
        let Some(left) = self.degraded else { return };
        self.stats.degraded_syncs += 1;
        if obs::enabled() {
            crate::metrics::m().degraded_syncs.incr();
        }
        let left = left.saturating_sub(1);
        self.degraded = (left > 0).then_some(left);
    }

    /// Hands the aggregated run to the background writer: the next run
    /// buffers and semisorts while this one streams to disk.
    fn spill_partial_pipelined(&mut self) -> io::Result<()> {
        if self.pipeline.is_none() {
            let dir = self
                .space
                .as_ref()
                .expect("spill space secured")
                .dir
                .clone();
            let generation = self.pipeline_generation;
            self.pipeline_generation += 1;
            self.pipeline = Some(SpillPipeline::start(
                self.io.clone(),
                dir,
                self.cfg.spill_pipeline_depth,
                format!("agg-p{generation}-"),
                self.cfg.spill_compression,
                self.cfg.spill_retry,
            ));
        }
        let partial = self.aggregate_run();
        self.in_flight_runs += 1;
        // The run's bytes will not reach the spill counters until the
        // writer confirms them durable.
        self.stats.is_settled = false;
        self.pipeline
            .as_mut()
            .expect("pipeline just started")
            .submit(partial); // blocks while the pipeline is at depth
        self.reconcile_pipeline()
    }

    /// Accounts runs the writer has completed and surfaces any writer-side
    /// error; on error the pipeline is torn down, its unwritten runs are
    /// reclaimed as pending, and the group-by falls back to synchronous
    /// spilling.
    fn reconcile_pipeline(&mut self) -> io::Result<()> {
        let (completed, error) = match &self.pipeline {
            None => return Ok(()),
            Some(p) => (p.drain_completed(), p.poll_error()),
        };
        self.account_completed(completed);
        if let Some(e) = error {
            self.teardown_pipeline();
            return Err(e);
        }
        Ok(())
    }

    fn account_completed(&mut self, completed: Vec<SpilledRun>) {
        for run in completed {
            self.in_flight_runs -= 1;
            self.stats.spilled_runs += 1;
            self.stats.spilled_bytes += run.bytes;
            self.stats.spilled_raw_bytes += run.raw_bytes;
            self.stats.spill_retries += run.retries as u64;
            if obs::enabled() {
                let metrics = crate::metrics::m();
                metrics.gb_spilled_runs.incr();
                metrics.gb_spilled_bytes.add(run.bytes);
            }
            self.runs.push(run);
        }
        if self.in_flight_runs == 0 {
            self.stats.is_settled = true;
        }
    }

    fn teardown_pipeline(&mut self) -> Option<io::Error> {
        let pipeline = self.pipeline.take()?;
        let closed = pipeline.close();
        self.account_completed(closed.completed);
        for partial in closed.failed {
            self.in_flight_runs -= 1;
            self.pending_partials.push_back(partial);
        }
        // Nothing is in flight any more: completed runs were accounted
        // above and failed ones reclaimed as pending.
        self.stats.is_settled = true;
        // Probation, not a life sentence: spill synchronously until enough
        // clean spills prove the fault was transient, then re-pipeline.
        self.degraded = Some(self.cfg.spill_retry.probation_spills.max(1));
        closed.error
    }

    /// Finishes the group-by: merges all per-run partials, combining equal
    /// keys, into a stream of `(key, aggregate)` pairs in increasing key
    /// order (one pair per distinct key of the whole stream).
    ///
    /// A writer-side spill error that has not surfaced on a `push` yet
    /// surfaces here.
    pub fn finish(mut self) -> io::Result<GroupedStream<K, G>> {
        if let Some(e) = self.teardown_pipeline() {
            return Err(e);
        }
        let pending: Vec<Vec<(u64, G::Acc)>> = self.pending_partials.drain(..).collect();
        let tail = self.aggregate_run();
        let (mut cursors, read_ahead_disabled, prefetch_capped) =
            open_run_cursors::<G::Acc>(&self.runs, &self.cfg, &self.io)?;
        // Runs whose spill write failed merge from memory; they were
        // aggregated before the current tail, so their cursors precede the
        // tail's (equal-key partials combine in push order).
        for p in pending {
            cursors.push(RunCursor::from_memory(p));
        }
        if !tail.is_empty() {
            cursors.push(RunCursor::from_memory(tail));
        }
        Ok(GroupedStream {
            tree: LoserTree::new(cursors, G::Acc::spill_record_lt),
            agg: self.agg,
            pending: None,
            read_ahead_disabled,
            prefetch_capped,
            _space: self.space.take(),
            _merge_span: obs::enabled().then(|| obs::span!("merge")),
            // The scoped enable moves to the stream so the merge drain
            // records too; it reverts when the stream drops.
            _trace: self.trace_guard.take(),
            _key: PhantomData,
        })
    }

    /// [`StreamGroupBy::finish`], materialized into a vector.
    pub fn finish_vec(self) -> io::Result<Vec<(K, G::Acc)>> {
        Ok(self.finish()?.collect())
    }
}

type AggMergeTree<A> = LoserTree<RunCursor<A>, fn(&(u64, A), &(u64, A)) -> bool>;

/// Streaming output of a [`StreamGroupBy`]: `(key, aggregate)` pairs in
/// increasing key order.  Holds the spill directory alive until dropped.
pub struct GroupedStream<K: IntegerKey, G: Aggregator> {
    tree: AggMergeTree<G::Acc>,
    agg: G,
    /// The first partial of the *next* key, already popped from the tree.
    pending: Option<(u64, G::Acc)>,
    read_ahead_disabled: bool,
    prefetch_capped: bool,
    _space: Option<SpillSpace>,
    /// Open `merge` span covering the stream's lifetime (None when
    /// tracing is disabled); recorded when the stream is dropped.
    _merge_span: Option<obs::SpanGuard>,
    /// Keeps [`StreamConfig::trace`]'s scoped enable alive through the
    /// merge drain.
    _trace: Option<obs::EnableGuard>,
    _key: PhantomData<K>,
}

impl<K: IntegerKey, G: Aggregator> GroupedStream<K, G> {
    /// Whether the final merge wanted read-ahead but ran synchronously;
    /// see [`crate::SortedStream::read_ahead_disabled`].
    pub fn read_ahead_disabled(&self) -> bool {
        self.read_ahead_disabled
    }

    /// Whether read-ahead was disabled specifically by the backend's
    /// fan-in cap; see [`crate::SortedStream::prefetch_capped`].
    pub fn prefetch_capped(&self) -> bool {
        self.prefetch_capped
    }
}

impl<K: IntegerKey, G: Aggregator> Iterator for GroupedStream<K, G> {
    type Item = (K, G::Acc);

    fn next(&mut self) -> Option<(K, G::Acc)> {
        let (key, mut acc) = self.pending.take().or_else(|| self.tree.pop())?;
        loop {
            match self.tree.pop() {
                // The loser tree yields equal keys in run order, so partials
                // combine in push order.  Accumulators carrying an embedded
                // full key (string-keyed streams, where the ordered `u64`
                // is only an 8-byte prefix) must also agree on those bytes:
                // prefix-colliding keys are distinct groups.
                Some((k, a)) if k == key && a.spill_embedded_key() == acc.spill_embedded_key() => {
                    acc = self.agg.combine(acc, a)
                }
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        Some((K::from_ordered_u64(key), acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::HashMap;

    fn tiny_cfg(budget: usize) -> StreamConfig {
        StreamConfig {
            memory_budget_bytes: budget,
            // Force the read-ahead merge path so it is exercised even on
            // single-CPU CI hosts (where auto mode would disable it).
            merge_read_ahead: Some(true),
            sort: dtsort::SortConfig {
                base_case_threshold: 64,
                ..Default::default()
            },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn counts_match_hashmap_across_spilled_runs() {
        let rng = Rng::new(1);
        let n = 40_000usize;
        let keys: Vec<u64> = (0..n).map(|i| rng.ith_in(i as u64, 777)).collect();
        let mut gb: StreamGroupBy<u64, CountAgg> =
            StreamGroupBy::with_config(CountAgg, tiny_cfg(16 << 10));
        for chunk in keys.chunks(997) {
            let recs: Vec<(u64, ())> = chunk.iter().map(|&k| (k, ())).collect();
            gb.push(&recs).unwrap();
        }
        assert!(gb.stats().spilled_runs > 2, "stats: {:?}", gb.stats());
        let mut want: HashMap<u64, u64> = HashMap::new();
        for &k in &keys {
            *want.entry(k).or_default() += 1;
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        for &(k, c) in &got {
            assert_eq!(c, want[&k], "key {k}");
        }
    }

    #[test]
    fn heavy_key_stream_never_materializes_duplicates() {
        // 80% of the stream is one key; each run spills at most one partial
        // for it, so the spilled volume collapses.
        let rng = Rng::new(2);
        let n = 60_000usize;
        let mut gb: StreamGroupBy<u32, CountAgg> =
            StreamGroupBy::with_config(CountAgg, tiny_cfg(16 << 10));
        for i in 0..n {
            let k = if rng.ith_f64(i as u64) < 0.8 {
                7
            } else {
                rng.ith_in(i as u64, 200) as u32
            };
            gb.push_record(k, ()).unwrap();
        }
        let stats = gb.stats().clone();
        assert!(stats.spilled_runs > 2);
        assert!(
            stats.partial_aggregates < stats.records_pushed / 4,
            "duplicates must collapse before spilling: {stats:?}"
        );
        let got = gb.finish_vec().unwrap();
        let seven = got.iter().find(|&&(k, _)| k == 7).unwrap();
        assert!(seven.1 >= (n as u64) * 7 / 10);
        assert_eq!(got.iter().map(|&(_, c)| c).sum::<u64>(), n as u64);
    }

    #[test]
    fn sum_min_max_aggregations() {
        let rng = Rng::new(3);
        let n = 30_000usize;
        let records: Vec<(u32, u64)> = (0..n)
            .map(|i| {
                (
                    rng.ith_in(i as u64, 50) as u32,
                    rng.fork(9).ith_in(i as u64, 1000),
                )
            })
            .collect();
        let mut want_sum: HashMap<u32, u64> = HashMap::new();
        let mut want_min: HashMap<u32, u64> = HashMap::new();
        let mut want_max: HashMap<u32, u64> = HashMap::new();
        for &(k, v) in &records {
            *want_sum.entry(k).or_default() += v;
            want_min
                .entry(k)
                .and_modify(|m| *m = (*m).min(v))
                .or_insert(v);
            want_max
                .entry(k)
                .and_modify(|m| *m = (*m).max(v))
                .or_insert(v);
        }
        let run = |agg: &dyn Fn() -> Vec<(u32, u64)>| agg();
        let sums = run(&|| {
            let mut gb = StreamGroupBy::with_config(SumAgg, tiny_cfg(16 << 10));
            gb.push(&records).unwrap();
            gb.finish_vec().unwrap()
        });
        let mins = run(&|| {
            let mut gb = StreamGroupBy::with_config(MinAgg, tiny_cfg(16 << 10));
            gb.push(&records).unwrap();
            gb.finish_vec().unwrap()
        });
        let maxs = run(&|| {
            let mut gb = StreamGroupBy::with_config(MaxAgg, tiny_cfg(16 << 10));
            gb.push(&records).unwrap();
            gb.finish_vec().unwrap()
        });
        for &(k, s) in &sums {
            assert_eq!(s, want_sum[&k]);
        }
        for &(k, m) in &mins {
            assert_eq!(m, want_min[&k]);
        }
        for &(k, m) in &maxs {
            assert_eq!(m, want_max[&k]);
        }
    }

    #[test]
    fn custom_fold_aggregator() {
        // Track (count, sum) pairs through a custom fold.
        let agg = FoldAgg::new(
            |v: u64| [1u64, v],
            |a: [u64; 2], b: [u64; 2]| [a[0] + b[0], a[1] + b[1]],
        );
        let mut gb: StreamGroupBy<u64, _> = StreamGroupBy::with_config(agg, tiny_cfg(16 << 10));
        for i in 0..20_000u64 {
            gb.push_record(i % 10, i).unwrap();
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), 10);
        for &(k, [cnt, sum]) in &got {
            assert_eq!(cnt, 2000);
            // Sum of the arithmetic progression k, k+10, ..., k+19990.
            let want: u64 = (0..2000u64).map(|j| k + 10 * j).sum();
            assert_eq!(sum, want, "key {k}");
        }
    }

    #[test]
    fn signed_keys_and_in_memory_only() {
        let mut gb: StreamGroupBy<i32, CountAgg> = StreamGroupBy::new(CountAgg);
        for &k in &[-5i32, 3, -5, 0, 3, -5] {
            gb.push_record(k, ()).unwrap();
        }
        assert_eq!(gb.stats().spilled_runs, 0);
        let got = gb.finish_vec().unwrap();
        assert_eq!(got, vec![(-5, 3), (0, 1), (3, 2)]);
    }

    #[test]
    fn empty_group_by_stream() {
        let gb: StreamGroupBy<u64, CountAgg> = StreamGroupBy::new(CountAgg);
        assert_eq!(gb.run_count(), 0);
        assert_eq!(gb.finish().unwrap().count(), 0);
    }

    #[test]
    fn first_agg_keeps_first_string_payload_per_key() {
        let rng = Rng::new(4);
        let n = 25_000usize;
        let records: Vec<(u64, String)> = (0..n)
            .map(|i| (rng.ith_in(i as u64, 400), format!("payload-{i}")))
            .collect();
        let mut gb: StreamGroupBy<u64, FirstAgg<String>> =
            StreamGroupBy::with_config(FirstAgg::new(), tiny_cfg(16 << 10));
        for chunk in records.chunks(997) {
            gb.push(chunk).unwrap();
        }
        assert!(gb.stats().spilled_runs > 2, "stats: {:?}", gb.stats());
        let mut want: HashMap<u64, &str> = HashMap::new();
        for (k, v) in &records {
            want.entry(*k).or_insert(v.as_str());
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        for (k, v) in &got {
            assert_eq!(v, want[k], "key {k}: first payload in push order");
        }
    }

    #[test]
    fn concat_agg_preserves_push_order_across_runs() {
        // Few keys, many records: per-key concatenations grow to multi-KB
        // variable-length accumulators that are spilled and re-merged, and
        // the final bytes must equal the push-order concatenation.
        let n = 9_000usize;
        let records: Vec<(u32, Vec<u8>)> = (0..n)
            .map(|i| ((i % 5) as u32, format!("[{i}]").into_bytes()))
            .collect();
        let mut gb: StreamGroupBy<u32, ConcatAgg> =
            StreamGroupBy::with_config(ConcatAgg, tiny_cfg(16 << 10));
        for chunk in records.chunks(613) {
            gb.push(chunk).unwrap();
        }
        assert!(gb.stats().spilled_runs > 1, "stats: {:?}", gb.stats());
        let mut want: HashMap<u32, Vec<u8>> = HashMap::new();
        for (k, v) in &records {
            want.entry(*k).or_default().extend_from_slice(v);
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), 5);
        for (k, v) in &got {
            assert!(v.len() > 1 << 10, "accumulators must grow multi-KB");
            assert_eq!(v, &want[k], "key {k}: push-order concatenation");
        }
    }

    #[test]
    fn pending_partial_from_failed_spill_merges_in_finish() {
        // Simulate a run whose spill *write* failed (ENOSPC-style): the
        // aggregates were stashed in `pending_partial`.  `finish` must
        // merge them from memory, before the current tail.
        let mut gb: StreamGroupBy<u64, SumAgg> = StreamGroupBy::new(SumAgg);
        gb.push(&[(2, 10), (4, 1)]).unwrap();
        gb.pending_partials.push_back(vec![(1, 5), (2, 7)]);
        assert_eq!(gb.run_count(), 2, "pending run counts toward the merge");
        let got = gb.finish_vec().unwrap();
        assert_eq!(got, vec![(1, 5), (2, 17), (4, 1)]);
    }

    #[test]
    fn pending_partial_is_retried_by_the_next_push() {
        let mut gb: StreamGroupBy<u64, SumAgg> =
            StreamGroupBy::with_config(SumAgg, tiny_cfg(16 << 10));
        gb.pending_partials.push_back(vec![(9, 3)]);
        gb.push_record(9, 2).unwrap();
        assert_eq!(
            gb.stats().spilled_runs,
            1,
            "the stashed run must be written to disk by the next push"
        );
        let got = gb.finish_vec().unwrap();
        assert_eq!(got, vec![(9, 5)]);
    }

    #[test]
    fn large_var_inputs_spill_by_bytes_not_record_count() {
        // 120 distinct-keyed records fit the record-count capacity many
        // times over, but their multi-KiB payloads exceed half the budget;
        // the byte tracker must force aggregated spills anyway.
        let mut gb: StreamGroupBy<u64, FirstAgg<String>> =
            StreamGroupBy::with_config(FirstAgg::new(), tiny_cfg(64 << 10));
        assert!(gb.run_capacity > 120, "premise: count would not spill");
        for i in 0..120u64 {
            gb.push_record(i, "q".repeat(2 << 10)).unwrap();
        }
        assert!(
            gb.stats().spilled_runs > 3,
            "payload bytes must trigger spills: {:?}",
            gb.stats()
        );
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), 120);
    }

    #[test]
    fn records_pushed_counts_accepted_records_when_spill_fails() {
        // Same regression as the sorter: a spill failure mid-push must not
        // leave buffered records uncounted.
        let base = std::env::temp_dir().join(format!("pisort-gbfailtest-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let blocker = base.join("not-a-directory");
        std::fs::write(&blocker, b"x").unwrap();
        let cfg = StreamConfig {
            spill_dir: Some(blocker.clone()),
            ..tiny_cfg(16 << 10)
        };
        let mut gb: StreamGroupBy<u64, SumAgg> = StreamGroupBy::with_config(SumAgg, cfg);
        let batch: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i, i)).collect();
        let err = gb.push(&batch).expect_err("spill into a file must fail");
        assert_ne!(err.kind(), io::ErrorKind::NotFound);
        // Regression (stats drift): the records accepted before the failed
        // spill stay counted — and stay *buffered*, because the spill
        // directory is secured before the buffer is drained.
        assert!(gb.stats().records_pushed > 0);
        assert_eq!(gb.stats().spilled_runs, 0);
        assert_eq!(gb.stats().partial_aggregates, 0, "buffer must survive");
        assert_eq!(gb.run_count(), 1, "the failed run is still buffered");
        std::fs::remove_dir_all(&base).ok();
    }
}
