//! Streaming group-by: bounded-memory aggregation over pushed records.
//!
//! [`StreamGroupBy`] is the group-by counterpart of [`crate::StreamSorter`]
//! and the streaming face of the `semisort` engine.  Where the sorter
//! spills every *record* of a run, the group-by **aggregates each run
//! before spilling**: a full buffer is semisorted (heavy duplicate keys
//! collapse into dedicated buckets in one pass), each group is folded into
//! one `(key, partial-aggregate)` record, and only those partials — one per
//! distinct key per run — reach disk.  A key that dominates the stream
//! therefore costs one spilled record per run no matter how many million
//! occurrences it has: heavy-key streams never materialize their
//! duplicates.
//!
//! At read time the per-run partials (each run spilled sorted by key) are
//! k-way merged with a loser tree and equal-key partials are combined on
//! the fly, so the output is one `(key, aggregate)` pair per distinct key,
//! in increasing key order, produced with a footprint bounded by the read
//! buffers.
//!
//! ```
//! use stream::{CountAgg, StreamGroupBy};
//! use dtsort::StreamConfig;
//!
//! // A tiny budget forces several aggregated runs.
//! let mut gb: StreamGroupBy<u32, CountAgg> =
//!     StreamGroupBy::with_config(CountAgg, StreamConfig::with_memory_budget(16 << 10));
//! for i in 0..30_000u32 {
//!     gb.push_record(i % 100, ()).unwrap();
//! }
//! let counts: Vec<(u32, u64)> = gb.finish().unwrap().collect();
//! assert_eq!(counts.len(), 100);
//! assert!(counts.iter().all(|&(_, c)| c == 300));
//! assert!(counts.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered output");
//! ```

use crate::sorter::{lt_by_ordered_key, RunCursor};
use crate::spill::{write_run, PodValue, SpillSpace, SpilledRun};
use dtsort::{IntegerKey, StreamConfig};
use parlay::kway::LoserTree;
use semisort::{semisort_pairs_with, SemisortConfig};
use std::io;
use std::marker::PhantomData;

/// A streaming aggregation: how one value becomes a partial aggregate, and
/// how two partial aggregates merge.
///
/// `combine` must be associative; partials are combined in push order, so
/// commutativity is not required.  The accumulator is spilled to disk
/// between runs, hence the [`PodValue`] bound.
pub trait Aggregator: Send + Sync {
    /// The pushed value type.
    type Input: PodValue;
    /// The partial-aggregate type (spilled to disk between runs).
    type Acc: PodValue;
    /// Lifts one value into a partial aggregate.
    fn lift(&self, v: Self::Input) -> Self::Acc;
    /// Merges two partial aggregates (earlier-pushed partial first).
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
}

/// Counts records per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountAgg;

impl Aggregator for CountAgg {
    type Input = ();
    type Acc = u64;
    fn lift(&self, _: ()) -> u64 {
        1
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Sums `u64` values per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumAgg;

impl Aggregator for SumAgg {
    type Input = u64;
    type Acc = u64;
    fn lift(&self, v: u64) -> u64 {
        v
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Minimum `u64` value per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinAgg;

impl Aggregator for MinAgg {
    type Input = u64;
    type Acc = u64;
    fn lift(&self, v: u64) -> u64 {
        v
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Maximum `u64` value per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxAgg;

impl Aggregator for MaxAgg {
    type Input = u64;
    type Acc = u64;
    fn lift(&self, v: u64) -> u64 {
        v
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// A custom fold built from two closures: `lift` turns a value into a
/// partial aggregate, `combine` merges two partials.
pub struct FoldAgg<I, A, L, C> {
    lift: L,
    combine: C,
    _marker: PhantomData<fn(I) -> A>,
}

impl<I, A, L, C> FoldAgg<I, A, L, C>
where
    I: PodValue,
    A: PodValue,
    L: Fn(I) -> A + Send + Sync,
    C: Fn(A, A) -> A + Send + Sync,
{
    /// Builds the aggregator; `combine` must be associative.
    pub fn new(lift: L, combine: C) -> Self {
        Self {
            lift,
            combine,
            _marker: PhantomData,
        }
    }
}

impl<I, A, L, C> Aggregator for FoldAgg<I, A, L, C>
where
    I: PodValue,
    A: PodValue,
    L: Fn(I) -> A + Send + Sync,
    C: Fn(A, A) -> A + Send + Sync,
{
    type Input = I;
    type Acc = A;
    fn lift(&self, v: I) -> A {
        (self.lift)(v)
    }
    fn combine(&self, a: A, b: A) -> A {
        (self.combine)(a, b)
    }
}

/// Counters describing what a [`StreamGroupBy`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupByStats {
    /// Records accepted by `push` / `push_record` so far.
    pub records_pushed: u64,
    /// Aggregated runs spilled to disk so far.
    pub spilled_runs: usize,
    /// Bytes of partial aggregates written to spill files so far.
    pub spilled_bytes: u64,
    /// Partial-aggregate records produced so far (spilled runs + tail);
    /// `records_pushed − partial_aggregates` records were collapsed before
    /// ever reaching disk.
    pub partial_aggregates: u64,
}

/// Bounded-memory streaming group-by over pushed `(key, value)` records.
///
/// See the module docs for the design; in short: buffer → semisort
/// → fold per group → spill one partial per distinct key → merge-combine
/// partials at read time.
pub struct StreamGroupBy<K: IntegerKey, G: Aggregator> {
    cfg: StreamConfig,
    agg: G,
    run_capacity: usize,
    buffer: Vec<(K, G::Input)>,
    runs: Vec<SpilledRun>,
    space: Option<SpillSpace>,
    stats: GroupByStats,
}

impl<K: IntegerKey, G: Aggregator> StreamGroupBy<K, G> {
    /// Group-by with the default [`StreamConfig`] (256 MiB budget).
    pub fn new(agg: G) -> Self {
        Self::with_config(agg, StreamConfig::default())
    }

    pub fn with_config(agg: G, cfg: StreamConfig) -> Self {
        // Peak transient footprint per buffered record: the pushed record
        // itself, plus the lifted `(u64, Acc)` image, plus semisort's scratch
        // copy of that image.  Sizing the run from that sum (not just the
        // input record) keeps aggregation within the configured budget.
        let record_footprint =
            std::mem::size_of::<(K, G::Input)>() + 2 * std::mem::size_of::<(u64, G::Acc)>();
        let run_capacity = (cfg.memory_budget_bytes / record_footprint.max(1)).max(64);
        Self {
            cfg,
            agg,
            run_capacity,
            buffer: Vec::new(),
            runs: Vec::new(),
            space: None,
            stats: GroupByStats::default(),
        }
    }

    /// Counters (spills, collapse ratio, ...).
    pub fn stats(&self) -> &GroupByStats {
        &self.stats
    }

    /// Number of runs the final merge will see.
    pub fn run_count(&self) -> usize {
        self.runs.len() + usize::from(!self.buffer.is_empty())
    }

    /// Appends a batch of records, aggregating and spilling full runs.
    pub fn push(&mut self, records: &[(K, G::Input)]) -> io::Result<()> {
        let mut rest = records;
        while !rest.is_empty() {
            let space = self.run_capacity - self.buffer.len();
            let take = space.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.run_capacity {
                self.spill_partial_run()?;
            }
        }
        self.stats.records_pushed += records.len() as u64;
        Ok(())
    }

    /// Appends a single record.
    pub fn push_record(&mut self, key: K, value: G::Input) -> io::Result<()> {
        self.push(&[(key, value)])
    }

    /// Semisorts the buffered run and folds each group into one partial
    /// aggregate, returned sorted by (ordered) key.
    fn aggregate_run(&mut self) -> Vec<(u64, G::Acc)> {
        let agg = &self.agg;
        let mut recs: Vec<(u64, G::Acc)> = self
            .buffer
            .drain(..)
            .map(|(k, v)| (k.to_ordered_u64(), agg.lift(v)))
            .collect();
        let semi_cfg = SemisortConfig {
            sort: self.cfg.sort.clone(),
            ..SemisortConfig::default()
        };
        let groups = semisort_pairs_with(&mut recs, &semi_cfg);
        let mut out: Vec<(u64, G::Acc)> = groups
            .iter()
            .map(|g| {
                let mut acc = recs[g.start].1;
                for &(_, a) in &recs[g.start + 1..g.end] {
                    acc = agg.combine(acc, a);
                }
                (g.key, acc)
            })
            .collect();
        // Runs must be spilled sorted by key for the k-way merge; only the
        // distinct keys of the run are sorted, not its records.
        dtsort::sort_by_key(&mut out, |r| r.0);
        self.stats.partial_aggregates += out.len() as u64;
        out
    }

    fn spill_partial_run(&mut self) -> io::Result<()> {
        let partial = self.aggregate_run();
        if self.space.is_none() {
            self.space = Some(SpillSpace::create(self.cfg.spill_dir.as_ref())?);
        }
        let dir = &self.space.as_ref().expect("spill space just created").dir;
        let path = dir.join(format!("agg-{:06}.bin", self.runs.len()));
        let bytes = write_run(&path, &partial)?;
        self.runs.push(SpilledRun {
            path,
            len: partial.len(),
        });
        self.stats.spilled_runs += 1;
        self.stats.spilled_bytes += bytes;
        Ok(())
    }

    /// Finishes the group-by: merges all per-run partials, combining equal
    /// keys, into a stream of `(key, aggregate)` pairs in increasing key
    /// order (one pair per distinct key of the whole stream).
    pub fn finish(mut self) -> io::Result<GroupedStream<K, G>> {
        let tail = self.aggregate_run();
        let reader_budget =
            (self.cfg.merge_read_buffer_bytes / self.runs.len().max(1)).clamp(4096, 8 << 20);
        let mut cursors: Vec<RunCursor<G::Acc>> = Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            cursors.push(RunCursor::open_disk(run, reader_budget)?);
        }
        if !tail.is_empty() {
            cursors.push(RunCursor::from_memory(tail));
        }
        Ok(GroupedStream {
            tree: LoserTree::new(cursors, lt_by_ordered_key::<G::Acc>),
            agg: self.agg,
            pending: None,
            _space: self.space.take(),
            _key: PhantomData,
        })
    }

    /// [`StreamGroupBy::finish`], materialized into a vector.
    pub fn finish_vec(self) -> io::Result<Vec<(K, G::Acc)>> {
        Ok(self.finish()?.collect())
    }
}

type AggMergeTree<A> = LoserTree<RunCursor<A>, fn(&(u64, A), &(u64, A)) -> bool>;

/// Streaming output of a [`StreamGroupBy`]: `(key, aggregate)` pairs in
/// increasing key order.  Holds the spill directory alive until dropped.
pub struct GroupedStream<K: IntegerKey, G: Aggregator> {
    tree: AggMergeTree<G::Acc>,
    agg: G,
    /// The first partial of the *next* key, already popped from the tree.
    pending: Option<(u64, G::Acc)>,
    _space: Option<SpillSpace>,
    _key: PhantomData<K>,
}

impl<K: IntegerKey, G: Aggregator> Iterator for GroupedStream<K, G> {
    type Item = (K, G::Acc);

    fn next(&mut self) -> Option<(K, G::Acc)> {
        let (key, mut acc) = self.pending.take().or_else(|| self.tree.pop())?;
        loop {
            match self.tree.pop() {
                // The loser tree yields equal keys in run order, so partials
                // combine in push order.
                Some((k, a)) if k == key => acc = self.agg.combine(acc, a),
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        Some((K::from_ordered_u64(key), acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::HashMap;

    fn tiny_cfg(budget: usize) -> StreamConfig {
        StreamConfig {
            memory_budget_bytes: budget,
            sort: dtsort::SortConfig {
                base_case_threshold: 64,
                ..Default::default()
            },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn counts_match_hashmap_across_spilled_runs() {
        let rng = Rng::new(1);
        let n = 40_000usize;
        let keys: Vec<u64> = (0..n).map(|i| rng.ith_in(i as u64, 777)).collect();
        let mut gb: StreamGroupBy<u64, CountAgg> =
            StreamGroupBy::with_config(CountAgg, tiny_cfg(16 << 10));
        for chunk in keys.chunks(997) {
            let recs: Vec<(u64, ())> = chunk.iter().map(|&k| (k, ())).collect();
            gb.push(&recs).unwrap();
        }
        assert!(gb.stats().spilled_runs > 2, "stats: {:?}", gb.stats());
        let mut want: HashMap<u64, u64> = HashMap::new();
        for &k in &keys {
            *want.entry(k).or_default() += 1;
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), want.len());
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        for &(k, c) in &got {
            assert_eq!(c, want[&k], "key {k}");
        }
    }

    #[test]
    fn heavy_key_stream_never_materializes_duplicates() {
        // 80% of the stream is one key; each run spills at most one partial
        // for it, so the spilled volume collapses.
        let rng = Rng::new(2);
        let n = 60_000usize;
        let mut gb: StreamGroupBy<u32, CountAgg> =
            StreamGroupBy::with_config(CountAgg, tiny_cfg(16 << 10));
        for i in 0..n {
            let k = if rng.ith_f64(i as u64) < 0.8 {
                7
            } else {
                rng.ith_in(i as u64, 200) as u32
            };
            gb.push_record(k, ()).unwrap();
        }
        let stats = gb.stats().clone();
        assert!(stats.spilled_runs > 2);
        assert!(
            stats.partial_aggregates < stats.records_pushed / 4,
            "duplicates must collapse before spilling: {stats:?}"
        );
        let got = gb.finish_vec().unwrap();
        let seven = got.iter().find(|&&(k, _)| k == 7).unwrap();
        assert!(seven.1 >= (n as u64) * 7 / 10);
        assert_eq!(got.iter().map(|&(_, c)| c).sum::<u64>(), n as u64);
    }

    #[test]
    fn sum_min_max_aggregations() {
        let rng = Rng::new(3);
        let n = 30_000usize;
        let records: Vec<(u32, u64)> = (0..n)
            .map(|i| {
                (
                    rng.ith_in(i as u64, 50) as u32,
                    rng.fork(9).ith_in(i as u64, 1000),
                )
            })
            .collect();
        let mut want_sum: HashMap<u32, u64> = HashMap::new();
        let mut want_min: HashMap<u32, u64> = HashMap::new();
        let mut want_max: HashMap<u32, u64> = HashMap::new();
        for &(k, v) in &records {
            *want_sum.entry(k).or_default() += v;
            want_min
                .entry(k)
                .and_modify(|m| *m = (*m).min(v))
                .or_insert(v);
            want_max
                .entry(k)
                .and_modify(|m| *m = (*m).max(v))
                .or_insert(v);
        }
        let run = |agg: &dyn Fn() -> Vec<(u32, u64)>| agg();
        let sums = run(&|| {
            let mut gb = StreamGroupBy::with_config(SumAgg, tiny_cfg(16 << 10));
            gb.push(&records).unwrap();
            gb.finish_vec().unwrap()
        });
        let mins = run(&|| {
            let mut gb = StreamGroupBy::with_config(MinAgg, tiny_cfg(16 << 10));
            gb.push(&records).unwrap();
            gb.finish_vec().unwrap()
        });
        let maxs = run(&|| {
            let mut gb = StreamGroupBy::with_config(MaxAgg, tiny_cfg(16 << 10));
            gb.push(&records).unwrap();
            gb.finish_vec().unwrap()
        });
        for &(k, s) in &sums {
            assert_eq!(s, want_sum[&k]);
        }
        for &(k, m) in &mins {
            assert_eq!(m, want_min[&k]);
        }
        for &(k, m) in &maxs {
            assert_eq!(m, want_max[&k]);
        }
    }

    #[test]
    fn custom_fold_aggregator() {
        // Track (count, sum) pairs through a custom fold.
        let agg = FoldAgg::new(
            |v: u64| [1u64, v],
            |a: [u64; 2], b: [u64; 2]| [a[0] + b[0], a[1] + b[1]],
        );
        let mut gb: StreamGroupBy<u64, _> = StreamGroupBy::with_config(agg, tiny_cfg(16 << 10));
        for i in 0..20_000u64 {
            gb.push_record(i % 10, i).unwrap();
        }
        let got = gb.finish_vec().unwrap();
        assert_eq!(got.len(), 10);
        for &(k, [cnt, sum]) in &got {
            assert_eq!(cnt, 2000);
            // Sum of the arithmetic progression k, k+10, ..., k+19990.
            let want: u64 = (0..2000u64).map(|j| k + 10 * j).sum();
            assert_eq!(sum, want, "key {k}");
        }
    }

    #[test]
    fn signed_keys_and_in_memory_only() {
        let mut gb: StreamGroupBy<i32, CountAgg> = StreamGroupBy::new(CountAgg);
        for &k in &[-5i32, 3, -5, 0, 3, -5] {
            gb.push_record(k, ()).unwrap();
        }
        assert_eq!(gb.stats().spilled_runs, 0);
        let got = gb.finish_vec().unwrap();
        assert_eq!(got, vec![(-5, 3), (0, 1), (3, 2)]);
    }

    #[test]
    fn empty_group_by_stream() {
        let gb: StreamGroupBy<u64, CountAgg> = StreamGroupBy::new(CountAgg);
        assert_eq!(gb.run_count(), 0);
        assert_eq!(gb.finish().unwrap().count(), 0);
    }
}
