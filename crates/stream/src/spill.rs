//! On-disk run formats and buffered run readers.
//!
//! A spilled run is written in the **flat** encoding (the default,
//! [`dtsort::SpillCompression::Off`]) or the **compressed block**
//! encoding ([`dtsort::SpillCompression::DeltaLz`]).  The flat encoding
//! is a sequence of records in one of two formats, chosen statically by
//! the value type ([`SpillValue`]):
//!
//! **Fixed** — for [`PodValue`] types, whose in-memory byte image is the
//! record payload:
//!
//! ```text
//! ┌────────────────────────┬───────────────────┐
//! │ key (8 bytes, LE)      │ value (V bytes)   │  × run length
//! └────────────────────────┴───────────────────┘
//! ```
//!
//! **Variable-length** — for [`VarValue`] types (`Vec<u8>`, `String`,
//! `Box<[u8]>`), whose payload is length-prefixed:
//!
//! ```text
//! ┌────────────────────────┬────────────────────┬───────────────────┐
//! │ key (8 bytes, LE)      │ value_len (u32 LE) │ value bytes       │  × run length
//! └────────────────────────┴────────────────────┴───────────────────┘
//! ```
//!
//! Keys are stored in the ordered-`u64` domain
//! ([`dtsort::IntegerKey::to_ordered_u64`]), so the merge compares raw
//! `u64`s and the original key type is reconstructed only on output.
//! Fixed-format values are written as their in-memory bytes, which is why
//! they must implement the padding-free [`PodValue`] contract; var-format
//! values stream through a reusable side buffer sized to the largest value
//! seen, never through `size_of::<V>()` scratch.
//!
//! The **compressed block** encoding groups records into independently
//! decodable blocks (at most [`BLOCK_MAX_RECORDS`] records or roughly
//! [`BLOCK_RAW_TARGET`] payload bytes each):
//!
//! ```text
//! ┌──────────────┬─────────────┬─────────────┬─────────────┬───────┬─────┐
//! │ record_count │ key_stream  │ payload_raw │ payload_enc │ crc32 │ enc │
//! │ (u32 LE)     │ _len (u32)  │ _len (u32)  │ _len (u32)  │ (u32) │ u8  │
//! ├──────────────┴─────────────┴─────────────┴─────────────┴───────┴─────┤
//! │ key stream: first key absolute, then deltas (LEB128 varints)         │
//! ├──────────────────────────────────────────────────────────────────────┤
//! │ payload: concatenated record payloads, LZ-compressed when            │
//! │ enc = 1, stored raw when enc = 0 (incompressible fallback)           │
//! └──────────────────────────────────────────────────────────────────────┘  × blocks
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the key stream followed by the encoded
//! payload, verified on decode **before** either section is interpreted —
//! silent bit rot in a spill file surfaces as
//! [`io::ErrorKind::InvalidData`] instead of wrong records.
//!
//! Keys within a run are sorted, so the deltas are non-negative and
//! small — most encode in one byte.  The payload bytes are exactly what
//! the flat encoding would have written after each key (length prefixes
//! included), so one `spill_read` path decodes values from either
//! encoding.  Decoding is transparent: [`RunReader`] yields identical
//! records for both, which is what the compression differential tests
//! assert end to end.
//!
//! Every [`SpilledRun`] records its record count, its exact on-disk byte
//! size *and* its pre-compression byte size, so truncated spill files are
//! rejected at open time in either encoding, and a corrupted length
//! prefix or block header can never read past the run (or allocate more
//! than the run's recorded raw size).

use crate::codec;
use crate::spillio::{SpillIoHandle, SpillRead, SpillWrite};
use dtsort::{IntegerKey, RunReport, SortConfig, SpillCompression, SpillRetryPolicy};
use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::mem::size_of;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Typed payload of a spill-stack failure, carried *inside* an
/// [`io::Error`] (via [`io::Error::new`]'s boxed-error slot) so every
/// existing `io::Result` signature keeps working while callers that care
/// can recover the context with [`SpillError::from_io`].
///
/// The wrapping preserves the source's [`io::ErrorKind`], so
/// `e.kind() == ErrorKind::StorageFull` still distinguishes ENOSPC from
/// corruption (`InvalidData`) or a quota rejection (`QuotaExceeded`)
/// without any downcast.
#[derive(Debug)]
pub struct SpillError {
    /// The spill file (or directory, for quota failures) involved.
    pub path: PathBuf,
    /// Engine-assigned index of the run being written or read when the
    /// operation failed.
    pub run_index: usize,
    /// Bytes the failed operation attempted to move.
    pub bytes_attempted: u64,
    source: io::Error,
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spill run {} ({}, {} bytes attempted): {}",
            self.run_index,
            self.path.display(),
            self.bytes_attempted,
            self.source
        )
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl SpillError {
    /// Builds the typed payload; pair with [`SpillError::into_io`].
    pub fn new(path: PathBuf, run_index: usize, bytes_attempted: u64, source: io::Error) -> Self {
        Self {
            path,
            run_index,
            bytes_attempted,
            source,
        }
    }

    /// Wraps this payload back into an [`io::Error`] of the *source's*
    /// kind, so kind-based classification (transient vs permanent,
    /// ENOSPC vs corruption) is unaffected by the added context.
    pub fn into_io(self) -> io::Error {
        let kind = self.source.kind();
        io::Error::new(kind, self)
    }

    /// The underlying I/O error.
    pub fn source_io(&self) -> &io::Error {
        &self.source
    }

    /// Recovers the typed payload from an [`io::Error`] produced by
    /// [`SpillError::into_io`], if that is what `e` carries.
    pub fn from_io(e: &io::Error) -> Option<&SpillError> {
        e.get_ref()?.downcast_ref()
    }
}

/// Wraps `source` with spill context unless it already carries a
/// [`SpillError`] (an error can cross several layers that each know the
/// path; the innermost wrap wins — it has the most precise context).
pub(crate) fn wrap_spill_err(
    path: &Path,
    run_index: usize,
    bytes_attempted: u64,
    source: io::Error,
) -> io::Error {
    if SpillError::from_io(&source).is_some() {
        return source;
    }
    SpillError::new(path.to_path_buf(), run_index, bytes_attempted, source).into_io()
}

/// Runs `op`, retrying transient failures ([`SpillRetryPolicy::is_transient`])
/// up to `policy.max_retries` times with the policy's deterministic
/// backoff.  Returns the value plus the number of retries spent; the
/// first permanent error (or transient-retry exhaustion) surfaces as-is.
pub(crate) fn with_transient_retry<T>(
    policy: &SpillRetryPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<(T, u32)> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok((v, attempt)),
            Err(e) if attempt < policy.max_retries && SpillRetryPolicy::is_transient(e.kind()) => {
                if obs::enabled() {
                    crate::metrics::m().spill_retries.incr();
                }
                let backoff = policy.backoff(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A unique, self-deleting directory holding one consumer's spill files
/// (used by both the streaming sorter and the streaming group-by).
#[derive(Debug)]
pub(crate) struct SpillSpace {
    pub(crate) dir: PathBuf,
}

static SPILL_SPACE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SpillSpace {
    pub(crate) fn create(base: Option<&PathBuf>) -> io::Result<Self> {
        let base = base.cloned().unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "pisort-stream-{}-{}",
            std::process::id(),
            SPILL_SPACE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = base.join(unique);
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }
}

impl Drop for SpillSpace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

pub(crate) mod sealed {
    pub trait Sealed {}
}

/// Marker for values that can be spilled by their in-memory byte image
/// (the *fixed* on-disk record format).
///
/// # Safety
///
/// Implementors must be `Copy` types with **no padding bytes** (every byte
/// of the in-memory representation is initialized) for which every byte
/// pattern written from a valid value reads back as that same valid value.
/// All primitive numeric types and fixed-size arrays of them qualify;
/// structs/tuples with padding do not.
pub unsafe trait PodValue: Copy + Send + Sync + 'static {}

/// Values spilled through the *variable-length* on-disk record format:
/// anything serializable to (and from) a byte slice.
///
/// Implemented for `Vec<u8>`, `String` and `Box<[u8]>`.  `from_spill_bytes`
/// may fail with [`io::ErrorKind::InvalidData`] when the bytes violate the
/// type's invariants (e.g. non-UTF-8 bytes read back as a `String`), which
/// surfaces file corruption instead of panicking mid-merge.
pub trait VarValue: Clone + Send + Sync + 'static {
    /// The serialized payload of this value.
    fn as_spill_bytes(&self) -> &[u8];
    /// Reconstructs a value from a payload previously produced by
    /// [`VarValue::as_spill_bytes`].
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self>;
}

impl VarValue for Vec<u8> {
    fn as_spill_bytes(&self) -> &[u8] {
        self
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        Ok(bytes.to_vec())
    }
}

impl VarValue for Box<[u8]> {
    fn as_spill_bytes(&self) -> &[u8] {
        self
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        Ok(bytes.to_vec().into_boxed_slice())
    }
}

impl VarValue for String {
    fn as_spill_bytes(&self) -> &[u8] {
        self.as_bytes()
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spilled String payload is not UTF-8: {e}"),
            )
        })
    }
}

/// A value the streaming sorter and group-by can spill to disk: either a
/// [`PodValue`] (fixed-size records, zero-copy byte images) or a
/// [`VarValue`] (`Vec<u8>`, `String`, `Box<[u8]>`; length-prefixed
/// records).
///
/// This trait is **sealed**: the two families have different on-disk
/// formats and different in-memory sort/merge strategies, and each listed
/// type is wired to the right one here.  User code only ever names the
/// trait in bounds (`StreamSorter<u64, String>` just works).
pub trait SpillValue: Clone + Send + Sync + 'static + sealed::Sealed {
    /// `Some(n)` for fixed `n`-byte payloads, `None` for length-prefixed
    /// payloads.
    #[doc(hidden)]
    const SPILL_FIXED_SIZE: Option<usize>;

    /// On-disk payload bytes of this value (length prefix included).
    #[doc(hidden)]
    fn spill_size(&self) -> usize;

    /// Writes this value's payload (length prefix included).  The sink is
    /// a `dyn Write` so the same serializer feeds both the flat spill
    /// file and the in-memory payload buffer of a compressed block.
    #[doc(hidden)]
    fn spill_write(&self, w: &mut dyn Write) -> io::Result<()>;

    /// Reads one payload; `payload_budget` is the number of bytes left in
    /// the run (or decoded block) after the record's key, bounding length
    /// prefixes so a corrupted prefix cannot read past the run (or
    /// allocate unboundedly).
    #[doc(hidden)]
    fn spill_read(r: &mut dyn Read, scratch: &mut Vec<u8>, payload_budget: u64) -> io::Result<Self>
    where
        Self: Sized;

    /// A cheap placeholder value for pre-sized output buffers.
    #[doc(hidden)]
    fn spill_placeholder() -> Self;

    /// Stably sorts one buffered run by key, seeding heavy-key detection
    /// with `carry` (see [`dtsort::sort_run_pairs_with`]).
    #[doc(hidden)]
    fn sort_spill_run<K: IntegerKey>(
        buffer: &mut Vec<(K, Self)>,
        cfg: &SortConfig,
        carry: &[u64],
    ) -> RunReport
    where
        Self: Sized;

    /// Stably k-way merges the sorted `runs` plus the sorted in-memory
    /// `tail` into `out` (ties favour earlier runs; the tail is last).
    #[doc(hidden)]
    fn merge_spill_runs_into<K: IntegerKey>(
        runs: Vec<Vec<(K, Self)>>,
        tail: Vec<(K, Self)>,
        out: &mut [(K, Self)],
    ) where
        Self: Sized;

    /// Strict-weak order of merge records, used by the final streaming
    /// loser tree.  The default compares ordered-`u64` keys alone; values
    /// with an embedded full key (string-keyed records) override it to
    /// tie-break equal key prefixes on the full key bytes, which is what
    /// makes the 8-byte-prefix mapping order-preserving end to end.
    #[doc(hidden)]
    fn spill_record_lt(a: &(u64, Self), b: &(u64, Self)) -> bool
    where
        Self: Sized,
    {
        a.0 < b.0
    }

    /// Full-key bytes embedded in the payload, for values that carry
    /// their own key (string-keyed records).  The streaming group-by uses
    /// this to sub-group records whose `u64` key prefixes collide and to
    /// refuse to combine partials of different full keys.
    #[doc(hidden)]
    fn spill_embedded_key(&self) -> Option<&[u8]> {
        None
    }
}

/// A value every bit of which is zero (valid for any [`PodValue`]).
pub(crate) fn pod_zeroed<V: PodValue>() -> V {
    // SAFETY: PodValue admits every initialized byte pattern, including
    // all-zeros.
    unsafe { std::mem::zeroed() }
}

fn value_bytes<V: PodValue>(v: &V) -> &[u8] {
    // SAFETY: PodValue guarantees no padding, so all size_of::<V>() bytes
    // are initialized.
    unsafe { std::slice::from_raw_parts((v as *const V).cast::<u8>(), size_of::<V>()) }
}

fn value_from_bytes<V: PodValue>(bytes: &[u8]) -> V {
    debug_assert_eq!(bytes.len(), size_of::<V>());
    // SAFETY: the buffer holds size_of::<V>() initialized bytes previously
    // produced by `value_bytes` for a valid value of V.
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<V>()) }
}

fn short_run_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, what.to_string())
}

fn pod_spill_read<V: PodValue>(
    r: &mut dyn Read,
    scratch: &mut Vec<u8>,
    payload_budget: u64,
) -> io::Result<V> {
    let n = size_of::<V>();
    if (n as u64) > payload_budget {
        return Err(short_run_err("spilled run ended mid-value"));
    }
    scratch.resize(n, 0);
    r.read_exact(scratch)?;
    Ok(value_from_bytes(scratch))
}

fn var_spill_write<V: VarValue>(v: &V, w: &mut dyn Write) -> io::Result<()> {
    let bytes = v.as_spill_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "value of {} bytes exceeds the u32 spill length prefix",
                bytes.len()
            ),
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)
}

fn var_spill_read<V: VarValue>(
    r: &mut dyn Read,
    scratch: &mut Vec<u8>,
    payload_budget: u64,
) -> io::Result<V> {
    if payload_budget < 4 {
        return Err(short_run_err("spilled run ended mid-length-prefix"));
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from(u32::from_le_bytes(len_bytes));
    if len > payload_budget - 4 {
        return Err(short_run_err(
            "value length prefix exceeds the bytes remaining in the spilled run",
        ));
    }
    scratch.resize(len as usize, 0);
    r.read_exact(scratch)?;
    V::from_spill_bytes(scratch)
}

macro_rules! impl_pod_spill {
    ($($t:ty),* $(,)?) => {$(
        unsafe impl PodValue for $t {}
        impl sealed::Sealed for $t {}
        impl SpillValue for $t {
            const SPILL_FIXED_SIZE: Option<usize> = Some(size_of::<$t>());
            fn spill_size(&self) -> usize {
                size_of::<$t>()
            }
            fn spill_write(&self, w: &mut dyn Write) -> io::Result<()> {
                w.write_all(value_bytes(self))
            }
            fn spill_read(
                r: &mut dyn Read,
                scratch: &mut Vec<u8>,
                payload_budget: u64,
            ) -> io::Result<Self> {
                pod_spill_read(r, scratch, payload_budget)
            }
            fn spill_placeholder() -> Self {
                pod_zeroed()
            }
            fn sort_spill_run<K: IntegerKey>(
                buffer: &mut Vec<(K, Self)>,
                cfg: &SortConfig,
                carry: &[u64],
            ) -> RunReport {
                crate::sorter::pod_sort_run(buffer, cfg, carry)
            }
            fn merge_spill_runs_into<K: IntegerKey>(
                runs: Vec<Vec<(K, Self)>>,
                tail: Vec<(K, Self)>,
                out: &mut [(K, Self)],
            ) {
                crate::sorter::pod_merge_runs_into(runs, tail, out)
            }
        }
    )*};
}
impl_pod_spill!(
    (),
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
);

unsafe impl<T: PodValue, const N: usize> PodValue for [T; N] {}
impl<T: PodValue, const N: usize> sealed::Sealed for [T; N] {}
impl<T: PodValue, const N: usize> SpillValue for [T; N] {
    const SPILL_FIXED_SIZE: Option<usize> = Some(size_of::<[T; N]>());
    fn spill_size(&self) -> usize {
        size_of::<Self>()
    }
    fn spill_write(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(value_bytes(self))
    }
    fn spill_read(
        r: &mut dyn Read,
        scratch: &mut Vec<u8>,
        payload_budget: u64,
    ) -> io::Result<Self> {
        pod_spill_read(r, scratch, payload_budget)
    }
    fn spill_placeholder() -> Self {
        pod_zeroed()
    }
    fn sort_spill_run<K: IntegerKey>(
        buffer: &mut Vec<(K, Self)>,
        cfg: &SortConfig,
        carry: &[u64],
    ) -> RunReport {
        crate::sorter::pod_sort_run(buffer, cfg, carry)
    }
    fn merge_spill_runs_into<K: IntegerKey>(
        runs: Vec<Vec<(K, Self)>>,
        tail: Vec<(K, Self)>,
        out: &mut [(K, Self)],
    ) {
        crate::sorter::pod_merge_runs_into(runs, tail, out)
    }
}

macro_rules! impl_var_spill {
    ($($t:ty),* $(,)?) => {$(
        impl sealed::Sealed for $t {}
        impl SpillValue for $t {
            const SPILL_FIXED_SIZE: Option<usize> = None;
            fn spill_size(&self) -> usize {
                4 + self.as_spill_bytes().len()
            }
            fn spill_write(&self, w: &mut dyn Write) -> io::Result<()> {
                var_spill_write(self, w)
            }
            fn spill_read(
                r: &mut dyn Read,
                scratch: &mut Vec<u8>,
                payload_budget: u64,
            ) -> io::Result<Self> {
                var_spill_read(r, scratch, payload_budget)
            }
            fn spill_placeholder() -> Self {
                <$t as VarValue>::from_spill_bytes(&[]).expect("empty payload is valid")
            }
            fn sort_spill_run<K: IntegerKey>(
                buffer: &mut Vec<(K, Self)>,
                cfg: &SortConfig,
                carry: &[u64],
            ) -> RunReport {
                crate::sorter::var_sort_run(buffer, cfg, carry)
            }
            fn merge_spill_runs_into<K: IntegerKey>(
                runs: Vec<Vec<(K, Self)>>,
                tail: Vec<(K, Self)>,
                out: &mut [(K, Self)],
            ) {
                crate::sorter::var_merge_runs_into(runs, tail, out)
            }
        }
    )*};
}
impl_var_spill!(Vec<u8>, String, Box<[u8]>);

/// Target decoded payload bytes per compressed block.  Blocks are decoded
/// whole on the read side, so this (plus one oversized value) bounds the
/// reader's block buffer.
pub(crate) const BLOCK_RAW_TARGET: usize = 64 << 10;
/// Upper bound on records per compressed block, bounding the decoded key
/// buffer even for zero-payload values.
pub(crate) const BLOCK_MAX_RECORDS: usize = 8192;
/// Bytes of the fixed compressed-block header:
/// `record_count u32 | key_stream_len u32 | payload_raw_len u32 |
/// payload_enc_len u32 | crc32 u32 | enc u8`.
const BLOCK_HEADER_BYTES: usize = 21;

fn bad_run_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Writes the compressed block encoding of `records`; returns
/// `(bytes_on_disk, raw_bytes)` where `raw_bytes` is what the flat
/// encoding would have written.
fn write_run_blocks<W: Write, K: IntegerKey, V: SpillValue>(
    writer: &mut W,
    records: &[(K, V)],
) -> io::Result<(u64, u64)> {
    let mut bytes = 0u64;
    let mut raw_bytes = 0u64;
    let mut key_stream = Vec::new();
    let mut payload = Vec::new();
    let mut enc = Vec::new();
    let mut i = 0usize;
    while i < records.len() {
        key_stream.clear();
        payload.clear();
        let mut prev_key = 0u64;
        let mut count = 0usize;
        while i < records.len()
            && count < BLOCK_MAX_RECORDS
            && (count == 0 || payload.len() < BLOCK_RAW_TARGET)
        {
            let (k, v) = &records[i];
            let key = k.to_ordered_u64();
            if count == 0 {
                codec::write_varint(&mut key_stream, key);
            } else {
                let delta = key.checked_sub(prev_key).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "compressed spill requires records sorted by ordered-u64 key",
                    )
                })?;
                codec::write_varint(&mut key_stream, delta);
            }
            prev_key = key;
            v.spill_write(&mut payload)?;
            raw_bytes += 8 + v.spill_size() as u64;
            count += 1;
            i += 1;
        }
        enc.clear();
        codec::lz_compress(&payload, &mut enc);
        // Store-raw fallback: incompressible blocks cost 21 header bytes,
        // never an inflated payload.
        let (flag, body): (u8, &[u8]) = if enc.len() < payload.len() {
            (1, &enc)
        } else {
            (0, &payload)
        };
        let crc = codec::crc32_update(codec::crc32_update(0, &key_stream), body);
        let too_big = |_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "compressed block section exceeds the u32 header field",
            )
        };
        writer.write_all(&(count as u32).to_le_bytes())?;
        writer.write_all(
            &u32::try_from(key_stream.len())
                .map_err(too_big)?
                .to_le_bytes(),
        )?;
        writer.write_all(&u32::try_from(payload.len()).map_err(too_big)?.to_le_bytes())?;
        writer.write_all(&u32::try_from(body.len()).map_err(too_big)?.to_le_bytes())?;
        writer.write_all(&crc.to_le_bytes())?;
        writer.write_all(&[flag])?;
        writer.write_all(&key_stream)?;
        writer.write_all(body)?;
        bytes += (BLOCK_HEADER_BYTES + key_stream.len() + body.len()) as u64;
    }
    Ok((bytes, raw_bytes))
}

/// Writes a sorted run to `path` through the `io` backend in the given
/// encoding and syncs it to disk; returns the run's full metadata.
///
/// The final durability step ([`SpillWrite::finish`]) is part of the
/// spill contract: a run is recorded as spilled (and its buffered records
/// dropped) only after this returns, so a run the stats report as spilled
/// is fully on disk — a panic or crash later can never leave a recorded
/// run truncated the way a dropped buffered writer silently would.
pub(crate) fn write_run<K: IntegerKey, V: SpillValue>(
    io: &SpillIoHandle,
    path: &Path,
    records: &[(K, V)],
    compression: SpillCompression,
) -> io::Result<SpilledRun> {
    let mut writer: Box<dyn SpillWrite> = io.create(path)?;
    let (bytes, raw_bytes) = match compression {
        SpillCompression::Off => {
            let mut bytes = 0u64;
            for (key, value) in records {
                writer.write_all(&key.to_ordered_u64().to_le_bytes())?;
                value.spill_write(&mut writer)?;
                bytes += 8 + value.spill_size() as u64;
            }
            (bytes, bytes)
        }
        SpillCompression::DeltaLz => write_run_blocks(&mut writer, records)?,
    };
    if obs::enabled() {
        let start = std::time::Instant::now();
        writer.finish()?;
        let metrics = crate::metrics::m();
        metrics.fsync_ns.record_duration(start.elapsed());
        metrics.bytes_written.add(bytes);
        metrics.raw_bytes_spilled.add(raw_bytes);
    } else {
        writer.finish()?;
    }
    Ok(SpilledRun {
        path: path.to_path_buf(),
        len: records.len(),
        bytes,
        raw_bytes,
        compression,
        retries: 0,
    })
}

/// [`write_run`] with transient-failure retry per `policy`.
///
/// Each attempt recreates the file from scratch (`create` truncates), and
/// a failed attempt's partial file is removed before backing off, so a
/// torn or unsynced earlier attempt can never leak bytes into the run
/// that finally succeeds.  The returned run's `retries` records the
/// attempts spent, so callers can fold it into engine stats.
pub(crate) fn write_run_with_retry<K: IntegerKey, V: SpillValue>(
    io: &SpillIoHandle,
    path: &Path,
    records: &[(K, V)],
    compression: SpillCompression,
    policy: &SpillRetryPolicy,
) -> io::Result<SpilledRun> {
    let (mut run, retries) = with_transient_retry(policy, || {
        write_run(io, path, records, compression).inspect_err(|_| {
            std::fs::remove_file(path).ok();
        })
    })?;
    run.retries = retries;
    Ok(run)
}

/// Metadata of one spilled run: record count, exact on-disk byte size,
/// pre-compression byte size and encoding, so readers can reject
/// truncated or overcounted runs in either encoding (and bound their
/// decode buffers by `raw_bytes`).
#[derive(Debug)]
pub(crate) struct SpilledRun {
    pub path: PathBuf,
    pub len: usize,
    pub bytes: u64,
    /// Bytes the flat encoding would occupy; equals `bytes` when
    /// `compression` is `Off`.
    pub raw_bytes: u64,
    pub compression: SpillCompression,
    /// Transient-failure retries spent writing this run
    /// ([`write_run_with_retry`]); folded into engine stats by the
    /// sorter/group-by accounting.
    pub retries: u32,
}

/// Read-buffer bytes granted to each of `runs` spilled runs during a
/// merge: an equal split of `total_bytes`, capped at 8 MiB per run and
/// floored at 64 bytes (just enough to keep `BufReader` functional).
///
/// The aggregate across all runs is therefore
/// `max(total_bytes, 64 · runs)` — the old 4 KiB floor let a 64-run merge
/// claim 256 KiB of buffers against a 16 KiB budget.  Callers that want
/// read-ahead gate on [`crate::sorter::MIN_PREFETCH_RUN_BUDGET`] instead
/// of relying on a generous floor here.  The single clamp shared by the
/// sorter and the group-by, so the two paths cannot drift.
pub(crate) fn per_run_reader_budget(total_bytes: usize, runs: usize) -> usize {
    (total_bytes / runs.max(1)).clamp(64, 8 << 20)
}

/// Whether `buffered_bytes` of variable-length payloads justify spilling a
/// run: one budget share out of `shares`
/// ([`dtsort::StreamConfig::spill_shares`] — the rest is sort/aggregation
/// working space plus, when pipelining, the payload bytes of in-flight
/// runs).  Always false for fixed-size values, whose footprint the
/// record-count capacity already bounds.  One policy shared by the sorter
/// and the group-by, so the two engines cannot drift.
pub(crate) fn var_payload_should_spill<V: SpillValue>(
    buffered_bytes: usize,
    memory_budget_bytes: usize,
    shares: usize,
) -> bool {
    V::SPILL_FIXED_SIZE.is_none() && buffered_bytes >= memory_budget_bytes / shares.max(2)
}

/// Spilled payload bytes of `chunk`, or 0 for fixed-size values (whose
/// byte meter is never consulted).
pub(crate) fn var_payload_bytes<K, V: SpillValue>(chunk: &[(K, V)]) -> usize {
    if V::SPILL_FIXED_SIZE.is_some() {
        return 0;
    }
    chunk.iter().map(|(_, v)| v.spill_size()).sum()
}

/// Buffered sequential reader over one spilled run, decoding either
/// encoding transparently (the merge and the prefetcher never see block
/// boundaries).
pub(crate) struct RunReader<V: SpillValue> {
    reader: Box<dyn SpillRead>,
    remaining: usize,
    bytes_remaining: u64,
    /// Decoded (flat-equivalent) bytes left, from `SpilledRun::raw_bytes`;
    /// bounds the block decode buffers against corrupt headers.
    raw_remaining: u64,
    compression: SpillCompression,
    /// Decoded keys of the current block (`DeltaLz` only).
    block_keys: Vec<u64>,
    /// Decoded payload of the current block (`DeltaLz` only).
    block_payload: Vec<u8>,
    block_next: usize,
    block_payload_pos: usize,
    /// Side buffer values stream through; for var-format runs it grows to
    /// the largest value of the run and is reused across records.
    scratch: Vec<u8>,
    _value: PhantomData<V>,
}

impl<V: SpillValue> RunReader<V> {
    pub fn open(io: &SpillIoHandle, run: &SpilledRun, buffer_bytes: usize) -> io::Result<Self> {
        // The caller's budget is honored as given (64-byte floor inside
        // the backend so buffered reads stay functional) — re-inflating
        // small budgets here would undo the aggregate cap of
        // `per_run_reader_budget`.
        let (reader, actual) = io.open(&run.path, buffer_bytes)?;
        // Validate the file length eagerly: a truncated spill file must
        // surface as an I/O error here, at open time, rather than as a
        // mid-merge failure (or, worse, a silently shorter output if a
        // caller ever trusted the byte stream over the run metadata).
        if actual < run.bytes {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated spilled run {}: expected {} bytes for {} records, found {}",
                    run.path.display(),
                    run.bytes,
                    run.len,
                    actual
                ),
            ));
        }
        Ok(Self {
            reader,
            remaining: run.len,
            bytes_remaining: run.bytes,
            raw_remaining: run.raw_bytes,
            compression: run.compression,
            block_keys: Vec::new(),
            block_payload: Vec::new(),
            block_next: 0,
            block_payload_pos: 0,
            scratch: Vec::new(),
            _value: PhantomData,
        })
    }

    /// Reads the next record, or `None` at end of run.
    pub fn next_record(&mut self) -> io::Result<Option<(u64, V)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.compression {
            SpillCompression::Off => self.next_record_flat(),
            SpillCompression::DeltaLz => self.next_record_block(),
        }
    }

    fn next_record_flat(&mut self) -> io::Result<Option<(u64, V)>> {
        if self.bytes_remaining < 8 {
            // The run claims more records than its bytes can hold; refuse
            // to read past the end rather than serve garbage.
            return Err(short_run_err(
                "spilled run record count exceeds its byte size",
            ));
        }
        let mut key_bytes = [0u8; 8];
        self.reader.read_exact(&mut key_bytes)?;
        let payload_budget = self.bytes_remaining - 8;
        let value = V::spill_read(&mut self.reader, &mut self.scratch, payload_budget)?;
        self.bytes_remaining = payload_budget - value.spill_size() as u64;
        self.remaining -= 1;
        Ok(Some((u64::from_le_bytes(key_bytes), value)))
    }

    fn next_record_block(&mut self) -> io::Result<Option<(u64, V)>> {
        if self.block_next == self.block_keys.len() {
            self.read_block()?;
        }
        let key = self.block_keys[self.block_next];
        let mut cursor: &[u8] = &self.block_payload[self.block_payload_pos..];
        let budget = cursor.len() as u64;
        let value = V::spill_read(&mut cursor, &mut self.scratch, budget)?;
        self.block_payload_pos = self.block_payload.len() - cursor.len();
        self.block_next += 1;
        self.remaining -= 1;
        self.raw_remaining = self
            .raw_remaining
            .saturating_sub(8 + value.spill_size() as u64);
        Ok(Some((key, value)))
    }

    /// Decodes the next compressed block into `block_keys` /
    /// `block_payload`.  Every size in the header is validated against
    /// the run's recorded byte counts before it drives an allocation, so
    /// a corrupted header cannot read past the run or balloon memory.
    fn read_block(&mut self) -> io::Result<()> {
        if self.bytes_remaining < BLOCK_HEADER_BYTES as u64 {
            return Err(short_run_err("spilled run ended mid-block-header"));
        }
        let mut header = [0u8; BLOCK_HEADER_BYTES];
        self.reader.read_exact(&mut header)?;
        self.bytes_remaining -= BLOCK_HEADER_BYTES as u64;
        let count = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let key_stream_len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as u64;
        let payload_raw_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as u64;
        let payload_enc_len = u32::from_le_bytes(header[12..16].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(header[16..20].try_into().unwrap());
        let enc = header[20];
        if count == 0 || count > self.remaining {
            return Err(bad_run_data(
                "block record count disagrees with the run metadata",
            ));
        }
        if key_stream_len + payload_enc_len > self.bytes_remaining {
            return Err(short_run_err(
                "block section sizes exceed the bytes remaining in the run",
            ));
        }
        if payload_raw_len > self.raw_remaining {
            return Err(bad_run_data(
                "block raw payload size exceeds the run's recorded raw bytes",
            ));
        }
        // The chained block checksum is verified in two passes so one
        // `scratch` buffer can stage both sections in turn — a third
        // per-run buffer would not be accounted against the merge read
        // budget.  No record is served before the full checksum matches:
        // the keys decoded below are discarded with the error if the
        // payload pass fails, so bit rot still surfaces as `InvalidData`,
        // never as silently wrong keys or payload bytes.
        self.scratch.resize(key_stream_len as usize, 0);
        self.reader.read_exact(&mut self.scratch)?;
        self.bytes_remaining -= key_stream_len;
        let key_crc = codec::crc32_update(0, &self.scratch);
        // Key stream: absolute first key, then non-negative deltas.  The
        // decode is bounded by the validated `count` either way, so
        // running it ahead of the checksum cannot balloon memory.
        self.block_keys.clear();
        self.block_keys.reserve(count);
        let mut cursor: &[u8] = &self.scratch;
        let mut prev = 0u64;
        for i in 0..count {
            let delta = codec::read_varint(&mut cursor)?;
            let key = if i == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or_else(|| bad_run_data("block key delta overflows u64"))?
            };
            self.block_keys.push(key);
            prev = key;
        }
        if !cursor.is_empty() {
            return Err(bad_run_data("trailing bytes after the block key stream"));
        }
        // Payload section into the (now free) scratch buffer; the chained
        // checksum must match before a byte of it is interpreted.
        self.scratch.resize(payload_enc_len as usize, 0);
        self.reader.read_exact(&mut self.scratch)?;
        self.bytes_remaining -= payload_enc_len;
        if codec::crc32_update(key_crc, &self.scratch) != crc {
            self.block_keys.clear();
            return Err(bad_run_data("block checksum mismatch"));
        }
        // Payload: LZ-compressed or stored raw.
        self.block_payload.clear();
        match enc {
            0 => {
                if payload_enc_len != payload_raw_len {
                    return Err(bad_run_data("stored-raw block sizes disagree"));
                }
                self.block_payload.extend_from_slice(&self.scratch);
            }
            1 => {
                let (encoded, payload) = (&self.scratch, &mut self.block_payload);
                codec::lz_decompress(encoded, payload, payload_raw_len as usize)?;
            }
            _ => return Err(bad_run_data("unknown block payload encoding")),
        }
        self.block_next = 0;
        self.block_payload_pos = 0;
        Ok(())
    }

    /// Reads all remaining records, reconstructing the key type.
    pub fn read_all<K: IntegerKey>(&mut self) -> io::Result<Vec<(K, V)>> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some((key, value)) = self.next_record()? {
            out.push((K::from_ordered_u64(key), value));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pisort-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// The blocking reference backend, used by every format test here
    /// (backend differentials live in `spillio.rs` and `tests/`).
    fn bio() -> SpillIoHandle {
        SpillIoHandle::blocking()
    }

    fn fixed_record_size<V: PodValue>() -> u64 {
        8 + size_of::<V>() as u64
    }

    /// Writes `records` in the flat encoding and returns run metadata
    /// matching the file.
    fn spill<K: IntegerKey, V: SpillValue>(path: &Path, records: &[(K, V)]) -> SpilledRun {
        write_run(&bio(), path, records, SpillCompression::Off).unwrap()
    }

    /// Writes `records` in the compressed block encoding.
    fn spill_lz<K: IntegerKey, V: SpillValue>(path: &Path, records: &[(K, V)]) -> SpilledRun {
        write_run(&bio(), path, records, SpillCompression::DeltaLz).unwrap()
    }

    #[test]
    fn roundtrip_u32_keys_u32_values() {
        let path = tmp_path("u32u32.bin");
        let records: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 3, i)).collect();
        let run = spill(&path, &records);
        assert_eq!(run.bytes, 12 * 1000);
        let mut reader = RunReader::<u32>::open(&bio(), &run, 4096).unwrap();
        let got: Vec<(u32, u32)> = reader.read_all().unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_signed_keys_and_unit_values() {
        let path = tmp_path("i64unit.bin");
        let records: Vec<(i64, ())> = vec![(i64::MIN, ()), (-1, ()), (0, ()), (i64::MAX, ())];
        let run = spill(&path, &records);
        let mut reader = RunReader::<()>::open(&bio(), &run, 4096).unwrap();
        let got: Vec<(i64, ())> = reader.read_all().unwrap();
        assert_eq!(got, records);
        // Ordered-u64 images on disk must be monotone for signed keys.
        let mut reader = RunReader::<()>::open(&bio(), &run, 4096).unwrap();
        let mut ordered = Vec::new();
        while let Some((k, ())) = reader.next_record().unwrap() {
            ordered.push(k);
        }
        assert!(ordered.windows(2).all(|w| w[0] < w[1]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_array_values() {
        let path = tmp_path("arr.bin");
        let records: Vec<(u16, [u8; 5])> = (0..100u16).map(|i| (i, [i as u8; 5])).collect();
        let run = spill(&path, &records);
        let got: Vec<(u16, [u8; 5])> = RunReader::<[u8; 5]>::open(&bio(), &run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_string_values_incl_empty_and_multi_kb() {
        let path = tmp_path("varstr.bin");
        let big = "x".repeat(5 << 10);
        let records: Vec<(u64, String)> = vec![
            (3, String::new()),
            (5, "hello".to_string()),
            (7, big.clone()),
            (9, "naïve-ütf8-τ".to_string()),
            (11, String::new()),
            (13, big),
        ];
        let run = spill(&path, &records);
        let payload: usize = records.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(run.bytes, (records.len() * 12 + payload) as u64);
        let got: Vec<(u64, String)> = RunReader::<String>::open(&bio(), &run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_byte_vec_and_boxed_slice_values() {
        let path = tmp_path("varbytes.bin");
        let records: Vec<(u32, Vec<u8>)> = (0..200u32)
            .map(|i| {
                (
                    i,
                    (0..(i as usize * 13) % 2048)
                        .map(|j| (i + j as u32) as u8)
                        .collect(),
                )
            })
            .collect();
        let run = spill(&path, &records);
        let got: Vec<(u32, Vec<u8>)> = RunReader::<Vec<u8>>::open(&bio(), &run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        // The same payloads round-trip as Box<[u8]> (same on-disk format).
        let boxed: Vec<(u32, Box<[u8]>)> = records
            .iter()
            .map(|(k, v)| (*k, v.clone().into_boxed_slice()))
            .collect();
        let path2 = tmp_path("varboxed.bin");
        let run2 = spill(&path2, &boxed);
        assert_eq!(run2.bytes, run.bytes);
        let got2: Vec<(u32, Box<[u8]>)> = RunReader::<Box<[u8]>>::open(&bio(), &run2, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got2, boxed);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(path2).ok();
    }

    #[test]
    fn truncated_run_is_an_io_error_not_a_short_read() {
        let path = tmp_path("truncated.bin");
        let records: Vec<(u32, u32)> = (0..500u32).map(|i| (i, i * 2)).collect();
        let run = spill(&path, &records);
        // Truncation mid-record and exactly at a record boundary must both
        // fail at open — never yield fewer records than `run.len`.
        for cut in [run.bytes - 5, run.bytes - fixed_record_size::<u32>(), 0] {
            let f = File::options().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let err = match RunReader::<u32>::open(&bio(), &run, 4096) {
                Err(e) => e,
                Ok(mut reader) => reader
                    .read_all::<u32>()
                    .expect_err("short file must not read back successfully"),
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_varlen_run_is_an_io_error() {
        let path = tmp_path("var-truncated.bin");
        let records: Vec<(u64, String)> = (0..100u64)
            .map(|i| {
                (
                    i,
                    format!("payload-{i}-{}", "y".repeat((i as usize * 7) % 90)),
                )
            })
            .collect();
        let run = spill(&path, &records);
        let last_payload = records.last().unwrap().1.len() as u64;
        let last_record = 8 + 4 + last_payload;
        // Mid-value, mid-length-prefix, exactly at a record boundary, empty.
        for cut in [
            run.bytes - 1,
            run.bytes - last_payload - 2,
            run.bytes - last_record,
            0,
        ] {
            let f = File::options().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let err = match RunReader::<String>::open(&bio(), &run, 4096) {
                Err(e) => e,
                Ok(mut reader) => reader
                    .read_all::<u64>()
                    .expect_err("short file must not read back successfully"),
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overcounted_run_length_is_an_io_error() {
        // A run whose metadata claims more records than the file holds is
        // the dual failure: the reader must refuse it rather than serve a
        // shorter stream.
        let path = tmp_path("overcount.bin");
        let records: Vec<(u64, ())> = (0..100u64).map(|i| (i, ())).collect();
        let good = spill(&path, &records);
        let run = SpilledRun {
            path: path.clone(),
            len: records.len() + 1,
            bytes: good.bytes + fixed_record_size::<()>(),
            raw_bytes: good.raw_bytes + fixed_record_size::<()>(),
            compression: SpillCompression::Off,
            retries: 0,
        };
        let err = match RunReader::<()>::open(&bio(), &run, 4096) {
            Err(e) => e,
            Ok(_) => panic!("overcount must fail"),
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // The correct metadata still reads fine.
        let got: Vec<(u64, ())> = RunReader::<()>::open(&bio(), &good, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overcounted_varlen_record_count_is_an_io_error() {
        // Var-format dual failure: byte size matches the file but the
        // record count claims one more record than the bytes hold.  Open
        // cannot catch this (the byte size is honest), so the reader must
        // refuse at the point the counts disagree.
        let path = tmp_path("var-overcount.bin");
        let records: Vec<(u64, Vec<u8>)> = (0..50u64).map(|i| (i, vec![i as u8; 10])).collect();
        let good = spill(&path, &records);
        let run = SpilledRun {
            path: path.clone(),
            len: records.len() + 1,
            bytes: good.bytes,
            raw_bytes: good.raw_bytes,
            compression: SpillCompression::Off,
            retries: 0,
        };
        let mut reader = RunReader::<Vec<u8>>::open(&bio(), &run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("overcounted record count must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_length_prefix_cannot_read_past_the_run() {
        let path = tmp_path("var-badprefix.bin");
        let records: Vec<(u64, Vec<u8>)> = (0..10u64).map(|i| (i, vec![7u8; 16])).collect();
        let run = spill(&path, &records);
        // Overwrite the first record's length prefix (offset 8) with a huge
        // value; the file size is unchanged, so only the in-stream budget
        // check can catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = RunReader::<Vec<u8>>::open(&bio(), &run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("corrupted length prefix must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_utf8_string_payload_is_invalid_data() {
        // Write raw bytes, read back as String: the var formats are
        // identical, so this models on-disk corruption of a String run.
        let path = tmp_path("var-badutf8.bin");
        let records: Vec<(u64, Vec<u8>)> = vec![(1, vec![0xFF, 0xFE, 0xFD])];
        let run = spill(&path, &records);
        let mut reader = RunReader::<String>::open(&bio(), &run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("non-UTF-8 String payload must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reader_budget_is_clamped_and_shared() {
        assert_eq!(per_run_reader_budget(8 << 20, 2), 4 << 20);
        assert_eq!(per_run_reader_budget(8 << 20, 0), 8 << 20);
        assert_eq!(per_run_reader_budget(1 << 10, 4), 256);
        assert_eq!(per_run_reader_budget(usize::MAX, 1), 8 << 20);
    }

    #[test]
    fn reader_budget_aggregate_never_exceeds_the_pool() {
        // Regression for the 4 KiB-floor overshoot: 64 runs against a
        // 16 KiB budget used to claim 64 × 4096 = 256 KiB of buffers.
        // The aggregate is now capped at max(total, 64 · runs).
        for (total, runs) in [
            (16 << 10, 64),
            (1 << 10, 100),
            (0, 7),
            (8 << 20, 3),
            (1 << 30, 1000),
        ] {
            let per_run = per_run_reader_budget(total, runs);
            let aggregate = per_run * runs;
            let worst = total.max(64 * runs);
            assert!(
                aggregate <= worst,
                "total {total}, runs {runs}: aggregate {aggregate} > {worst}"
            );
        }
        // The old failure case specifically.
        assert_eq!(per_run_reader_budget(16 << 10, 64), 256);
    }

    #[test]
    fn compressed_pod_run_roundtrips_and_shrinks() {
        let path = tmp_path("lz-pod.bin");
        // Sorted, dense keys: deltas are tiny, values repeat — both codec
        // legs should bite.
        let records: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i / 4, i % 7)).collect();
        let run = spill_lz(&path, &records);
        assert_eq!(run.compression, SpillCompression::DeltaLz);
        assert_eq!(run.raw_bytes, 12 * 20_000);
        assert!(
            run.bytes < run.raw_bytes / 2,
            "dense pod runs must compress: {} vs {}",
            run.bytes,
            run.raw_bytes
        );
        let got: Vec<(u32, u32)> = RunReader::<u32>::open(&bio(), &run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compressed_varlen_run_roundtrips_across_blocks() {
        let path = tmp_path("lz-var.bin");
        // > BLOCK_MAX_RECORDS records and > BLOCK_RAW_TARGET payload bytes,
        // so the run spans several blocks, with empty and multi-KiB values
        // crossing block boundaries.
        let mut records: Vec<(u64, String)> = (0..(BLOCK_MAX_RECORDS as u64 * 2 + 17))
            .map(|i| {
                let v = match i % 5 {
                    0 => String::new(),
                    1 => format!("short-{i}"),
                    _ => format!(
                        "GET /api/v1/items/{i} HTTP/1.1 {}",
                        "x".repeat(i as usize % 64)
                    ),
                };
                (i * 3, v)
            })
            .collect();
        records.push((u64::MAX, "final".to_string()));
        let run = spill_lz(&path, &records);
        assert!(run.bytes < run.raw_bytes, "structured text must compress");
        let got: Vec<(u64, String)> = RunReader::<String>::open(&bio(), &run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        // A tiny read buffer must not change the decoded stream.
        let got_small: Vec<(u64, String)> = RunReader::<String>::open(&bio(), &run, 1)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got_small, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compressed_and_flat_runs_decode_identically() {
        let path_a = tmp_path("lz-vs-flat-a.bin");
        let path_b = tmp_path("lz-vs-flat-b.bin");
        let records: Vec<(u64, Vec<u8>)> = (0..5000u64)
            .map(|i| {
                (
                    i * 7,
                    (0..(i as usize % 40))
                        .map(|j| (i + j as u64) as u8)
                        .collect(),
                )
            })
            .collect();
        let flat = spill(&path_a, &records);
        let lz = spill_lz(&path_b, &records);
        assert_eq!(flat.raw_bytes, lz.raw_bytes);
        let a: Vec<(u64, Vec<u8>)> = RunReader::<Vec<u8>>::open(&bio(), &flat, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        let b: Vec<(u64, Vec<u8>)> = RunReader::<Vec<u8>>::open(&bio(), &lz, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(a, b, "both encodings must decode to identical records");
        std::fs::remove_file(path_a).ok();
        std::fs::remove_file(path_b).ok();
    }

    #[test]
    fn incompressible_block_falls_back_to_stored_raw() {
        let path = tmp_path("lz-raw.bin");
        // Pseudo-random payloads: LZ cannot win, so blocks store raw and
        // the overhead stays at the per-block header + key stream.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let records: Vec<(u64, Vec<u8>)> = (0..500u64)
            .map(|i| {
                let v = (0..64)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x as u8
                    })
                    .collect();
                (i, v)
            })
            .collect();
        let run = spill_lz(&path, &records);
        // Still decodes, and never inflates past raw + headers + keys.
        let got: Vec<(u64, Vec<u8>)> = RunReader::<Vec<u8>>::open(&bio(), &run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        assert!(
            run.bytes <= run.raw_bytes,
            "store-raw caps the payload; {} vs {}",
            run.bytes,
            run.raw_bytes
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_compressed_run_is_an_io_error() {
        let path = tmp_path("lz-truncated.bin");
        let records: Vec<(u64, String)> = (0..300u64)
            .map(|i| (i, format!("value-{i}-{}", "z".repeat(i as usize % 30))))
            .collect();
        let run = spill_lz(&path, &records);
        for cut in [run.bytes - 1, run.bytes / 2, 3, 0] {
            let f = File::options().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let err = match RunReader::<String>::open(&bio(), &run, 4096) {
                Err(e) => e,
                Ok(mut reader) => reader
                    .read_all::<u64>()
                    .expect_err("short compressed file must not read back"),
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_block_header_cannot_read_past_the_run() {
        let records: Vec<(u64, Vec<u8>)> = (0..100u64).map(|i| (i, vec![3u8; 20])).collect();
        // Corrupt each u32 header field in turn (offsets 0, 4, 8, 12 and
        // the checksum at 16) and the enc flag (20); every corruption must
        // surface as an error, never garbage records or a huge allocation.
        for offset in [0usize, 4, 8, 12, 16, 20] {
            let path = tmp_path(&format!("lz-badheader-{offset}.bin"));
            let run = spill_lz(&path, &records);
            let mut bytes = std::fs::read(&path).unwrap();
            for b in &mut bytes[offset..offset + 1] {
                *b ^= 0xFF;
            }
            if offset < 16 {
                bytes[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            }
            std::fs::write(&path, &bytes).unwrap();
            let mut reader = RunReader::<Vec<u8>>::open(&bio(), &run, 4096).unwrap();
            assert!(
                reader.read_all::<u64>().is_err(),
                "corrupt header field at {offset} must fail"
            );
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn corrupted_block_body_fails_the_checksum() {
        // Flip a single payload bit with every header field intact: only
        // the per-block CRC can catch this, and it must report
        // `InvalidData` before any record of the block is served.
        let records: Vec<(u64, Vec<u8>)> = (0..100u64).map(|i| (i, vec![i as u8; 20])).collect();
        let path = tmp_path("lz-bitrot.bin");
        let run = spill_lz(&path, &records);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // inside the (single) block's payload
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = RunReader::<Vec<u8>>::open(&bio(), &run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("bit rot must fail the block checksum");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compressed_spill_rejects_unsorted_records() {
        let path = tmp_path("lz-unsorted.bin");
        let records: Vec<(u64, u32)> = vec![(10, 1), (5, 2)];
        let err = write_run(&bio(), &path, &records, SpillCompression::DeltaLz)
            .expect_err("delta encoding requires sorted keys");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zeroed_pod_values() {
        assert_eq!(pod_zeroed::<u64>(), 0);
        assert_eq!(pod_zeroed::<[u32; 3]>(), [0, 0, 0]);
        pod_zeroed::<()>();
    }

    #[test]
    fn spill_placeholders_are_empty() {
        assert_eq!(String::spill_placeholder(), "");
        assert_eq!(Vec::<u8>::spill_placeholder(), Vec::<u8>::new());
        assert_eq!(u64::spill_placeholder(), 0);
        assert_eq!(Box::<[u8]>::spill_placeholder().len(), 0);
    }
}
