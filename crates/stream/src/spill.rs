//! On-disk run format and buffered run readers.
//!
//! A spilled run is a flat sequence of fixed-size records:
//!
//! ```text
//! ┌────────────────────────┬───────────────────┐
//! │ key (8 bytes, LE)      │ value (V bytes)   │  × run length
//! └────────────────────────┴───────────────────┘
//! ```
//!
//! Keys are stored in the ordered-`u64` domain
//! ([`dtsort::IntegerKey::to_ordered_u64`]), so the merge compares raw
//! `u64`s and the original key type is reconstructed only on output.
//! Values are written as their in-memory bytes, which is why they must
//! implement the padding-free [`PodValue`] contract.

use dtsort::IntegerKey;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::mem::size_of;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-deleting directory holding one consumer's spill files
/// (used by both the streaming sorter and the streaming group-by).
#[derive(Debug)]
pub(crate) struct SpillSpace {
    pub(crate) dir: PathBuf,
}

static SPILL_SPACE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SpillSpace {
    pub(crate) fn create(base: Option<&PathBuf>) -> io::Result<Self> {
        let base = base.cloned().unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "pisort-stream-{}-{}",
            std::process::id(),
            SPILL_SPACE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = base.join(unique);
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }
}

impl Drop for SpillSpace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Marker for values that can be spilled by their in-memory byte image.
///
/// # Safety
///
/// Implementors must be `Copy` types with **no padding bytes** (every byte
/// of the in-memory representation is initialized) for which every byte
/// pattern written from a valid value reads back as that same valid value.
/// All primitive numeric types and fixed-size arrays of them qualify;
/// structs/tuples with padding do not.
pub unsafe trait PodValue: Copy + Send + Sync + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => {$( unsafe impl PodValue for $t {} )*};
}
impl_pod!(
    (),
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool
);
unsafe impl<T: PodValue, const N: usize> PodValue for [T; N] {}

/// A value every bit of which is zero (valid for any [`PodValue`]).
pub(crate) fn pod_zeroed<V: PodValue>() -> V {
    // SAFETY: PodValue admits every initialized byte pattern, including
    // all-zeros.
    unsafe { std::mem::zeroed() }
}

fn value_bytes<V: PodValue>(v: &V) -> &[u8] {
    // SAFETY: PodValue guarantees no padding, so all size_of::<V>() bytes
    // are initialized.
    unsafe { std::slice::from_raw_parts((v as *const V).cast::<u8>(), size_of::<V>()) }
}

fn value_from_bytes<V: PodValue>(bytes: &[u8]) -> V {
    debug_assert_eq!(bytes.len(), size_of::<V>());
    // SAFETY: the buffer holds size_of::<V>() initialized bytes previously
    // produced by `value_bytes` for a valid value of V.
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<V>()) }
}

/// Size in bytes of one on-disk record of value type `V`.
pub(crate) fn record_size<V: PodValue>() -> usize {
    8 + size_of::<V>()
}

/// Writes a sorted run to `path`; returns the bytes written.
pub(crate) fn write_run<K: IntegerKey, V: PodValue>(
    path: &Path,
    records: &[(K, V)],
) -> io::Result<u64> {
    let file = File::create(path)?;
    let mut writer = BufWriter::with_capacity(1 << 20, file);
    for &(key, value) in records {
        writer.write_all(&key.to_ordered_u64().to_le_bytes())?;
        writer.write_all(value_bytes(&value))?;
    }
    writer.flush()?;
    Ok((record_size::<V>() * records.len()) as u64)
}

/// Metadata of one spilled run.
#[derive(Debug)]
pub(crate) struct SpilledRun {
    pub path: PathBuf,
    pub len: usize,
}

/// Buffered sequential reader over one spilled run.
pub(crate) struct RunReader<V: PodValue> {
    reader: BufReader<File>,
    remaining: usize,
    scratch: Vec<u8>,
    _value: PhantomData<V>,
}

impl<V: PodValue> RunReader<V> {
    pub fn open(run: &SpilledRun, buffer_bytes: usize) -> io::Result<Self> {
        let file = File::open(&run.path)?;
        // Validate the file length eagerly: a truncated spill file must
        // surface as an I/O error here, at open time, rather than as a
        // mid-merge failure (or, worse, a silently shorter output if a
        // caller ever trusted the byte stream over `run.len`).
        let expected = (run.len as u64) * record_size::<V>() as u64;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated spilled run {}: expected {} bytes for {} records, found {}",
                    run.path.display(),
                    expected,
                    run.len,
                    actual
                ),
            ));
        }
        Ok(Self {
            reader: BufReader::with_capacity(buffer_bytes.max(4096), file),
            remaining: run.len,
            scratch: vec![0u8; size_of::<V>()],
            _value: PhantomData,
        })
    }

    /// Reads the next record, or `None` at end of run.
    pub fn next_record(&mut self) -> io::Result<Option<(u64, V)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut key_bytes = [0u8; 8];
        self.reader.read_exact(&mut key_bytes)?;
        self.reader.read_exact(&mut self.scratch)?;
        self.remaining -= 1;
        Ok(Some((
            u64::from_le_bytes(key_bytes),
            value_from_bytes(&self.scratch),
        )))
    }

    /// Reads all remaining records, reconstructing the key type.
    pub fn read_all<K: IntegerKey>(&mut self) -> io::Result<Vec<(K, V)>> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some((key, value)) = self.next_record()? {
            out.push((K::from_ordered_u64(key), value));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pisort-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_u32_keys_u32_values() {
        let path = tmp_path("u32u32.bin");
        let records: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 3, i)).collect();
        let bytes = write_run(&path, &records).unwrap();
        assert_eq!(bytes, 12 * 1000);
        let run = SpilledRun {
            path: path.clone(),
            len: records.len(),
        };
        let mut reader = RunReader::<u32>::open(&run, 4096).unwrap();
        let got: Vec<(u32, u32)> = reader.read_all().unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_signed_keys_and_unit_values() {
        let path = tmp_path("i64unit.bin");
        let records: Vec<(i64, ())> = vec![(i64::MIN, ()), (-1, ()), (0, ()), (i64::MAX, ())];
        write_run(&path, &records).unwrap();
        let run = SpilledRun {
            path: path.clone(),
            len: records.len(),
        };
        let mut reader = RunReader::<()>::open(&run, 4096).unwrap();
        let got: Vec<(i64, ())> = reader.read_all().unwrap();
        assert_eq!(got, records);
        // Ordered-u64 images on disk must be monotone for signed keys.
        let mut reader = RunReader::<()>::open(&run, 4096).unwrap();
        let mut ordered = Vec::new();
        while let Some((k, ())) = reader.next_record().unwrap() {
            ordered.push(k);
        }
        assert!(ordered.windows(2).all(|w| w[0] < w[1]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_array_values() {
        let path = tmp_path("arr.bin");
        let records: Vec<(u16, [u8; 5])> = (0..100u16).map(|i| (i, [i as u8; 5])).collect();
        write_run(&path, &records).unwrap();
        let run = SpilledRun {
            path: path.clone(),
            len: records.len(),
        };
        let got: Vec<(u16, [u8; 5])> = RunReader::<[u8; 5]>::open(&run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_run_is_an_io_error_not_a_short_read() {
        let path = tmp_path("truncated.bin");
        let records: Vec<(u32, u32)> = (0..500u32).map(|i| (i, i * 2)).collect();
        write_run(&path, &records).unwrap();
        let run = SpilledRun {
            path: path.clone(),
            len: records.len(),
        };
        let full_bytes = (record_size::<u32>() * records.len()) as u64;
        // Truncation mid-record and exactly at a record boundary must both
        // fail at open — never yield fewer records than `run.len`.
        for cut in [full_bytes - 5, full_bytes - record_size::<u32>() as u64, 0] {
            let f = File::options().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let err = match RunReader::<u32>::open(&run, 4096) {
                Err(e) => e,
                Ok(mut reader) => reader
                    .read_all::<u32>()
                    .expect_err("short file must not read back successfully"),
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overcounted_run_length_is_an_io_error() {
        // A run whose metadata claims more records than the file holds is
        // the dual failure: the reader must refuse it rather than serve a
        // shorter stream.
        let path = tmp_path("overcount.bin");
        let records: Vec<(u64, ())> = (0..100u64).map(|i| (i, ())).collect();
        write_run(&path, &records).unwrap();
        let run = SpilledRun {
            path: path.clone(),
            len: records.len() + 1,
        };
        let err = match RunReader::<()>::open(&run, 4096) {
            Err(e) => e,
            Ok(_) => panic!("overcount must fail"),
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // The correct length still reads fine.
        let ok = SpilledRun {
            path: path.clone(),
            len: records.len(),
        };
        let got: Vec<(u64, ())> = RunReader::<()>::open(&ok, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zeroed_pod_values() {
        assert_eq!(pod_zeroed::<u64>(), 0);
        assert_eq!(pod_zeroed::<[u32; 3]>(), [0, 0, 0]);
        pod_zeroed::<()>();
    }
}
