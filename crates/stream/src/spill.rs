//! On-disk run formats and buffered run readers.
//!
//! A spilled run is a flat sequence of records in one of two formats,
//! chosen statically by the value type ([`SpillValue`]):
//!
//! **Fixed** — for [`PodValue`] types, whose in-memory byte image is the
//! record payload:
//!
//! ```text
//! ┌────────────────────────┬───────────────────┐
//! │ key (8 bytes, LE)      │ value (V bytes)   │  × run length
//! └────────────────────────┴───────────────────┘
//! ```
//!
//! **Variable-length** — for [`VarValue`] types (`Vec<u8>`, `String`,
//! `Box<[u8]>`), whose payload is length-prefixed:
//!
//! ```text
//! ┌────────────────────────┬────────────────────┬───────────────────┐
//! │ key (8 bytes, LE)      │ value_len (u32 LE) │ value bytes       │  × run length
//! └────────────────────────┴────────────────────┴───────────────────┘
//! ```
//!
//! Keys are stored in the ordered-`u64` domain
//! ([`dtsort::IntegerKey::to_ordered_u64`]), so the merge compares raw
//! `u64`s and the original key type is reconstructed only on output.
//! Fixed-format values are written as their in-memory bytes, which is why
//! they must implement the padding-free [`PodValue`] contract; var-format
//! values stream through a reusable side buffer sized to the largest value
//! seen, never through `size_of::<V>()` scratch.
//!
//! Every [`SpilledRun`] records both its record count and its exact byte
//! size, so truncated spill files are rejected at open time in either
//! format, and a corrupted length prefix can never read past the run.

use dtsort::{IntegerKey, RunReport, SortConfig};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::mem::size_of;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-deleting directory holding one consumer's spill files
/// (used by both the streaming sorter and the streaming group-by).
#[derive(Debug)]
pub(crate) struct SpillSpace {
    pub(crate) dir: PathBuf,
}

static SPILL_SPACE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SpillSpace {
    pub(crate) fn create(base: Option<&PathBuf>) -> io::Result<Self> {
        let base = base.cloned().unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "pisort-stream-{}-{}",
            std::process::id(),
            SPILL_SPACE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = base.join(unique);
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }
}

impl Drop for SpillSpace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

pub(crate) mod sealed {
    pub trait Sealed {}
}

/// Marker for values that can be spilled by their in-memory byte image
/// (the *fixed* on-disk record format).
///
/// # Safety
///
/// Implementors must be `Copy` types with **no padding bytes** (every byte
/// of the in-memory representation is initialized) for which every byte
/// pattern written from a valid value reads back as that same valid value.
/// All primitive numeric types and fixed-size arrays of them qualify;
/// structs/tuples with padding do not.
pub unsafe trait PodValue: Copy + Send + Sync + 'static {}

/// Values spilled through the *variable-length* on-disk record format:
/// anything serializable to (and from) a byte slice.
///
/// Implemented for `Vec<u8>`, `String` and `Box<[u8]>`.  `from_spill_bytes`
/// may fail with [`io::ErrorKind::InvalidData`] when the bytes violate the
/// type's invariants (e.g. non-UTF-8 bytes read back as a `String`), which
/// surfaces file corruption instead of panicking mid-merge.
pub trait VarValue: Clone + Send + Sync + 'static {
    /// The serialized payload of this value.
    fn as_spill_bytes(&self) -> &[u8];
    /// Reconstructs a value from a payload previously produced by
    /// [`VarValue::as_spill_bytes`].
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self>;
}

impl VarValue for Vec<u8> {
    fn as_spill_bytes(&self) -> &[u8] {
        self
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        Ok(bytes.to_vec())
    }
}

impl VarValue for Box<[u8]> {
    fn as_spill_bytes(&self) -> &[u8] {
        self
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        Ok(bytes.to_vec().into_boxed_slice())
    }
}

impl VarValue for String {
    fn as_spill_bytes(&self) -> &[u8] {
        self.as_bytes()
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spilled String payload is not UTF-8: {e}"),
            )
        })
    }
}

/// A value the streaming sorter and group-by can spill to disk: either a
/// [`PodValue`] (fixed-size records, zero-copy byte images) or a
/// [`VarValue`] (`Vec<u8>`, `String`, `Box<[u8]>`; length-prefixed
/// records).
///
/// This trait is **sealed**: the two families have different on-disk
/// formats and different in-memory sort/merge strategies, and each listed
/// type is wired to the right one here.  User code only ever names the
/// trait in bounds (`StreamSorter<u64, String>` just works).
pub trait SpillValue: Clone + Send + Sync + 'static + sealed::Sealed {
    /// `Some(n)` for fixed `n`-byte payloads, `None` for length-prefixed
    /// payloads.
    #[doc(hidden)]
    const SPILL_FIXED_SIZE: Option<usize>;

    /// On-disk payload bytes of this value (length prefix included).
    #[doc(hidden)]
    fn spill_size(&self) -> usize;

    /// Writes this value's payload (length prefix included).
    #[doc(hidden)]
    fn spill_write(&self, w: &mut BufWriter<File>) -> io::Result<()>;

    /// Reads one payload; `payload_budget` is the number of bytes left in
    /// the run after the record's key, bounding length prefixes so a
    /// corrupted prefix cannot read past the run (or allocate unboundedly).
    #[doc(hidden)]
    fn spill_read(
        r: &mut BufReader<File>,
        scratch: &mut Vec<u8>,
        payload_budget: u64,
    ) -> io::Result<Self>
    where
        Self: Sized;

    /// A cheap placeholder value for pre-sized output buffers.
    #[doc(hidden)]
    fn spill_placeholder() -> Self;

    /// Stably sorts one buffered run by key, seeding heavy-key detection
    /// with `carry` (see [`dtsort::sort_run_pairs_with`]).
    #[doc(hidden)]
    fn sort_spill_run<K: IntegerKey>(
        buffer: &mut Vec<(K, Self)>,
        cfg: &SortConfig,
        carry: &[u64],
    ) -> RunReport
    where
        Self: Sized;

    /// Stably k-way merges the sorted `runs` plus the sorted in-memory
    /// `tail` into `out` (ties favour earlier runs; the tail is last).
    #[doc(hidden)]
    fn merge_spill_runs_into<K: IntegerKey>(
        runs: Vec<Vec<(K, Self)>>,
        tail: Vec<(K, Self)>,
        out: &mut [(K, Self)],
    ) where
        Self: Sized;
}

/// A value every bit of which is zero (valid for any [`PodValue`]).
pub(crate) fn pod_zeroed<V: PodValue>() -> V {
    // SAFETY: PodValue admits every initialized byte pattern, including
    // all-zeros.
    unsafe { std::mem::zeroed() }
}

fn value_bytes<V: PodValue>(v: &V) -> &[u8] {
    // SAFETY: PodValue guarantees no padding, so all size_of::<V>() bytes
    // are initialized.
    unsafe { std::slice::from_raw_parts((v as *const V).cast::<u8>(), size_of::<V>()) }
}

fn value_from_bytes<V: PodValue>(bytes: &[u8]) -> V {
    debug_assert_eq!(bytes.len(), size_of::<V>());
    // SAFETY: the buffer holds size_of::<V>() initialized bytes previously
    // produced by `value_bytes` for a valid value of V.
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<V>()) }
}

fn short_run_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, what.to_string())
}

fn pod_spill_read<V: PodValue>(
    r: &mut BufReader<File>,
    scratch: &mut Vec<u8>,
    payload_budget: u64,
) -> io::Result<V> {
    let n = size_of::<V>();
    if (n as u64) > payload_budget {
        return Err(short_run_err("spilled run ended mid-value"));
    }
    scratch.resize(n, 0);
    r.read_exact(scratch)?;
    Ok(value_from_bytes(scratch))
}

fn var_spill_write<V: VarValue>(v: &V, w: &mut BufWriter<File>) -> io::Result<()> {
    let bytes = v.as_spill_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "value of {} bytes exceeds the u32 spill length prefix",
                bytes.len()
            ),
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)
}

fn var_spill_read<V: VarValue>(
    r: &mut BufReader<File>,
    scratch: &mut Vec<u8>,
    payload_budget: u64,
) -> io::Result<V> {
    if payload_budget < 4 {
        return Err(short_run_err("spilled run ended mid-length-prefix"));
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from(u32::from_le_bytes(len_bytes));
    if len > payload_budget - 4 {
        return Err(short_run_err(
            "value length prefix exceeds the bytes remaining in the spilled run",
        ));
    }
    scratch.resize(len as usize, 0);
    r.read_exact(scratch)?;
    V::from_spill_bytes(scratch)
}

macro_rules! impl_pod_spill {
    ($($t:ty),* $(,)?) => {$(
        unsafe impl PodValue for $t {}
        impl sealed::Sealed for $t {}
        impl SpillValue for $t {
            const SPILL_FIXED_SIZE: Option<usize> = Some(size_of::<$t>());
            fn spill_size(&self) -> usize {
                size_of::<$t>()
            }
            fn spill_write(&self, w: &mut BufWriter<File>) -> io::Result<()> {
                w.write_all(value_bytes(self))
            }
            fn spill_read(
                r: &mut BufReader<File>,
                scratch: &mut Vec<u8>,
                payload_budget: u64,
            ) -> io::Result<Self> {
                pod_spill_read(r, scratch, payload_budget)
            }
            fn spill_placeholder() -> Self {
                pod_zeroed()
            }
            fn sort_spill_run<K: IntegerKey>(
                buffer: &mut Vec<(K, Self)>,
                cfg: &SortConfig,
                carry: &[u64],
            ) -> RunReport {
                crate::sorter::pod_sort_run(buffer, cfg, carry)
            }
            fn merge_spill_runs_into<K: IntegerKey>(
                runs: Vec<Vec<(K, Self)>>,
                tail: Vec<(K, Self)>,
                out: &mut [(K, Self)],
            ) {
                crate::sorter::pod_merge_runs_into(runs, tail, out)
            }
        }
    )*};
}
impl_pod_spill!(
    (),
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
);

unsafe impl<T: PodValue, const N: usize> PodValue for [T; N] {}
impl<T: PodValue, const N: usize> sealed::Sealed for [T; N] {}
impl<T: PodValue, const N: usize> SpillValue for [T; N] {
    const SPILL_FIXED_SIZE: Option<usize> = Some(size_of::<[T; N]>());
    fn spill_size(&self) -> usize {
        size_of::<Self>()
    }
    fn spill_write(&self, w: &mut BufWriter<File>) -> io::Result<()> {
        w.write_all(value_bytes(self))
    }
    fn spill_read(
        r: &mut BufReader<File>,
        scratch: &mut Vec<u8>,
        payload_budget: u64,
    ) -> io::Result<Self> {
        pod_spill_read(r, scratch, payload_budget)
    }
    fn spill_placeholder() -> Self {
        pod_zeroed()
    }
    fn sort_spill_run<K: IntegerKey>(
        buffer: &mut Vec<(K, Self)>,
        cfg: &SortConfig,
        carry: &[u64],
    ) -> RunReport {
        crate::sorter::pod_sort_run(buffer, cfg, carry)
    }
    fn merge_spill_runs_into<K: IntegerKey>(
        runs: Vec<Vec<(K, Self)>>,
        tail: Vec<(K, Self)>,
        out: &mut [(K, Self)],
    ) {
        crate::sorter::pod_merge_runs_into(runs, tail, out)
    }
}

macro_rules! impl_var_spill {
    ($($t:ty),* $(,)?) => {$(
        impl sealed::Sealed for $t {}
        impl SpillValue for $t {
            const SPILL_FIXED_SIZE: Option<usize> = None;
            fn spill_size(&self) -> usize {
                4 + self.as_spill_bytes().len()
            }
            fn spill_write(&self, w: &mut BufWriter<File>) -> io::Result<()> {
                var_spill_write(self, w)
            }
            fn spill_read(
                r: &mut BufReader<File>,
                scratch: &mut Vec<u8>,
                payload_budget: u64,
            ) -> io::Result<Self> {
                var_spill_read(r, scratch, payload_budget)
            }
            fn spill_placeholder() -> Self {
                <$t as VarValue>::from_spill_bytes(&[]).expect("empty payload is valid")
            }
            fn sort_spill_run<K: IntegerKey>(
                buffer: &mut Vec<(K, Self)>,
                cfg: &SortConfig,
                carry: &[u64],
            ) -> RunReport {
                crate::sorter::var_sort_run(buffer, cfg, carry)
            }
            fn merge_spill_runs_into<K: IntegerKey>(
                runs: Vec<Vec<(K, Self)>>,
                tail: Vec<(K, Self)>,
                out: &mut [(K, Self)],
            ) {
                crate::sorter::var_merge_runs_into(runs, tail, out)
            }
        }
    )*};
}
impl_var_spill!(Vec<u8>, String, Box<[u8]>);

/// Writes a sorted run to `path` and syncs it to disk; returns the bytes
/// written.
///
/// The final `sync_data` is part of the spill contract: a run is recorded
/// as spilled (and its buffered records dropped) only after this returns,
/// so a run the stats report as spilled is fully on disk — a panic or
/// crash later can never leave a recorded run truncated the way a dropped
/// `BufWriter` silently would.
pub(crate) fn write_run<K: IntegerKey, V: SpillValue>(
    path: &Path,
    records: &[(K, V)],
) -> io::Result<u64> {
    let file = File::create(path)?;
    let mut writer = BufWriter::with_capacity(1 << 20, file);
    let mut bytes = 0u64;
    for (key, value) in records {
        writer.write_all(&key.to_ordered_u64().to_le_bytes())?;
        value.spill_write(&mut writer)?;
        bytes += 8 + value.spill_size() as u64;
    }
    if obs::enabled() {
        let start = std::time::Instant::now();
        writer.flush()?;
        writer.get_ref().sync_data()?;
        let metrics = crate::metrics::m();
        metrics.fsync_ns.record_duration(start.elapsed());
        metrics.bytes_written.add(bytes);
    } else {
        writer.flush()?;
        writer.get_ref().sync_data()?;
    }
    Ok(bytes)
}

/// Metadata of one spilled run: record count *and* exact byte size, so
/// readers can reject truncated or overcounted runs in either format.
#[derive(Debug)]
pub(crate) struct SpilledRun {
    pub path: PathBuf,
    pub len: usize,
    pub bytes: u64,
}

/// Read-buffer bytes granted to each of `runs` spilled runs during a
/// merge: one shared pool of `total_bytes`, clamped per run to
/// `[4 KiB, 8 MiB]`.  The single clamp shared by the sorter and the
/// group-by, so the two paths cannot drift.
pub(crate) fn per_run_reader_budget(total_bytes: usize, runs: usize) -> usize {
    (total_bytes / runs.max(1)).clamp(4096, 8 << 20)
}

/// Whether `buffered_bytes` of variable-length payloads justify spilling a
/// run: one budget share out of `shares`
/// ([`dtsort::StreamConfig::spill_shares`] — the rest is sort/aggregation
/// working space plus, when pipelining, the payload bytes of in-flight
/// runs).  Always false for fixed-size values, whose footprint the
/// record-count capacity already bounds.  One policy shared by the sorter
/// and the group-by, so the two engines cannot drift.
pub(crate) fn var_payload_should_spill<V: SpillValue>(
    buffered_bytes: usize,
    memory_budget_bytes: usize,
    shares: usize,
) -> bool {
    V::SPILL_FIXED_SIZE.is_none() && buffered_bytes >= memory_budget_bytes / shares.max(2)
}

/// Spilled payload bytes of `chunk`, or 0 for fixed-size values (whose
/// byte meter is never consulted).
pub(crate) fn var_payload_bytes<K, V: SpillValue>(chunk: &[(K, V)]) -> usize {
    if V::SPILL_FIXED_SIZE.is_some() {
        return 0;
    }
    chunk.iter().map(|(_, v)| v.spill_size()).sum()
}

/// Buffered sequential reader over one spilled run.
pub(crate) struct RunReader<V: SpillValue> {
    reader: BufReader<File>,
    remaining: usize,
    bytes_remaining: u64,
    /// Side buffer values stream through; for var-format runs it grows to
    /// the largest value of the run and is reused across records.
    scratch: Vec<u8>,
    _value: PhantomData<V>,
}

impl<V: SpillValue> RunReader<V> {
    pub fn open(run: &SpilledRun, buffer_bytes: usize) -> io::Result<Self> {
        let file = File::open(&run.path)?;
        // Validate the file length eagerly: a truncated spill file must
        // surface as an I/O error here, at open time, rather than as a
        // mid-merge failure (or, worse, a silently shorter output if a
        // caller ever trusted the byte stream over the run metadata).
        let actual = file.metadata()?.len();
        if actual < run.bytes {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated spilled run {}: expected {} bytes for {} records, found {}",
                    run.path.display(),
                    run.bytes,
                    run.len,
                    actual
                ),
            ));
        }
        Ok(Self {
            reader: BufReader::with_capacity(buffer_bytes.max(4096), file),
            remaining: run.len,
            bytes_remaining: run.bytes,
            scratch: Vec::new(),
            _value: PhantomData,
        })
    }

    /// Reads the next record, or `None` at end of run.
    pub fn next_record(&mut self) -> io::Result<Option<(u64, V)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.bytes_remaining < 8 {
            // The run claims more records than its bytes can hold; refuse
            // to read past the end rather than serve garbage.
            return Err(short_run_err(
                "spilled run record count exceeds its byte size",
            ));
        }
        let mut key_bytes = [0u8; 8];
        self.reader.read_exact(&mut key_bytes)?;
        let payload_budget = self.bytes_remaining - 8;
        let value = V::spill_read(&mut self.reader, &mut self.scratch, payload_budget)?;
        self.bytes_remaining = payload_budget - value.spill_size() as u64;
        self.remaining -= 1;
        Ok(Some((u64::from_le_bytes(key_bytes), value)))
    }

    /// Reads all remaining records, reconstructing the key type.
    pub fn read_all<K: IntegerKey>(&mut self) -> io::Result<Vec<(K, V)>> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some((key, value)) = self.next_record()? {
            out.push((K::from_ordered_u64(key), value));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pisort-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn fixed_record_size<V: PodValue>() -> u64 {
        8 + size_of::<V>() as u64
    }

    /// Writes `records` and returns run metadata matching the file.
    fn spill<K: IntegerKey, V: SpillValue>(path: &Path, records: &[(K, V)]) -> SpilledRun {
        let bytes = write_run(path, records).unwrap();
        SpilledRun {
            path: path.to_path_buf(),
            len: records.len(),
            bytes,
        }
    }

    #[test]
    fn roundtrip_u32_keys_u32_values() {
        let path = tmp_path("u32u32.bin");
        let records: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 3, i)).collect();
        let run = spill(&path, &records);
        assert_eq!(run.bytes, 12 * 1000);
        let mut reader = RunReader::<u32>::open(&run, 4096).unwrap();
        let got: Vec<(u32, u32)> = reader.read_all().unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_signed_keys_and_unit_values() {
        let path = tmp_path("i64unit.bin");
        let records: Vec<(i64, ())> = vec![(i64::MIN, ()), (-1, ()), (0, ()), (i64::MAX, ())];
        let run = spill(&path, &records);
        let mut reader = RunReader::<()>::open(&run, 4096).unwrap();
        let got: Vec<(i64, ())> = reader.read_all().unwrap();
        assert_eq!(got, records);
        // Ordered-u64 images on disk must be monotone for signed keys.
        let mut reader = RunReader::<()>::open(&run, 4096).unwrap();
        let mut ordered = Vec::new();
        while let Some((k, ())) = reader.next_record().unwrap() {
            ordered.push(k);
        }
        assert!(ordered.windows(2).all(|w| w[0] < w[1]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_array_values() {
        let path = tmp_path("arr.bin");
        let records: Vec<(u16, [u8; 5])> = (0..100u16).map(|i| (i, [i as u8; 5])).collect();
        let run = spill(&path, &records);
        let got: Vec<(u16, [u8; 5])> = RunReader::<[u8; 5]>::open(&run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_string_values_incl_empty_and_multi_kb() {
        let path = tmp_path("varstr.bin");
        let big = "x".repeat(5 << 10);
        let records: Vec<(u64, String)> = vec![
            (3, String::new()),
            (5, "hello".to_string()),
            (7, big.clone()),
            (9, "naïve-ütf8-τ".to_string()),
            (11, String::new()),
            (13, big),
        ];
        let run = spill(&path, &records);
        let payload: usize = records.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(run.bytes, (records.len() * 12 + payload) as u64);
        let got: Vec<(u64, String)> = RunReader::<String>::open(&run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_byte_vec_and_boxed_slice_values() {
        let path = tmp_path("varbytes.bin");
        let records: Vec<(u32, Vec<u8>)> = (0..200u32)
            .map(|i| {
                (
                    i,
                    (0..(i as usize * 13) % 2048)
                        .map(|j| (i + j as u32) as u8)
                        .collect(),
                )
            })
            .collect();
        let run = spill(&path, &records);
        let got: Vec<(u32, Vec<u8>)> = RunReader::<Vec<u8>>::open(&run, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        // The same payloads round-trip as Box<[u8]> (same on-disk format).
        let boxed: Vec<(u32, Box<[u8]>)> = records
            .iter()
            .map(|(k, v)| (*k, v.clone().into_boxed_slice()))
            .collect();
        let path2 = tmp_path("varboxed.bin");
        let run2 = spill(&path2, &boxed);
        assert_eq!(run2.bytes, run.bytes);
        let got2: Vec<(u32, Box<[u8]>)> = RunReader::<Box<[u8]>>::open(&run2, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got2, boxed);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(path2).ok();
    }

    #[test]
    fn truncated_run_is_an_io_error_not_a_short_read() {
        let path = tmp_path("truncated.bin");
        let records: Vec<(u32, u32)> = (0..500u32).map(|i| (i, i * 2)).collect();
        let run = spill(&path, &records);
        // Truncation mid-record and exactly at a record boundary must both
        // fail at open — never yield fewer records than `run.len`.
        for cut in [run.bytes - 5, run.bytes - fixed_record_size::<u32>(), 0] {
            let f = File::options().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let err = match RunReader::<u32>::open(&run, 4096) {
                Err(e) => e,
                Ok(mut reader) => reader
                    .read_all::<u32>()
                    .expect_err("short file must not read back successfully"),
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_varlen_run_is_an_io_error() {
        let path = tmp_path("var-truncated.bin");
        let records: Vec<(u64, String)> = (0..100u64)
            .map(|i| {
                (
                    i,
                    format!("payload-{i}-{}", "y".repeat((i as usize * 7) % 90)),
                )
            })
            .collect();
        let run = spill(&path, &records);
        let last_payload = records.last().unwrap().1.len() as u64;
        let last_record = 8 + 4 + last_payload;
        // Mid-value, mid-length-prefix, exactly at a record boundary, empty.
        for cut in [
            run.bytes - 1,
            run.bytes - last_payload - 2,
            run.bytes - last_record,
            0,
        ] {
            let f = File::options().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let err = match RunReader::<String>::open(&run, 4096) {
                Err(e) => e,
                Ok(mut reader) => reader
                    .read_all::<u64>()
                    .expect_err("short file must not read back successfully"),
            };
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overcounted_run_length_is_an_io_error() {
        // A run whose metadata claims more records than the file holds is
        // the dual failure: the reader must refuse it rather than serve a
        // shorter stream.
        let path = tmp_path("overcount.bin");
        let records: Vec<(u64, ())> = (0..100u64).map(|i| (i, ())).collect();
        let good = spill(&path, &records);
        let run = SpilledRun {
            path: path.clone(),
            len: records.len() + 1,
            bytes: good.bytes + fixed_record_size::<()>(),
        };
        let err = match RunReader::<()>::open(&run, 4096) {
            Err(e) => e,
            Ok(_) => panic!("overcount must fail"),
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // The correct metadata still reads fine.
        let got: Vec<(u64, ())> = RunReader::<()>::open(&good, 4096)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(got, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn overcounted_varlen_record_count_is_an_io_error() {
        // Var-format dual failure: byte size matches the file but the
        // record count claims one more record than the bytes hold.  Open
        // cannot catch this (the byte size is honest), so the reader must
        // refuse at the point the counts disagree.
        let path = tmp_path("var-overcount.bin");
        let records: Vec<(u64, Vec<u8>)> = (0..50u64).map(|i| (i, vec![i as u8; 10])).collect();
        let good = spill(&path, &records);
        let run = SpilledRun {
            path: path.clone(),
            len: records.len() + 1,
            bytes: good.bytes,
        };
        let mut reader = RunReader::<Vec<u8>>::open(&run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("overcounted record count must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_length_prefix_cannot_read_past_the_run() {
        let path = tmp_path("var-badprefix.bin");
        let records: Vec<(u64, Vec<u8>)> = (0..10u64).map(|i| (i, vec![7u8; 16])).collect();
        let run = spill(&path, &records);
        // Overwrite the first record's length prefix (offset 8) with a huge
        // value; the file size is unchanged, so only the in-stream budget
        // check can catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = RunReader::<Vec<u8>>::open(&run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("corrupted length prefix must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_utf8_string_payload_is_invalid_data() {
        // Write raw bytes, read back as String: the var formats are
        // identical, so this models on-disk corruption of a String run.
        let path = tmp_path("var-badutf8.bin");
        let records: Vec<(u64, Vec<u8>)> = vec![(1, vec![0xFF, 0xFE, 0xFD])];
        let run = spill(&path, &records);
        let mut reader = RunReader::<String>::open(&run, 4096).unwrap();
        let err = reader
            .read_all::<u64>()
            .expect_err("non-UTF-8 String payload must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reader_budget_is_clamped_and_shared() {
        assert_eq!(per_run_reader_budget(8 << 20, 2), 4 << 20);
        assert_eq!(per_run_reader_budget(8 << 20, 0), 8 << 20);
        assert_eq!(per_run_reader_budget(1 << 10, 4), 4096);
        assert_eq!(per_run_reader_budget(usize::MAX, 1), 8 << 20);
    }

    #[test]
    fn zeroed_pod_values() {
        assert_eq!(pod_zeroed::<u64>(), 0);
        assert_eq!(pod_zeroed::<[u32; 3]>(), [0, 0, 0]);
        pod_zeroed::<()>();
    }

    #[test]
    fn spill_placeholders_are_empty() {
        assert_eq!(String::spill_placeholder(), "");
        assert_eq!(Vec::<u8>::spill_placeholder(), Vec::<u8>::new());
        assert_eq!(u64::spill_placeholder(), 0);
        assert_eq!(Box::<[u8]>::spill_placeholder().len(), 0);
    }
}
