//! Deterministic, seeded fault injection for the spill I/O stack.
//!
//! A [`FaultPlan`] is a reproducible schedule of I/O faults keyed by
//! per-operation counters — never by wall clock — so the same plan over
//! the same workload injects the same faults at the same points on every
//! run, on every machine.  [`FaultIo`] is a decorator over any
//! [`SpillIo`] backend ([`crate::spillio::SpillIoHandle::with_faults`])
//! that consults the plan on each create/open/write/read/fsync and either
//! passes the operation through or injects one of:
//!
//! * `ENOSPC` ([`io::ErrorKind::StorageFull`]) on write — the permanent
//!   full-disk error,
//! * transient errors ([`io::ErrorKind::Interrupted`] at create/open,
//!   [`io::ErrorKind::TimedOut`] mid-write/read/fsync — `Interrupted` is
//!   reserved for open-time faults because `Write::write_all` silently
//!   retries it, which would make a mid-write injection unobservable),
//! * torn writes (a prefix lands, then [`io::ErrorKind::WriteZero`]),
//! * fsync failures at [`SpillWrite::finish`],
//! * read errors mid-stream,
//! * single-byte block corruption on read ([`FaultKind::CorruptByte`],
//!   off by default: only the checksummed `DeltaLz` spill format can
//!   *detect* it, so injecting it under the flat format would turn a
//!   chaos test into silent wrong output),
//! * a spill-write panic ([`FaultKind::WritePanic`], off by default:
//!   meant for targeted worker/writer-thread crash tests, not blanket
//!   schedules that also cover synchronous spill paths).
//!
//! Because the decorator wraps a *handle* and not the backend, fault
//! scope is per handle: a server can give one session a faulted view of
//! the shared batched pool while every other session keeps the clean
//! view — which is exactly how the cross-session quarantine tests prove
//! one tenant's disk trouble cannot leak into another's bytes.
//!
//! CI selects a plan for whole test binaries through the
//! `PISORT_FAULT_PLAN` environment variable (`"<seed>"` or
//! `"<seed>:<period>"`, see [`FaultPlan::from_env`]); chaos tests read it
//! themselves and decorate their engines explicitly — constructing a
//! handle via `from_config` never injects anything.

use crate::spillio::{sealed_io, JobPool, SpillIo, SpillRead, SpillWrite};
use dtsort::SpillIoMode;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One injectable fault site.  The discriminant indexes the plan's
/// per-kind operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `create` fails with [`io::ErrorKind::Interrupted`].
    CreateTransient = 0,
    /// `open` fails with [`io::ErrorKind::Interrupted`].
    OpenTransient = 1,
    /// A write fails with [`io::ErrorKind::StorageFull`] (ENOSPC).
    WriteEnospc = 2,
    /// A write fails with [`io::ErrorKind::TimedOut`].
    WriteTransient = 3,
    /// Half the buffer lands, then [`io::ErrorKind::WriteZero`].
    TornWrite = 4,
    /// The writer's `finish` (fsync) fails with
    /// [`io::ErrorKind::TimedOut`] after the data (possibly) landed —
    /// the classic untrusted-fsync state; recovery must rewrite the run
    /// from scratch.
    FsyncTransient = 5,
    /// A read fails with [`io::ErrorKind::TimedOut`].
    ReadTransient = 6,
    /// One deterministic byte of a read block is flipped.  **Not** in
    /// [`FaultPlan::seeded`]'s default mix: only checksummed spill
    /// formats can detect it.
    CorruptByte = 7,
    /// The write panics (caught by the spill writer thread / the batched
    /// pool worker).  **Not** in the default mix: a panic on a
    /// synchronous spill path would unwind into the caller.
    WritePanic = 8,
}

const NUM_KINDS: usize = 9;

/// The fault kinds [`FaultPlan::seeded`] enables: every error-returning
/// site, transient and permanent, excluding byte corruption (format
/// dependent) and panics (schedule dependent) — see [`FaultKind`].
pub const DEFAULT_FAULT_KINDS: &[FaultKind] = &[
    FaultKind::CreateTransient,
    FaultKind::OpenTransient,
    FaultKind::WriteEnospc,
    FaultKind::WriteTransient,
    FaultKind::TornWrite,
    FaultKind::FsyncTransient,
    FaultKind::ReadTransient,
];

/// Default 1-in-`period` injection rate for [`FaultPlan::from_env`] specs
/// that give only a seed.
pub const DEFAULT_FAULT_PERIOD: u64 = 53;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct PlanInner {
    seed: u64,
    /// Roughly 1 in `period` eligible operations faults.
    period: u64,
    /// Bit per [`FaultKind`] discriminant.
    mask: u32,
    /// Targeted mode: fault exactly the `n`-th operation of one kind.
    target: Option<(FaultKind, u64)>,
    /// Per-kind operation counters — the deterministic clock.
    counters: [AtomicU64; NUM_KINDS],
    injected: AtomicU64,
}

/// A deterministic, shareable fault schedule.  Clones share the same
/// counters, so every decorator built from one plan consumes the same
/// deterministic sequence.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.inner.seed)
            .field("period", &self.inner.period)
            .field("target", &self.inner.target)
            .field("injected", &self.injected())
            .finish()
    }
}

impl FaultPlan {
    fn build(seed: u64, period: u64, mask: u32, target: Option<(FaultKind, u64)>) -> Self {
        Self {
            inner: Arc::new(PlanInner {
                seed,
                period: period.max(1),
                mask,
                target,
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// A seeded schedule injecting the [`DEFAULT_FAULT_KINDS`] mix at
    /// roughly 1 in `period` eligible operations.
    pub fn seeded(seed: u64, period: u64) -> Self {
        Self::seeded_kinds(seed, period, DEFAULT_FAULT_KINDS)
    }

    /// A seeded schedule restricted to `kinds` (e.g. adding
    /// [`FaultKind::CorruptByte`] for a checksummed-format cell).
    pub fn seeded_kinds(seed: u64, period: u64, kinds: &[FaultKind]) -> Self {
        let mask = kinds.iter().fold(0u32, |m, &k| m | (1 << k as u32));
        Self::build(seed, period, mask, None)
    }

    /// A targeted schedule: fault exactly the `n`-th (0-based) operation
    /// of `kind` and nothing else — the scalpel the cleanup and
    /// quarantine tests use to hit one specific write, fsync or read.
    pub fn nth(kind: FaultKind, n: u64) -> Self {
        Self::build(0, 1, 0, Some((kind, n)))
    }

    /// The plan `PISORT_FAULT_PLAN` selects: `"<seed>"` or
    /// `"<seed>:<period>"` (period defaults to
    /// [`DEFAULT_FAULT_PERIOD`]).  `None` when unset or unparsable.
    pub fn from_env() -> Option<Self> {
        Self::parse(&std::env::var("PISORT_FAULT_PLAN").ok()?)
    }

    /// Parses a `PISORT_FAULT_PLAN` spec; see [`FaultPlan::from_env`].
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        let (seed, period) = match spec.split_once(':') {
            Some((s, p)) => (s.trim(), p.trim().parse().ok()?),
            None => (spec, DEFAULT_FAULT_PERIOD),
        };
        Some(Self::seeded(seed.parse().ok()?, period))
    }

    /// Faults injected so far, across every decorator sharing this plan.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Advances `kind`'s operation counter and decides whether this
    /// operation faults.  Deterministic: the decision is a pure function
    /// of (seed, kind, counter value).
    fn decide(&self, kind: FaultKind) -> bool {
        let p = &*self.inner;
        let count = p.counters[kind as usize].fetch_add(1, Ordering::Relaxed);
        let hit = match p.target {
            Some((tk, n)) => tk == kind && count == n,
            None => {
                p.mask & (1 << kind as u32) != 0
                    && splitmix64(p.seed ^ ((kind as u64) << 56) ^ count).is_multiple_of(p.period)
            }
        };
        if hit {
            p.injected.fetch_add(1, Ordering::Relaxed);
            if obs::enabled() {
                crate::metrics::m().fault_injected.incr();
            }
        }
        hit
    }
}

/// The fault-injecting decorator over an inner [`SpillIo`] backend.
/// Built by [`crate::spillio::SpillIoHandle::with_faults`]; shares the
/// inner backend (pool, buffers, knobs) and only filters the data paths.
pub(crate) struct FaultIo {
    inner: Arc<dyn SpillIo>,
    plan: FaultPlan,
}

impl FaultIo {
    pub(crate) fn new(inner: Arc<dyn SpillIo>, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }
}

impl sealed_io::Sealed for FaultIo {}

impl SpillIo for FaultIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>> {
        if self.plan.decide(FaultKind::CreateTransient) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient create failure",
            ));
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultWrite {
            inner,
            plan: self.plan.clone(),
        }))
    }

    fn open(&self, path: &Path, buffer_bytes: usize) -> io::Result<(Box<dyn SpillRead>, u64)> {
        if self.plan.decide(FaultKind::OpenTransient) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient open failure",
            ));
        }
        let (inner, len) = self.inner.open(path, buffer_bytes)?;
        Ok((
            Box::new(FaultRead {
                inner,
                plan: self.plan.clone(),
            }),
            len,
        ))
    }

    fn mode(&self) -> SpillIoMode {
        self.inner.mode()
    }

    fn max_inflight(&self) -> usize {
        self.inner.max_inflight()
    }

    fn set_max_inflight(&self, n: usize) {
        self.inner.set_max_inflight(n);
    }

    fn pool(&self) -> Option<JobPool> {
        self.inner.pool()
    }

    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    fn set_write_fuse(&self, bytes: u64) {
        self.inner.set_write_fuse(bytes);
    }

    fn set_write_fuse_panics(&self, on: bool) {
        self.inner.set_write_fuse_panics(on);
    }
}

struct FaultWrite {
    inner: Box<dyn SpillWrite>,
    plan: FaultPlan,
}

impl Write for FaultWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if self.plan.decide(FaultKind::WritePanic) {
            panic!("injected spill-write panic");
        }
        if self.plan.decide(FaultKind::WriteEnospc) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            ));
        }
        if self.plan.decide(FaultKind::WriteTransient) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected transient write failure",
            ));
        }
        if self.plan.decide(FaultKind::TornWrite) {
            // Half the buffer lands — the torn state a crash mid-write
            // leaves behind — then the write reports failure.
            self.inner.write_all(&buf[..buf.len() / 2])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected torn write",
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl SpillWrite for FaultWrite {
    fn finish(self: Box<Self>) -> io::Result<()> {
        let this = *self;
        if this.plan.decide(FaultKind::FsyncTransient) {
            // The bytes may or may not be durable — exactly the fsync
            // ambiguity.  Complete the inner writer (so no worker is left
            // holding the file) but report failure; recovery rewrites the
            // whole run.
            let _ = this.inner.finish();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected fsync failure",
            ));
        }
        this.inner.finish()
    }
}

struct FaultRead {
    inner: Box<dyn SpillRead>,
    plan: FaultPlan,
}

impl Read for FaultRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.decide(FaultKind::ReadTransient) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected transient read failure",
            ));
        }
        let n = self.inner.read(buf)?;
        if n > 0 && self.plan.decide(FaultKind::CorruptByte) {
            let count =
                self.plan.inner.counters[FaultKind::CorruptByte as usize].load(Ordering::Relaxed);
            let idx = (splitmix64(self.plan.inner.seed ^ count) % n as u64) as usize;
            buf[idx] ^= 0x40;
        }
        Ok(n)
    }
}

impl SpillRead for FaultRead {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spillio::SpillIoHandle;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pisort-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 251) as u8).collect()
    }

    /// Runs the same write/read workload under `plan`, recording each
    /// operation's outcome, so two plans can be compared for determinism.
    fn run_workload(plan: &FaultPlan) -> Vec<String> {
        let io = SpillIoHandle::blocking().with_faults(plan.clone());
        let data = payload(10_000);
        let mut outcomes = Vec::new();
        for i in 0..40 {
            let path = tmp_path(&format!("det-{i}.bin"));
            let res = io
                .create(&path)
                .and_then(|mut w| {
                    for piece in data.chunks(997) {
                        w.write_all(piece)?;
                    }
                    w.finish()
                })
                .and_then(|()| {
                    let (mut r, _) = io.open(&path, 512)?;
                    let mut out = Vec::new();
                    r.read_to_end(&mut out)?;
                    Ok(())
                });
            outcomes.push(match res {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("{:?}:{e}", e.kind()),
            });
            std::fs::remove_file(&path).ok();
        }
        outcomes
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::seeded(0xFA_17, 11);
        let b = FaultPlan::seeded(0xFA_17, 11);
        let oa = run_workload(&a);
        let ob = run_workload(&b);
        assert_eq!(oa, ob, "same seed must inject the same faults");
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "period 11 over this workload must fire");
        assert!(
            oa.iter().any(|o| o != "ok"),
            "some operation must have failed: {oa:?}"
        );
        // A different seed gives a different schedule (overwhelmingly).
        let c = FaultPlan::seeded(0xFA_18, 11);
        let oc = run_workload(&c);
        assert!(oa != oc || a.injected() != c.injected());
    }

    #[test]
    fn nth_targets_exactly_one_operation() {
        let plan = FaultPlan::nth(FaultKind::FsyncTransient, 2);
        let io = SpillIoHandle::blocking().with_faults(plan.clone());
        let data = payload(1000);
        let mut failures = Vec::new();
        for i in 0..6 {
            let path = tmp_path(&format!("nth-{i}.bin"));
            let res = io.create(&path).and_then(|mut w| {
                w.write_all(&data)?;
                w.finish()
            });
            if let Err(e) = res {
                failures.push((i, e.kind()));
            }
            std::fs::remove_file(&path).ok();
        }
        assert_eq!(
            failures,
            vec![(2, io::ErrorKind::TimedOut)],
            "exactly the 3rd finish faults"
        );
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let plan = FaultPlan::nth(FaultKind::CorruptByte, 0);
        let path = tmp_path("corrupt.bin");
        let clean = SpillIoHandle::blocking();
        let data = payload(4096);
        {
            let mut w = clean.create(&path).unwrap();
            w.write_all(&data).unwrap();
            w.finish().unwrap();
        }
        let io = clean.with_faults(plan.clone());
        let (mut r, _) = io.open(&path, 1024).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), data.len());
        let diffs = out.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one byte flipped");
        assert_eq!(plan.injected(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn env_spec_parses_seed_and_period() {
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("notanumber").is_none());
        assert!(FaultPlan::parse("7:x").is_none());
        let p = FaultPlan::parse("42").unwrap();
        assert_eq!(p.inner.seed, 42);
        assert_eq!(p.inner.period, DEFAULT_FAULT_PERIOD);
        let p = FaultPlan::parse(" 9:17 ").unwrap();
        assert_eq!(p.inner.seed, 9);
        assert_eq!(p.inner.period, 17);
    }

    #[test]
    fn decorator_delegates_backend_shape() {
        let io = SpillIoHandle::batched(3, 8).with_faults(FaultPlan::seeded(1, 1000));
        assert_eq!(io.mode(), SpillIoMode::Batched);
        assert!(io.pool().is_some(), "pool shared through the decorator");
        assert_eq!(io.max_inflight(), 8);
        io.rebalance_shared(2);
        assert_eq!(io.max_inflight(), 4, "rebalance reaches the inner core");
        io.rebalance_shared(1);
    }
}
