//! Zero-dependency codecs for the compressed spill-run format.
//!
//! Two primitives, both hand-rolled so the workspace stays free of
//! external crates:
//!
//! * **LEB128 varints** — the sorted `u64` keys of a run are monotone, so
//!   each block stores the first key absolute and the rest as unsigned
//!   deltas; small deltas encode in one byte.
//! * **A mini-LZ77 byte compressor** (`lz_compress` / `lz_decompress`) in
//!   the LZ4 block style: greedy hash-table matching, token bytes packing
//!   literal/match lengths in two nibbles with 255-chained extensions,
//!   `u16 LE` match offsets, minimum match length 4, and a literals-only
//!   final sequence.  The decompressor is bounded by the caller's
//!   expected output size, so corrupt input cannot over-allocate.
//!
//! Neither primitive knows about records or blocks; framing lives in
//! `spill.rs`.

use std::io;

/// Minimum match length the compressor emits (and the bias added to the
/// token's match nibble on decode).
const MIN_MATCH: usize = 4;
/// Size of the match-candidate hash table, as a power of two.
const HASH_BITS: u32 = 13;
/// Largest back-reference distance an offset can express.
const MAX_OFFSET: usize = u16::MAX as usize;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt block: {what}"))
}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) over `data`,
/// continuing from `state` (pass 0 to start; chain calls to checksum a
/// logical concatenation).  Table-driven and dependency-free, used for
/// the per-block checksums of the compressed spill format.
pub(crate) fn crc32_update(state: u32, data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !state;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Append `x` as an unsigned LEB128 varint (1–10 bytes).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Read an unsigned LEB128 varint from the front of `src`, advancing it.
pub(crate) fn read_varint(src: &mut &[u8]) -> io::Result<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = src.first().ok_or_else(|| corrupt("truncated varint"))?;
        *src = &src[1..];
        if shift == 63 && byte > 1 {
            return Err(corrupt("varint overflows u64"));
        }
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint longer than 10 bytes"));
        }
    }
}

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn load4(src: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(src[i..i + 4].try_into().unwrap())
}

/// Emit one LZ sequence: `lit` literals followed by a match of `len`
/// bytes at back-distance `offset` (`offset == 0` means final
/// literals-only sequence, no match part).
fn emit_sequence(out: &mut Vec<u8>, lit: &[u8], offset: usize, len: usize) {
    let mlen = if offset == 0 { 0 } else { len - MIN_MATCH };
    let token = ((lit.len().min(15) as u8) << 4) | (mlen.min(15) as u8);
    out.push(token);
    if lit.len() >= 15 {
        let mut rest = lit.len() - 15;
        while rest >= 255 {
            out.push(255);
            rest -= 255;
        }
        out.push(rest as u8);
    }
    out.extend_from_slice(lit);
    if offset == 0 {
        return;
    }
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if mlen >= 15 {
        let mut rest = mlen - 15;
        while rest >= 255 {
            out.push(255);
            rest -= 255;
        }
        out.push(rest as u8);
    }
}

/// Compress `src` into `out` (appending).  Always succeeds; worst case
/// the output is slightly larger than the input (the caller falls back
/// to storing raw when that happens).
pub(crate) fn lz_compress(src: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![0u32; 1 << HASH_BITS]; // position + 1; 0 = empty
    let mut i = 0usize;
    let mut anchor = 0usize;
    while i + MIN_MATCH <= src.len() {
        let h = hash4(load4(src, i));
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let c = cand - 1;
            if i - c <= MAX_OFFSET && src[c..c + MIN_MATCH] == src[i..i + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while i + len < src.len() && src[c + len] == src[i + len] {
                    len += 1;
                }
                emit_sequence(out, &src[anchor..i], i - c, len);
                i += len;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit_sequence(out, &src[anchor..], 0, 0);
}

/// Decompress `src` into `out` (appending), producing exactly
/// `expected_len` new bytes.  Any framing violation — truncated input,
/// an offset reaching before the block, or a length that would overshoot
/// `expected_len` — is `InvalidData`, never a panic or an unbounded
/// allocation.
pub(crate) fn lz_decompress(
    mut src: &[u8],
    out: &mut Vec<u8>,
    expected_len: usize,
) -> io::Result<()> {
    let base = out.len();
    let limit = base + expected_len;
    out.reserve(expected_len);
    let read_ext = |src: &mut &[u8]| -> io::Result<usize> {
        let mut total = 0usize;
        loop {
            let &b = src.first().ok_or_else(|| corrupt("truncated length"))?;
            *src = &src[1..];
            total += b as usize;
            if b != 255 {
                return Ok(total);
            }
        }
    };
    while !src.is_empty() {
        let token = src[0];
        src = &src[1..];
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_ext(&mut src)?;
        }
        if lit_len > src.len() {
            return Err(corrupt("literal run past end of input"));
        }
        if out.len() + lit_len > limit {
            return Err(corrupt("literal run past expected output size"));
        }
        out.extend_from_slice(&src[..lit_len]);
        src = &src[lit_len..];
        if src.is_empty() {
            break; // final literals-only sequence
        }
        if src.len() < 2 {
            return Err(corrupt("truncated match offset"));
        }
        let offset = u16::from_le_bytes([src[0], src[1]]) as usize;
        src = &src[2..];
        let mut mlen = (token & 0x0F) as usize;
        if mlen == 15 {
            mlen += read_ext(&mut src)?;
        }
        mlen += MIN_MATCH;
        if offset == 0 || offset > out.len() - base {
            return Err(corrupt("match offset outside the block"));
        }
        if out.len() + mlen > limit {
            return Err(corrupt("match run past expected output size"));
        }
        // Overlapping copies (offset < mlen) are how the format expresses
        // runs, so copy byte-wise from the already-written output.
        let start = out.len() - offset;
        for j in 0..mlen {
            let b = out[start + j];
            out.push(b);
        }
    }
    if out.len() != limit {
        return Err(corrupt("decompressed size mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> (usize, Vec<u8>) {
        let mut enc = Vec::new();
        lz_compress(data, &mut enc);
        let mut dec = Vec::new();
        lz_decompress(&enc, &mut dec, data.len()).expect("decompress");
        assert_eq!(dec, data);
        (enc.len(), enc)
    }

    #[test]
    fn crc32_matches_known_vectors_and_chains() {
        // The classic IEEE CRC-32 check values.
        assert_eq!(crc32_update(0, b""), 0);
        assert_eq!(crc32_update(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32_update(0, b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // Chaining equals checksumming the concatenation.
        let whole = crc32_update(0, b"123456789");
        let chained = crc32_update(crc32_update(0, b"1234"), b"56789");
        assert_eq!(whole, chained);
        // A single flipped bit changes the checksum.
        assert_ne!(crc32_update(0, b"123456789"), crc32_update(0, b"123456788"));
    }

    #[test]
    fn varint_roundtrip_and_boundaries() {
        let vals = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut cur = buf.as_slice();
        for &v in &vals {
            assert_eq!(read_varint(&mut cur).unwrap(), v);
        }
        assert!(cur.is_empty());
        // One byte per value below 128.
        let mut small = Vec::new();
        write_varint(&mut small, 127);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut cur: &[u8] = &[0x80, 0x80];
        assert!(read_varint(&mut cur).is_err(), "truncated continuation");
        // 10 bytes with a final byte carrying bits beyond 2^64.
        let mut cur: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert!(read_varint(&mut cur).is_err(), "overflowing final byte");
        let mut cur: &[u8] = &[0x80; 11];
        assert!(read_varint(&mut cur).is_err(), "too many bytes");
    }

    #[test]
    fn lz_roundtrips_representative_payloads() {
        roundtrip(b"");
        roundtrip(b"abc");
        roundtrip(&[0u8; 100_000]);
        roundtrip(
            "the quick brown fox jumps over the lazy dog "
                .repeat(500)
                .as_bytes(),
        );
        // Log-line-ish payload with shared structure.
        let log: Vec<u8> = (0..2000)
            .flat_map(|i| {
                format!("GET /api/v1/users/{i} HTTP/1.1 200 {}\n", i * 37 % 1000).into_bytes()
            })
            .collect();
        let (enc_len, _) = roundtrip(&log);
        assert!(
            enc_len < log.len() / 2,
            "structured text must compress well"
        );
        // Pseudo-random (incompressible) bytes still round-trip.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let rnd: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&rnd);
    }

    #[test]
    fn lz_handles_overlapping_matches() {
        // Period-1 and period-3 repetitions force offset < match length.
        roundtrip(&b"a".repeat(300));
        roundtrip(&b"xyz".repeat(300));
    }

    #[test]
    fn lz_decompress_rejects_corruption() {
        let mut enc = Vec::new();
        lz_compress(&b"hello world hello world hello world".repeat(4), &mut enc);
        let good_len = 35 * 4;
        // Wrong expected length: both directions must fail, not panic.
        let mut out = Vec::new();
        assert!(lz_decompress(&enc, &mut out, good_len - 1).is_err());
        let mut out = Vec::new();
        assert!(lz_decompress(&enc, &mut out, good_len + 1).is_err());
        // Truncated stream.
        let mut out = Vec::new();
        assert!(lz_decompress(&enc[..enc.len() / 2], &mut out, good_len).is_err());
        // An offset pointing before the start of the block.
        let bad = [0x04u8, b'a', b'b', b'c', b'd', 0xFF, 0xFF];
        let mut out = Vec::new();
        assert!(lz_decompress(&bad, &mut out, 100).is_err());
        // A zero offset.
        let bad = [0x14u8, b'a', 0x00, 0x00];
        let mut out = Vec::new();
        assert!(lz_decompress(&bad, &mut out, 100).is_err());
    }

    #[test]
    fn lz_output_is_bounded_by_expected_len() {
        // A malicious stream claiming huge match runs must stop at the
        // caller's cap instead of allocating without bound.
        let mut enc = Vec::new();
        // 4 literals then an enormous chained match length.
        enc.push(0x4F);
        enc.extend_from_slice(b"abcd");
        enc.extend_from_slice(&1u16.to_le_bytes());
        enc.extend_from_slice(&[255u8; 64]);
        enc.push(0);
        let mut out = Vec::new();
        let err = lz_decompress(&enc, &mut out, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(out.capacity() < 1 << 20, "no unbounded allocation");
    }
}
