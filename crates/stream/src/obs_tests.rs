//! Observability tests that need crate internals: a spill value with an
//! artificially slow serializer proves — from the emitted trace alone —
//! that the pipelined spill path really overlaps run sorting on the caller
//! thread with run writing on the background writer thread.

use crate::sorter::{var_merge_runs_into, var_sort_run, StreamSorter};
use crate::spill::sealed::Sealed;
use crate::spill::{SpillValue, VarValue};
use dtsort::{IntegerKey, RunReport, SortConfig, StreamConfig};
use std::io::{self, Read, Write};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Serializes the tests in this module: they enable tracing globally and
/// drain the global span rings, which would race with each other.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Per-record artificial disk latency.  Large against the cost of sorting
/// a run (microseconds), small against the test budget.
const WRITE_DELAY: Duration = Duration::from_micros(20);

/// A var-length value whose serializer sleeps per record, making spill
/// writes slow enough that the caller thread demonstrably sorts the next
/// run while the writer thread is still on the previous one.
#[derive(Debug, Clone)]
struct SlowValue {
    payload: Vec<u8>,
}

impl SlowValue {
    fn new(i: u64) -> Self {
        Self {
            payload: format!("slow-{i:08}").into_bytes(),
        }
    }
}

impl VarValue for SlowValue {
    fn as_spill_bytes(&self) -> &[u8] {
        &self.payload
    }
    fn from_spill_bytes(bytes: &[u8]) -> io::Result<Self> {
        Ok(Self {
            payload: bytes.to_vec(),
        })
    }
}

impl Sealed for SlowValue {}
impl SpillValue for SlowValue {
    const SPILL_FIXED_SIZE: Option<usize> = None;
    fn spill_size(&self) -> usize {
        4 + self.payload.len()
    }
    fn spill_write(&self, w: &mut dyn Write) -> io::Result<()> {
        std::thread::sleep(WRITE_DELAY);
        self.payload.spill_write(w)
    }
    fn spill_read(
        r: &mut dyn Read,
        scratch: &mut Vec<u8>,
        payload_budget: u64,
    ) -> io::Result<Self> {
        Vec::<u8>::spill_read(r, scratch, payload_budget).map(|payload| Self { payload })
    }
    fn spill_placeholder() -> Self {
        Self {
            payload: Vec::new(),
        }
    }
    fn sort_spill_run<K: IntegerKey>(
        buffer: &mut Vec<(K, Self)>,
        cfg: &SortConfig,
        carry: &[u64],
    ) -> RunReport {
        var_sort_run(buffer, cfg, carry)
    }
    fn merge_spill_runs_into<K: IntegerKey>(
        runs: Vec<Vec<(K, Self)>>,
        tail: Vec<(K, Self)>,
        out: &mut [(K, Self)],
    ) {
        var_merge_runs_into(runs, tail, out)
    }
}

#[test]
fn pipelined_spill_trace_shows_sort_write_overlap() {
    let _guard = obs_lock().lock().unwrap();
    obs::enable();
    let cfg = StreamConfig {
        memory_budget_bytes: 24 << 10,
        merge_read_ahead: Some(true),
        sort: SortConfig {
            base_case_threshold: 64,
            ..Default::default()
        },
        ..StreamConfig::default()
    };
    let mut sorter: StreamSorter<u64, SlowValue> = StreamSorter::with_config(cfg);
    let capacity = sorter.run_capacity;
    // Start from a clean slate so the assertions below only see this
    // sorter's spans (concurrent tests may add spans, never remove ours).
    let _ = obs::drain_spans();
    let n = 6 * capacity as u64;
    for i in 0..n {
        sorter.push_record(i % 193, SlowValue::new(i)).unwrap();
    }
    let got = sorter.finish_vec().unwrap();
    assert_eq!(got.len(), n as usize);
    assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));

    let (events, _) = obs::drain_spans();
    let sorts: Vec<_> = events.iter().filter(|e| e.name == "sort_run").collect();
    let writes: Vec<_> = events.iter().filter(|e| e.name == "spill_write").collect();
    assert!(
        sorts.len() >= 3,
        "expected several runs, got {}",
        sorts.len()
    );
    assert!(
        writes.len() >= 3,
        "expected several spilled runs, got {}",
        writes.len()
    );
    // The pipelining claim, read off the trace: while the writer thread is
    // busy with run N, the caller thread is already sorting a later run.
    // With the artificial write latency this must hold for several runs.
    let overlapping_sorts = sorts
        .iter()
        .filter(|s| writes.iter().any(|w| s.overlaps(w)))
        .count();
    assert!(
        overlapping_sorts >= 2,
        "expected >= 2 sort_run spans overlapping spill_write spans, got {overlapping_sorts}"
    );
    // Sorting and writing happen on different threads, so overlapping
    // spans must carry different thread ids.
    let sort_tid = sorts[0].tid;
    assert!(
        writes.iter().any(|w| w.tid != sort_tid),
        "spill writes must run on the background writer thread"
    );
    // The merge span covers the drain and is recorded on stream drop.
    assert!(events.iter().any(|e| e.name == "merge"));
}

#[test]
fn backpressure_spans_and_histogram_agree() {
    let _guard = obs_lock().lock().unwrap();
    obs::enable();
    let before = obs::global().snapshot();
    let cfg = StreamConfig {
        memory_budget_bytes: 24 << 10,
        merge_read_ahead: Some(true),
        ..StreamConfig::default()
    };
    let mut sorter: StreamSorter<u64, SlowValue> = StreamSorter::with_config(cfg);
    let capacity = sorter.run_capacity;
    let _ = obs::drain_spans();
    // Enough runs that submission outpaces the delayed writer and blocks
    // on the bounded channel at least once.
    for i in 0..8 * capacity as u64 {
        sorter.push_record(i, SlowValue::new(i)).unwrap();
    }
    drop(sorter);
    let (events, _) = obs::drain_spans();
    let after = obs::global().snapshot();
    let bp_spans = events.iter().filter(|e| e.name == "backpressure").count();
    let bp_recorded = after
        .histogram("spill.backpressure_ns")
        .map_or(0, |h| h.count)
        .saturating_sub(
            before
                .histogram("spill.backpressure_ns")
                .map_or(0, |h| h.count),
        );
    // Every pipelined submission records one backpressure span and one
    // histogram sample.  Concurrent tests in this binary may add samples of
    // their own, so assert presence in both exports rather than equality
    // (the exact metrics-vs-stats accounting lives in the serialized
    // integration tests).
    assert!(bp_spans > 0, "pipelined submissions must leave spans");
    assert!(bp_recorded > 0, "pipelined submissions must be recorded");
}
