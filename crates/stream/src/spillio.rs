//! Pluggable spill I/O backends behind the sealed [`SpillIo`] trait.
//!
//! Every spilled byte the streaming engines read or write flows through a
//! [`SpillIoHandle`], so `spill.rs`, `pipeline.rs` and the engines never
//! name `File`/`BufReader`/`BufWriter` directly.  Two backends exist,
//! selected by [`dtsort::StreamConfig::spill_io`]:
//!
//! * [`SpillIoMode::Blocking`] — today's code path, byte-for-byte: a
//!   `BufWriter` over `File::create` for runs, a `BufReader` over
//!   `File::open` for merges.  This is the differential reference, the
//!   same role [`dtsort::StreamConfig::synchronous_spill`] plays for the
//!   pipeline.
//! * [`SpillIoMode::Batched`] — a fixed pool of I/O worker threads
//!   (`spill_io_workers`) driving one bounded submission queue
//!   (`spill_io_queue_depth`) of positioned-I/O jobs over pooled,
//!   recycled buffers, in the queue-pair discipline of userspace-NVMe
//!   runtimes: bounded queue depth, poll completions, recycle buffers.
//!   Writers chunk their stream into `pwrite` jobs and fsync on
//!   [`SpillWrite::finish`]; readers double-buffer `pread` jobs one chunk
//!   ahead.  The merge read-ahead scheduler in `pipeline.rs` rides the
//!   same pool, so a k-way merge runs with at most `spill_io_workers`
//!   I/O threads regardless of the run count.
//!
//! ## No pool thread ever blocks on pool work
//!
//! Because the merge read-ahead tasks of `pipeline.rs` run *on* the I/O
//! workers and themselves read through [`BatchedRead`], the backend must
//! guarantee that a pool thread never waits for a job that only another
//! pool thread could run — with fan-in at or above the worker count that
//! wait is a permanent deadlock.  Two rules enforce it:
//!
//! * `pread` jobs are **claimable**: whichever thread needs the result
//!   first — a worker dequeuing the job or the consumer calling
//!   [`Read::read`] — claims and services it inline.  A consumer only
//!   ever sleeps on a read another thread is *actively executing*, and
//!   the executing thread never blocks, so the wait is bounded.
//! * [`JobPool::submit`] never blocks: when the bounded queue is at
//!   depth, the submitter runs the job inline on its own thread
//!   (backpressure by inline execution), so worker-originated
//!   submissions cannot wedge the pool either.
//!
//! ## Error contract
//!
//! Batched writes complete asynchronously, but no error is ever dropped:
//! a failed chunk is recorded in the writer's shared state and surfaces
//! on the next [`Write::write`] or at [`SpillWrite::finish`] — which also
//! orders the durability step (`sync_data`) strictly after every chunk
//! has landed, preserving the fsync-before-record spill contract.  A
//! panicking job is caught by the worker (the pool survives) and turns
//! into an `io::Error` at the consumer.

use crate::metrics::m;
use dtsort::{SpillIoMode, StreamConfig};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Bytes a batched writer accumulates before handing one positioned-write
/// job to the workers.
const WRITE_CHUNK_BYTES: usize = 256 << 10;

pub(crate) mod sealed_io {
    pub trait Sealed {}
}

/// Sink for one spill run.  `Write` feeds the encoded bytes;
/// [`SpillWrite::finish`] makes them durable.
pub(crate) trait SpillWrite: Write + Send {
    /// Completes the file: drains everything buffered or in flight and
    /// syncs the data to disk.  Errors from earlier asynchronous chunk
    /// writes surface here at the latest.
    fn finish(self: Box<Self>) -> io::Result<()>;
}

/// Buffered sequential source over one spill run.
pub(crate) trait SpillRead: Read + Send {}

/// The sealed backend interface: open/create files for spill traffic and
/// describe the backend's concurrency envelope.
pub(crate) trait SpillIo: Send + Sync + sealed_io::Sealed {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>>;
    /// Opens `path` for sequential reading with roughly `buffer_bytes` of
    /// read buffering; returns the reader and the file's current length
    /// (for the caller's truncation check).
    fn open(&self, path: &Path, buffer_bytes: usize) -> io::Result<(Box<dyn SpillRead>, u64)>;
    fn mode(&self) -> SpillIoMode;
    /// How many prefetch streams may be in flight at once (the merge
    /// fan-in cap for read-ahead).  Unbounded for `Blocking` (the caller
    /// applies its own thread-count cap).
    fn max_inflight(&self) -> usize;
    fn set_max_inflight(&self, _n: usize) {}
    /// The shared job pool, for the batched merge read-ahead scheduler.
    fn pool(&self) -> Option<JobPool>;
    fn workers(&self) -> usize;
    fn queue_depth(&self) -> usize;
    /// Failure injection: error every write after `bytes` more bytes
    /// (no-op on `Blocking`).  Only reachable from `#[cfg(test)]` code.
    #[cfg_attr(not(test), allow(dead_code))]
    fn set_write_fuse(&self, _bytes: u64) {}
    /// Failure injection: make a tripped write fuse *panic* on the worker
    /// instead of erroring (exercises the pool's worker-panic hardening).
    #[cfg_attr(not(test), allow(dead_code))]
    fn set_write_fuse_panics(&self, _on: bool) {}
}

/// A cloneable, shareable handle to one spill I/O backend.  Engines
/// default to [`SpillIoHandle::from_config`]; the server shares one
/// handle across sessions so the governor can arbitrate the queue.
#[derive(Clone)]
pub struct SpillIoHandle {
    inner: Arc<dyn SpillIo>,
}

impl std::fmt::Debug for SpillIoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillIoHandle")
            .field("mode", &self.inner.mode())
            .finish()
    }
}

impl SpillIoHandle {
    /// The blocking backend (today's `BufWriter`/`BufReader` path).
    pub fn blocking() -> Self {
        Self {
            inner: Arc::new(BlockingIo),
        }
    }

    /// The batched backend: `workers` I/O threads behind one bounded
    /// queue of `queue_depth` jobs.
    pub fn batched(workers: usize, queue_depth: usize) -> Self {
        Self {
            inner: Arc::new(BatchedIo::new(workers.max(1), queue_depth.max(1))),
        }
    }

    /// The backend `cfg` selects (`spill_io` + its worker/depth knobs).
    pub fn from_config(cfg: &StreamConfig) -> Self {
        match cfg.spill_io {
            SpillIoMode::Blocking => Self::blocking(),
            SpillIoMode::Batched => Self::batched(cfg.spill_io_workers, cfg.spill_io_queue_depth),
        }
    }

    pub fn mode(&self) -> SpillIoMode {
        self.inner.mode()
    }

    /// Wraps this handle in a deterministic fault-injection layer (the
    /// crate-private `FaultIo`): the returned handle shares the same
    /// backend underneath — pool, recycled buffers, queue depth — but
    /// filters every create/open/write/read through `plan`.  Fault scope
    /// is therefore per *handle*: a server can hand one session a faulted
    /// view of the shared pool while every other session keeps the clean
    /// view, which is exactly how the chaos tests prove cross-session
    /// isolation.
    pub fn with_faults(&self, plan: crate::fault::FaultPlan) -> Self {
        Self {
            inner: Arc::new(crate::fault::FaultIo::new(Arc::clone(&self.inner), plan)),
        }
    }

    /// Re-splits the backend's in-flight read budget across `sessions`
    /// concurrent sessions (the cross-session spill-bandwidth hook: each
    /// live session's merges get an equal share of the queue depth, never
    /// below the worker count).  No-op on `Blocking`.
    pub fn rebalance_shared(&self, sessions: usize) {
        let depth = self.inner.queue_depth();
        if depth == 0 {
            return;
        }
        let share = (depth / sessions.max(1)).max(self.inner.workers()).max(1);
        self.inner.set_max_inflight(share);
    }

    pub(crate) fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>> {
        self.inner.create(path)
    }

    pub(crate) fn open(
        &self,
        path: &Path,
        buffer_bytes: usize,
    ) -> io::Result<(Box<dyn SpillRead>, u64)> {
        self.inner.open(path, buffer_bytes)
    }

    pub(crate) fn max_inflight(&self) -> usize {
        self.inner.max_inflight()
    }

    pub(crate) fn pool(&self) -> Option<JobPool> {
        self.inner.pool()
    }

    /// Failure injection for tests: every batched write past `bytes` more
    /// bytes fails with an injected short write.
    #[cfg(test)]
    pub(crate) fn inject_write_failure_after(&self, bytes: u64) {
        self.inner.set_write_fuse(bytes);
    }

    /// Failure injection for tests: the first batched write past `bytes`
    /// more bytes *panics on the pool worker* — the worker-crash chaos
    /// scenario, as opposed to the clean short write above.
    #[cfg(test)]
    pub(crate) fn inject_write_panic_after(&self, bytes: u64) {
        self.inner.set_write_fuse_panics(true);
        self.inner.set_write_fuse(bytes);
    }

    /// Disarms both injected-failure fuses ("the disk healed").
    #[cfg(test)]
    pub(crate) fn clear_write_failures(&self) {
        self.inner.set_write_fuse_panics(false);
        self.inner.set_write_fuse(u64::MAX);
    }
}

// ---------------------------------------------------------------------------
// Blocking backend — byte-for-byte today's path.
// ---------------------------------------------------------------------------

struct BlockingIo;

impl sealed_io::Sealed for BlockingIo {}

impl SpillIo for BlockingIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>> {
        let file = File::create(path)?;
        Ok(Box::new(BlockingWriter {
            writer: BufWriter::with_capacity(1 << 20, file),
        }))
    }

    fn open(&self, path: &Path, buffer_bytes: usize) -> io::Result<(Box<dyn SpillRead>, u64)> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let reader = BufReader::with_capacity(buffer_bytes.max(64), file);
        Ok((Box::new(BlockingReader { reader }), len))
    }

    fn mode(&self) -> SpillIoMode {
        SpillIoMode::Blocking
    }

    fn max_inflight(&self) -> usize {
        usize::MAX
    }

    fn pool(&self) -> Option<JobPool> {
        None
    }

    fn workers(&self) -> usize {
        0
    }

    fn queue_depth(&self) -> usize {
        0
    }
}

struct BlockingWriter {
    writer: BufWriter<File>,
}

impl Write for BlockingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

impl SpillWrite for BlockingWriter {
    fn finish(self: Box<Self>) -> io::Result<()> {
        let mut writer = self.writer;
        writer.flush()?;
        writer.get_ref().sync_data()
    }
}

struct BlockingReader {
    reader: BufReader<File>,
}

impl Read for BlockingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reader.read(buf)
    }
}

impl SpillRead for BlockingReader {}

// ---------------------------------------------------------------------------
// Batched backend — a fixed worker pool over one bounded job queue.
// ---------------------------------------------------------------------------

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// The bounded submission queue plus its worker threads.  Cloning shares
/// the queue; workers exit when every clone is gone.
#[derive(Clone)]
pub(crate) struct JobPool {
    tx: SyncSender<Job>,
    queued: Arc<AtomicUsize>,
}

impl JobPool {
    fn start(workers: usize, queue_depth: usize) -> Self {
        let (tx, rx) = sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));
        for w in 0..workers {
            let rx = Arc::clone(&rx);
            let queued = Arc::clone(&queued);
            std::thread::Builder::new()
                .name(format!("pisort-spill-io-{w}"))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock().expect("spill io queue");
                        guard.recv()
                    };
                    let Ok(job) = job else { return };
                    let start = obs::enabled().then(Instant::now);
                    // A panicking job must not take the worker down: the
                    // job's owner observes the failure through its own
                    // channel/state, and the pool keeps serving.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                    let left = queued.fetch_sub(1, Ordering::Relaxed) - 1;
                    if let Some(start) = start {
                        let metrics = m();
                        metrics.spillio_complete_ns.record_duration(start.elapsed());
                        metrics.spillio_queue_depth.set(left as i64);
                    }
                })
                .expect("failed to spawn spill-io worker");
        }
        Self { tx, queued }
    }

    /// Enqueues a job.  When the queue is at depth the submitter runs the
    /// job inline on its own thread instead of blocking — the
    /// submission-side backpressure of the queue-pair discipline, without
    /// ever letting a pool worker (which submits preads and pump resubmits
    /// mid-job) wait on a queue only workers drain.
    pub(crate) fn submit(&self, job: Job) {
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        if obs::enabled() {
            let metrics = m();
            metrics.spillio_jobs.incr();
            metrics.spillio_queue_depth.set(depth as i64);
        }
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                if obs::enabled() {
                    m().spillio_inline_jobs.incr();
                }
                // Same panic isolation as the workers: an inline job must
                // not unwind into the submitter, whose owner observes the
                // failure through the job's own channel/state.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(TrySendError::Disconnected(_)) => panic!("spill io workers gone"),
        }
    }
}

/// State shared by the batched backend's writers, readers and the merge
/// scheduler: the pool, the buffer pool and the tuning knobs.
struct BatchedCore {
    pool: JobPool,
    workers: usize,
    queue_depth: usize,
    /// Fan-in cap for merge read-ahead; the server's rebalance hook
    /// shrinks it while many sessions share the backend.
    max_inflight: AtomicUsize,
    /// Cleared chunk buffers recycled between jobs.
    buffers: Mutex<Vec<Vec<u8>>>,
    /// Failure injection: remaining bytes before writes start failing
    /// (`i64::MAX` = disabled).
    write_fuse: AtomicI64,
    /// Failure injection: when set, a tripped fuse panics on the worker
    /// instead of returning the short-write error.
    write_fuse_panics: std::sync::atomic::AtomicBool,
}

impl BatchedCore {
    fn take_buffer(&self) -> Vec<u8> {
        self.buffers
            .lock()
            .expect("spill io buffers")
            .pop()
            .unwrap_or_default()
    }

    fn recycle_buffer(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.buffers.lock().expect("spill io buffers");
        if pool.len() < self.queue_depth + 2 {
            pool.push(buf);
        }
    }

    /// Writes `data` at `off`, honoring the injection fuse: once the fuse
    /// runs out, only the allowed prefix lands and the write errors (a
    /// short write, exactly what a full disk produces).
    fn checked_write(&self, file: &File, data: &[u8], off: u64) -> io::Result<()> {
        let len = data.len() as i64;
        let allowed = self.write_fuse.fetch_sub(len, Ordering::Relaxed);
        if allowed < len {
            if self.write_fuse_panics.load(Ordering::Relaxed) {
                panic!("injected spill-write worker panic");
            }
            let keep = allowed.max(0) as usize;
            file.write_all_at(&data[..keep], off)?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        file.write_all_at(data, off)
    }
}

struct BatchedIo {
    core: Arc<BatchedCore>,
}

impl BatchedIo {
    fn new(workers: usize, queue_depth: usize) -> Self {
        Self {
            core: Arc::new(BatchedCore {
                pool: JobPool::start(workers, queue_depth),
                workers,
                queue_depth,
                max_inflight: AtomicUsize::new(queue_depth),
                buffers: Mutex::new(Vec::new()),
                write_fuse: AtomicI64::new(i64::MAX),
                write_fuse_panics: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }
}

impl sealed_io::Sealed for BatchedIo {}

impl SpillIo for BatchedIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>> {
        let file = File::create(path)?;
        Ok(Box::new(BatchedWriter {
            core: Arc::clone(&self.core),
            file: Arc::new(file),
            buf: self.core.take_buffer(),
            offset: 0,
            shared: Arc::new(WriteShared {
                state: Mutex::new(WriteState {
                    pending: 0,
                    error: None,
                    broken: false,
                }),
                done: Condvar::new(),
            }),
        }))
    }

    fn open(&self, path: &Path, buffer_bytes: usize) -> io::Result<(Box<dyn SpillRead>, u64)> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let mut reader = BatchedRead {
            core: Arc::clone(&self.core),
            file: Arc::new(file),
            len,
            chunk: buffer_bytes.max(64),
            next_offset: 0,
            cur: Vec::new(),
            cur_pos: 0,
            pending: None,
        };
        reader.submit_next(); // first chunk in flight before the first read
        Ok((Box::new(reader), len))
    }

    fn mode(&self) -> SpillIoMode {
        SpillIoMode::Batched
    }

    fn max_inflight(&self) -> usize {
        self.core.max_inflight.load(Ordering::Relaxed).max(1)
    }

    fn set_max_inflight(&self, n: usize) {
        self.core.max_inflight.store(n.max(1), Ordering::Relaxed);
    }

    fn pool(&self) -> Option<JobPool> {
        Some(self.core.pool.clone())
    }

    fn workers(&self) -> usize {
        self.core.workers
    }

    fn queue_depth(&self) -> usize {
        self.core.queue_depth
    }

    fn set_write_fuse(&self, bytes: u64) {
        self.core
            .write_fuse
            .store(bytes.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    fn set_write_fuse_panics(&self, on: bool) {
        self.core.write_fuse_panics.store(on, Ordering::Relaxed);
    }
}

struct WriteShared {
    state: Mutex<WriteState>,
    done: Condvar,
}

struct WriteState {
    /// Chunk jobs submitted but not yet completed.
    pending: usize,
    /// First chunk-write failure; later ones are dropped.
    error: Option<io::Error>,
    /// Sticky: stays set after the error is taken, so `finish` cannot
    /// report success for a file that lost a chunk.
    broken: bool,
}

/// Chunked positioned-write sink: fills a pooled buffer, hands full
/// chunks to the workers as `pwrite` jobs, waits for all of them (then
/// fsyncs) on `finish`.
struct BatchedWriter {
    core: Arc<BatchedCore>,
    file: Arc<File>,
    buf: Vec<u8>,
    offset: u64,
    shared: Arc<WriteShared>,
}

impl BatchedWriter {
    /// Surfaces any recorded chunk failure, then submits the current
    /// buffer as one positioned-write job.
    fn submit_chunk(&mut self) -> io::Result<()> {
        {
            let mut st = self.shared.state.lock().expect("spill write state");
            if let Some(e) = st.error.take() {
                return Err(e);
            }
            if st.broken {
                return Err(io::Error::other("spill write already failed"));
            }
            st.pending += 1;
        }
        let data = std::mem::replace(&mut self.buf, self.core.take_buffer());
        if data.is_empty() {
            let mut st = self.shared.state.lock().expect("spill write state");
            st.pending -= 1;
            return Ok(());
        }
        let off = self.offset;
        self.offset += data.len() as u64;
        let file = Arc::clone(&self.file);
        let core = Arc::clone(&self.core);
        let shared = Arc::clone(&self.shared);
        self.core.pool.submit(Box::new(move || {
            // The pool's worker catches panics, but a panic escaping this
            // job before `pending` is decremented would strand `finish` on
            // a count that never drains.  Catch it here and convert it to
            // an error so a crashing write fails *this file* (and only
            // this file) instead of hanging its session.
            let result = catch_unwind(AssertUnwindSafe(|| core.checked_write(&file, &data, off)))
                .unwrap_or_else(|_| Err(io::Error::other("spill write job panicked")));
            core.recycle_buffer(data);
            let mut st = shared.state.lock().expect("spill write state");
            st.pending -= 1;
            if let Err(e) = result {
                if st.error.is_none() {
                    st.error = Some(e);
                }
                st.broken = true;
            }
            shared.done.notify_all();
        }));
        Ok(())
    }
}

impl Write for BatchedWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        if self.buf.len() >= WRITE_CHUNK_BYTES {
            self.submit_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SpillWrite for BatchedWriter {
    fn finish(mut self: Box<Self>) -> io::Result<()> {
        self.submit_chunk()?;
        let mut st = self.shared.state.lock().expect("spill write state");
        while st.pending > 0 {
            st = self.shared.done.wait(st).expect("spill write state");
        }
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        if st.broken {
            return Err(io::Error::other("spill write already failed"));
        }
        drop(st);
        // Durability strictly after every chunk has landed: the caller
        // records the run as spilled only once this returns.
        self.file.sync_data()
    }
}

/// One positioned read, claimable by whichever thread reaches it first:
/// the pool worker that dequeues it, or the consumer that needs its
/// result.  The consumer servicing an unstarted read *inline* (instead of
/// sleeping on the pool) is what lets merge read-ahead tasks run on the
/// I/O workers themselves: a worker mid-decode that needs its reader's
/// next chunk does the `pread` on the spot rather than waiting for a
/// worker slot that may never free up.
struct PreadJob {
    file: Arc<File>,
    off: u64,
    size: usize,
    state: Mutex<PreadState>,
    done: Condvar,
}

enum PreadState {
    /// Not started; holds the destination buffer for the first claimant.
    Queued(Vec<u8>),
    /// Some thread is executing the read (or took it inline).
    Running,
    /// Finished; the result awaits the consumer.
    Done(io::Result<Vec<u8>>),
    /// The consumer already has the result.
    Taken,
}

impl PreadJob {
    fn execute(&self, mut buf: Vec<u8>) -> io::Result<Vec<u8>> {
        buf.resize(self.size, 0);
        self.file.read_exact_at(&mut buf, self.off).map(|()| buf)
    }

    /// Worker side: run the read unless a consumer already claimed it.
    fn run_queued(&self) {
        let buf = {
            let mut st = self.state.lock().expect("spill pread state");
            match std::mem::replace(&mut *st, PreadState::Running) {
                PreadState::Queued(buf) => buf,
                other => {
                    *st = other;
                    return;
                }
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| self.execute(buf)))
            .unwrap_or_else(|_| Err(io::Error::other("spill io read panicked")));
        let mut st = self.state.lock().expect("spill pread state");
        *st = PreadState::Done(result);
        self.done.notify_all();
    }

    /// Consumer side: take the result, servicing the read inline when no
    /// worker has started it.  Sleeps only while another thread is
    /// actively executing the read — a bounded wait, because the
    /// executing thread itself never blocks.
    fn take(&self) -> io::Result<Vec<u8>> {
        let mut st = self.state.lock().expect("spill pread state");
        loop {
            match std::mem::replace(&mut *st, PreadState::Running) {
                PreadState::Queued(buf) => {
                    drop(st);
                    let result = self.execute(buf);
                    *self.state.lock().expect("spill pread state") = PreadState::Taken;
                    return result;
                }
                PreadState::Running => {
                    st = self.done.wait(st).expect("spill pread state");
                }
                PreadState::Done(result) => {
                    *st = PreadState::Taken;
                    return result;
                }
                PreadState::Taken => {
                    return Err(io::Error::other("spill pread result taken twice"));
                }
            }
        }
    }
}

/// Double-buffered positioned-read source: while the consumer drains the
/// current chunk, at most one claimable `pread` job fetches the next.
struct BatchedRead {
    core: Arc<BatchedCore>,
    file: Arc<File>,
    len: u64,
    chunk: usize,
    next_offset: u64,
    cur: Vec<u8>,
    cur_pos: usize,
    pending: Option<Arc<PreadJob>>,
}

impl BatchedRead {
    fn submit_next(&mut self) {
        if self.pending.is_some() || self.next_offset >= self.len {
            return;
        }
        let size = (self.len - self.next_offset).min(self.chunk as u64) as usize;
        let off = self.next_offset;
        self.next_offset += size as u64;
        let job = Arc::new(PreadJob {
            file: Arc::clone(&self.file),
            off,
            size,
            state: Mutex::new(PreadState::Queued(self.core.take_buffer())),
            done: Condvar::new(),
        });
        let task = Arc::clone(&job);
        self.core.pool.submit(Box::new(move || task.run_queued()));
        self.pending = Some(job);
    }
}

impl Read for BatchedRead {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.cur_pos == self.cur.len() {
            if self.pending.is_none() {
                if self.next_offset >= self.len {
                    return Ok(0); // end of file
                }
                self.submit_next();
            }
            let job = self.pending.take().expect("in-flight read");
            let chunk = job.take()?;
            let old = std::mem::replace(&mut self.cur, chunk);
            self.core.recycle_buffer(old);
            self.cur_pos = 0;
            self.submit_next(); // stay one chunk ahead
        }
        let n = out.len().min(self.cur.len() - self.cur_pos);
        out[..n].copy_from_slice(&self.cur[self.cur_pos..self.cur_pos + n]);
        self.cur_pos += n;
        Ok(n)
    }
}

impl SpillRead for BatchedRead {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pisort-spillio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_all_then_finish(io: &SpillIoHandle, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut w = io.create(path)?;
        // Dribble in odd-sized pieces so chunk boundaries never align.
        for piece in data.chunks(1031) {
            w.write_all(piece)?;
        }
        w.finish()
    }

    fn read_back(io: &SpillIoHandle, path: &Path, buffer: usize) -> io::Result<Vec<u8>> {
        let (mut r, len) = io.open(path, buffer)?;
        let mut out = Vec::with_capacity(len as usize);
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn both_backends_roundtrip_identical_bytes() {
        let data = payload(3 * WRITE_CHUNK_BYTES + 12345);
        let mut images = Vec::new();
        for (name, io) in [
            ("blocking", SpillIoHandle::blocking()),
            ("batched", SpillIoHandle::batched(2, 4)),
        ] {
            let path = tmp_path(&format!("rt-{name}.bin"));
            write_all_then_finish(&io, &path, &data).unwrap();
            assert_eq!(std::fs::read(&path).unwrap(), data, "{name} on-disk bytes");
            // Tiny and large read buffers must decode identically.
            for buffer in [64, 4096, 1 << 20] {
                assert_eq!(read_back(&io, &path, buffer).unwrap(), data, "{name}");
            }
            images.push(std::fs::read(&path).unwrap());
            std::fs::remove_file(&path).ok();
        }
        assert_eq!(images[0], images[1], "backends must be byte-identical");
    }

    #[test]
    fn batched_write_failure_surfaces_on_write_or_finish() {
        let io = SpillIoHandle::batched(2, 4);
        io.inject_write_failure_after(WRITE_CHUNK_BYTES as u64);
        let path = tmp_path("fuse.bin");
        let data = payload(4 * WRITE_CHUNK_BYTES);
        let err = write_all_then_finish(&io, &path, &data)
            .expect_err("fused write must surface an error");
        assert!(
            err.to_string().contains("injected") || err.to_string().contains("failed"),
            "got: {err}"
        );
        // The backend stays broken for this file but a fresh handle works.
        let io2 = SpillIoHandle::batched(2, 4);
        write_all_then_finish(&io2, &path, &data).unwrap();
        assert_eq!(read_back(&io2, &path, 4096).unwrap(), data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_write_worker_panic_errors_instead_of_hanging() {
        // A panic on the pool worker mid-`pwrite` must surface as an
        // error on this file's writer — never strand `finish` on a
        // `pending` count that cannot drain, and never take down the pool
        // for other files.
        let io = SpillIoHandle::batched(2, 4);
        io.inject_write_panic_after(WRITE_CHUNK_BYTES as u64);
        let path = tmp_path("panic-fuse.bin");
        let data = payload(4 * WRITE_CHUNK_BYTES);
        let err = write_all_then_finish(&io, &path, &data)
            .expect_err("worker panic must surface as an error");
        assert!(err.to_string().contains("panicked"), "got: {err}");
        // The pool survives: disarm the fuse and the same handle writes a
        // fresh file end to end.
        io.inner.set_write_fuse_panics(false);
        io.inner.set_write_fuse(u64::MAX);
        let path2 = tmp_path("panic-fuse-after.bin");
        write_all_then_finish(&io, &path2, &data).unwrap();
        assert_eq!(read_back(&io, &path2, 4096).unwrap(), data);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn batched_read_of_missing_or_truncated_file_errors() {
        let io = SpillIoHandle::batched(1, 2);
        let path = tmp_path("short.bin");
        assert!(io.open(&path, 4096).is_err(), "missing file");
        let data = payload(10_000);
        write_all_then_finish(&io, &path, &data).unwrap();
        let (mut r, len) = io.open(&path, 512).unwrap();
        assert_eq!(len, data.len() as u64);
        // Truncate under the open reader: the positioned reads must error
        // (short read), never return fabricated bytes.
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(100)
            .unwrap();
        let mut out = Vec::new();
        assert!(r.read_to_end(&mut out).is_err(), "truncated mid-read");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rebalance_splits_the_queue_depth_across_sessions() {
        let io = SpillIoHandle::batched(2, 32);
        assert_eq!(io.max_inflight(), 32);
        io.rebalance_shared(4);
        assert_eq!(io.max_inflight(), 8);
        io.rebalance_shared(100);
        assert_eq!(io.max_inflight(), 2, "floored at the worker count");
        io.rebalance_shared(1);
        assert_eq!(io.max_inflight(), 32);
        // Blocking: a no-op, cap stays unbounded.
        let b = SpillIoHandle::blocking();
        b.rebalance_shared(4);
        assert_eq!(b.max_inflight(), usize::MAX);
    }

    /// Opens `path` through `io` and drains it with a tiny chunk size, so
    /// the read spans many `pread` jobs.
    fn drain_in_tiny_chunks(io: &SpillIoHandle, path: &Path) -> io::Result<Vec<u8>> {
        let (mut r, _) = io.open(path, 64)?;
        let mut out = Vec::new();
        r.read_to_end(&mut out).map(|_| out)
    }

    #[test]
    fn pool_worker_reading_through_the_pool_cannot_deadlock() {
        // The merge read-ahead tasks of `pipeline.rs` run *on* the I/O
        // workers and read through `BatchedRead`.  With one worker and a
        // tiny chunk size, the task's next pread is submitted mid-task and
        // queues behind it — the claimable-job discipline must service it
        // inline instead of deadlocking on the busy worker.
        let io = SpillIoHandle::batched(1, 2);
        let path = tmp_path("worker-read.bin");
        let data = payload(50_000);
        write_all_then_finish(&io, &path, &data).unwrap();
        let pool = io.pool().unwrap();
        let (tx, rx) = sync_channel::<io::Result<Vec<u8>>>(1);
        let io2 = io.clone();
        let p = path.clone();
        pool.submit(Box::new(move || {
            let _ = tx.send(drain_in_tiny_chunks(&io2, &p));
        }));
        let out = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("worker-side read must not deadlock")
            .unwrap();
        assert_eq!(out, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fan_in_above_the_worker_count_makes_progress() {
        // Eight reader tasks on a 2-worker, depth-4 pool, each spanning
        // hundreds of chunks: queued, inline-claimed and overflow-submitted
        // jobs in every combination must all drain (fan-in >= workers was
        // the high-severity deadlock scenario).
        let io = SpillIoHandle::batched(2, 4);
        let data = payload(20_000);
        let mut paths = Vec::new();
        for i in 0..8 {
            let path = tmp_path(&format!("fanin-{i}.bin"));
            write_all_then_finish(&io, &path, &data).unwrap();
            paths.push(path);
        }
        let pool = io.pool().unwrap();
        let (tx, rx) = sync_channel::<io::Result<Vec<u8>>>(8);
        for path in &paths {
            let io2 = io.clone();
            let p = path.clone();
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                let _ = tx.send(drain_in_tiny_chunks(&io2, &p));
            }));
        }
        for _ in 0..8 {
            let out = rx
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("fan-in readers must not deadlock")
                .unwrap();
            assert_eq!(out, data);
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn submit_overflow_runs_the_job_inline() {
        // A full queue must never block the submitter: jobs past the
        // depth run inline on the submitting thread.
        let io = SpillIoHandle::batched(1, 1);
        let pool = io.pool().unwrap();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Park the only worker so the queue cannot drain.
        let g = Arc::clone(&gate);
        pool.submit(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }));
        // Saturate the queue, then one more: must return without blocking.
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let ran = Arc::clone(&ran);
            pool.submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert!(
            ran.load(Ordering::SeqCst) >= 3,
            "overflow submissions past the depth-1 queue must run inline"
        );
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let io = SpillIoHandle::batched(1, 2);
        let pool = io.pool().unwrap();
        pool.submit(Box::new(|| panic!("boom")));
        let (tx, rx) = sync_channel::<u32>(1);
        pool.submit(Box::new(move || {
            let _ = tx.send(42);
        }));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42,
            "worker must survive the panic and run later jobs"
        );
    }
}
