//! Named metrics: counters, gauges and power-of-two latency histograms.
//!
//! Registration (name → handle) takes a lock; *recording* through a handle
//! is a relaxed atomic RMW, so hot paths (the spill writer, the pool's
//! steal loop) can record without synchronization that would distort the
//! very timings being measured — the same discipline
//! `dtsort::SortStats` has always used, generalized to named metrics.
//!
//! Every recording first checks the global [`crate::enabled`] static and
//! returns without touching anything when it is off; the registry counts
//! its enabled-path touches ([`MetricsRegistry::touches`]) so the
//! disabled-overhead guarantee is testable, not aspirational.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two histogram buckets: bucket `i` holds values `v`
/// with `floor(log2(max(v, 1))) == i`, so the full `u64` range is covered.
const BUCKETS: usize = 64;

fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Lock-free core of one histogram.
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

/// A registry of named metrics.  One process-wide instance lives behind
/// [`crate::global`]; tests may create private ones.
///
/// Requesting a name that already exists returns a handle to the same
/// underlying metric (so independently instrumented subsystems may share a
/// metric by name); requesting it as a *different kind* panics — that is a
/// programming error, caught loudly.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Enabled-path recordings through this registry's handles: stays at
    /// exactly 0 while [`crate::enabled`] is false (the overhead guard).
    touches: Arc<AtomicU64>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or creates the named monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter {
                cell: Arc::clone(cell),
                touches: Arc::clone(&self.touches),
            },
            _ => panic!("metric {name:?} already registered with another kind"),
        }
    }

    /// Gets or creates the named gauge (a settable signed level, e.g. a
    /// queue depth).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))));
        match metric {
            Metric::Gauge(cell) => Gauge {
                cell: Arc::clone(cell),
                touches: Arc::clone(&self.touches),
            },
            _ => panic!("metric {name:?} already registered with another kind"),
        }
    }

    /// Gets or creates the named power-of-two-bucket histogram (typically
    /// of nanosecond latencies).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCore::new())));
        match metric {
            Metric::Histogram(core) => Histogram {
                core: Arc::clone(core),
                touches: Arc::clone(&self.touches),
            },
            _ => panic!("metric {name:?} already registered with another kind"),
        }
    }

    /// Total enabled-path recordings through this registry's handles so
    /// far.  The disabled path performs none — the overhead guard test
    /// hammers handles with recording off and asserts this stays put.
    pub fn touches(&self) -> u64 {
        self.touches.load(Ordering::Relaxed)
    }

    /// A plain-value snapshot of every registered metric, names sorted.
    ///
    /// Concurrent recording keeps going while the snapshot reads (relaxed
    /// loads); totals are exact once the recording threads are quiescent.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => snap
                    .counters
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Metric::Gauge(cell) => snap
                    .gauges
                    .push((name.clone(), cell.load(Ordering::Relaxed))),
                Metric::Histogram(core) => {
                    let buckets: Vec<u64> = core
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    snap.histograms.push((
                        name.clone(),
                        HistogramSnapshot {
                            count: core.count.load(Ordering::Relaxed),
                            sum: core.sum.load(Ordering::Relaxed),
                            max: core.max.load(Ordering::Relaxed),
                            buckets,
                        },
                    ));
                }
            }
        }
        snap
    }
}

/// Handle to a monotonic counter.  Cheap to clone; recording is one
/// relaxed `fetch_add` when [`crate::enabled`], a branch otherwise.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    touches: Arc<AtomicU64>,
}

impl Counter {
    #[inline]
    pub fn add(&self, v: u64) {
        if crate::enabled() {
            self.touches.fetch_add(1, Ordering::Relaxed);
            self.cell.fetch_add(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a gauge: a signed level that can be set or adjusted (queue
/// depths, buffer occupancy).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    touches: Arc<AtomicU64>,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.touches.fetch_add(1, Ordering::Relaxed);
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.touches.fetch_add(1, Ordering::Relaxed);
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a power-of-two-bucket histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    touches: Arc<AtomicU64>,
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.touches.fetch_add(1, Ordering::Relaxed);
            self.core.record(v);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Plain-value snapshot of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Power-of-two bucket counts: `buckets[i]` values fell in
    /// `[2^i, 2^(i+1))` (bucket 0 additionally holds 0).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), clamped to the observed maximum; 0 when empty.  An
    /// estimate with power-of-two resolution — exactly what latency
    /// baselining needs, with fixed memory.
    ///
    /// Note this is a bucket **upper bound**, not an interpolated value:
    /// the `p50` / `p99` fields in [`MetricsSnapshot::to_json`] exports
    /// are values of the form `2^k - 1` (e.g. `65535`, `131071`), and the
    /// true quantile lies somewhere in `[2^(k-1), 2^k)`.  Two quantiles
    /// landing in the same bucket render identically — compare them as
    /// order-of-magnitude bands, not point estimates.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Plain-value snapshot of a whole [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The named counter's value; 0 when absent (so deltas against an
    /// earlier snapshot that predates the counter's registration work).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named gauge's value; 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Sum of the named histogram's recorded values; 0 when absent.  The
    /// bench phase breakdowns are deltas of these sums.
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.histogram(name).map_or(0, |h| h.sum)
    }

    /// Serializes the snapshot as a JSON object, in the same hand-rolled
    /// style as the `BENCH_*.json` writers.  `p50` / `p99` are
    /// power-of-two bucket upper bounds (`2^k - 1`), not interpolated
    /// quantiles — see [`HistogramSnapshot::quantile`]:
    ///
    /// ```json
    /// {
    ///   "counters": {"stream.spilled_runs": 12},
    ///   "gauges": {"spill.queue_depth": 0},
    ///   "histograms": {
    ///     "spill.fsync_ns": {"count": 12, "sum": 840000, "mean": 70000,
    ///                        "p50": 65535, "p99": 131071, "max": 90121}
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, &self.gauges, |v| v.to_string());
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, &self.histograms, |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            )
        });
        out.push_str("}\n}\n");
        out
    }
}

fn push_entries<V>(out: &mut String, entries: &[(String, V)], render: impl Fn(&V) -> String) {
    for (i, (name, v)) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    \"{}\": {}",
            crate::json_escape(name),
            render(v)
        ));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn counters_gauges_histograms_record_and_snapshot() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let reg = MetricsRegistry::new();
        let c = reg.counter("c.events");
        let g = reg.gauge("g.depth");
        let h = reg.histogram("h.lat_ns");
        c.add(5);
        c.incr();
        g.set(3);
        g.add(-1);
        for v in [10u64, 100, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c.events"), 6);
        assert_eq!(snap.gauge("g.depth"), 2);
        let hist = snap.histogram("h.lat_ns").unwrap();
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 1_002_110);
        assert_eq!(hist.max, 1_000_000);
        assert!(hist.quantile(0.5) >= 100 && hist.quantile(0.5) < 2048);
        assert_eq!(hist.quantile(1.0), 1_000_000);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histogram_sum("missing"), 0);
        if !was {
            crate::disable();
        }
    }

    #[test]
    fn same_name_returns_same_metric() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let reg = MetricsRegistry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.add(2);
        b.add(3);
        assert_eq!(reg.snapshot().counter("shared"), 5);
        if !was {
            crate::disable();
        }
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("twice");
        let _g = reg.gauge("twice");
    }

    #[test]
    fn snapshot_json_shape() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.gauge("b.level").set(-2);
        reg.histogram("c.ns").record(1 << 20);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a.count\": 7"), "{json}");
        assert!(json.contains("\"b.level\": -2"), "{json}");
        assert!(json.contains("\"c.ns\": {\"count\": 1"), "{json}");
        if !was {
            crate::disable();
        }
    }

    #[test]
    fn disabled_recording_never_touches_the_registry() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::disable();
        let reg = MetricsRegistry::new();
        let c = reg.counter("quiet");
        let h = reg.histogram("quiet.ns");
        let gauge = reg.gauge("quiet.depth");
        for i in 0..10_000u64 {
            c.add(1);
            h.record(i);
            gauge.set(i as i64);
        }
        assert_eq!(reg.touches(), 0, "disabled path must not record");
        assert_eq!(c.get(), 0);
        assert_eq!(gauge.get(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("quiet"), 0);
        assert_eq!(snap.histogram("quiet.ns").unwrap().count, 0);
        if was {
            crate::enable();
        }
    }

    #[test]
    fn concurrent_recording_totals_are_exact() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads = 4;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hammer.count");
                    let h = reg.histogram("hammer.ns");
                    let g = reg.gauge("hammer.net");
                    for i in 0..per_thread {
                        c.add(1);
                        h.record(i + t);
                        g.add(1);
                        g.add(-1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        let total = threads * per_thread;
        assert_eq!(snap.counter("hammer.count"), total);
        let hist = snap.histogram("hammer.ns").unwrap();
        assert_eq!(hist.count, total);
        let want_sum: u64 = (0..threads)
            .map(|t| (0..per_thread).map(|i| i + t).sum::<u64>())
            .sum();
        assert_eq!(hist.sum, want_sum, "lock-free recording must lose nothing");
        assert_eq!(hist.buckets.iter().sum::<u64>(), total);
        assert_eq!(snap.gauge("hammer.net"), 0);
        if !was {
            crate::disable();
        }
    }
}
