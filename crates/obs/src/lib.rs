//! # obs — zero-dependency tracing and metrics for the pisort workspace
//!
//! The paper's performance study (Section 6.3, the Theorem 4.6/4.7 checks)
//! is entirely about *observing what the algorithm did*.  This crate is the
//! shared substrate for that observation at runtime: every subsystem — the
//! streaming engines, the spill pipeline, the merge prefetchers, the
//! work-stealing pool — records into one process-wide [`MetricsRegistry`]
//! and one span timeline, and anything (tests, benches, a future sort
//! server) can snapshot or export them without touching the subsystems.
//!
//! The crate is deliberately **shim-style**: no dependencies, hand-rolled
//! JSON (the same style the `BENCH_*.json` writers use), and a disabled
//! path that costs a single relaxed atomic load and a predictable branch.
//!
//! ## The three pieces
//!
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   fixed-bucket power-of-two latency histograms.  Handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) are cheap `Arc` clones; *recording* is
//!   lock-free (relaxed atomics), only *registration* takes a lock.
//!   [`MetricsRegistry::snapshot`] returns a plain-value
//!   [`MetricsSnapshot`] that serializes to JSON.
//! * **Spans** ([`span!`], [`SpanGuard`]) — wall-clock intervals recorded
//!   into per-thread ring buffers on guard drop.  [`drain_spans`] collects
//!   them across all threads (including threads that have since exited).
//! * **Export** ([`chrome_trace_json`], [`timeline_json`],
//!   [`write_chrome_trace`]) — the collected spans as a
//!   `chrome://tracing` / Perfetto-compatible trace file, or as a flat
//!   per-run pipeline timeline.
//!
//! ## Enabling
//!
//! Everything is **off by default**.  The master switch is one static,
//! resolved in priority order:
//!
//! 1. [`enable`] / [`disable`] — programmatic, wins over the environment.
//!    `dtsort::StreamConfig::trace` calls [`enable`] at engine
//!    construction.
//! 2. `OBS_TRACE` environment variable — any value except `0` or the
//!    empty string enables at first use.
//!
//! When disabled, [`Counter::add`] and friends return without touching
//! the registry (see [`MetricsRegistry::touches`], which the overhead
//! guard test pins to zero) and [`span!`] returns an inert guard.
//!
//! ```
//! let was = obs::enabled();
//! obs::enable();
//! let reg = obs::MetricsRegistry::new();
//! let c = reg.counter("demo.events");
//! let h = reg.histogram("demo.latency_ns");
//! c.add(3);
//! h.record(1500);
//! {
//!     let _span = obs::span!("demo_phase", run = 1);
//!     // ... timed work ...
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("demo.events"), 3);
//! assert!(snap.to_json().contains("\"demo.events\": 3"));
//! if !was {
//!     obs::disable();
//! }
//! ```

mod registry;
mod span;
mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{drain_spans, now_ns, SpanEvent, SpanGuard};
pub use trace::{chrome_trace_json, timeline_json, write_chrome_trace};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

const STATE_UNINIT: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

/// The master switch.  `UNINIT` until the first [`enabled`] call resolves
/// the `OBS_TRACE` environment variable (or [`enable`]/[`disable`] forces
/// a state); after that, every check is a single relaxed load.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether metrics recording and span capture are on.
///
/// This is **the** gate every hot path checks: one relaxed atomic load
/// plus a branch when the state is resolved, which it is after the first
/// call in the process.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_from_env(),
    }
}

/// Cold path of [`enabled`]: resolve the initial state from `OBS_TRACE`.
#[cold]
fn resolve_from_env() -> bool {
    let on = std::env::var("OBS_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    let want = if on { STATE_ON } else { STATE_OFF };
    // Racing first calls agree on the value; a concurrent enable()/
    // disable() wins over the environment default.
    let _ = STATE.compare_exchange(STATE_UNINIT, want, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turns metrics recording and span capture on, process-wide.
pub fn enable() {
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Turns metrics recording and span capture off, process-wide.
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// The process-wide registry every instrumented subsystem records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Escapes a string for embedding in a JSON string literal (the same
/// minimal escaping the bench JSON writers use: metric and span names are
/// ASCII identifiers by convention).
pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Starts a [`SpanGuard`] recording a named wall-clock interval, with an
/// optional `key = value` integer argument (e.g. a run number):
///
/// ```
/// obs::enable();
/// {
///     let _g = obs::span!("spill_write", run = 3);
///     // ... the write ...
/// } // recorded here
/// let _ = obs::span!("flush"); // un-bound guard: records immediately
/// ```
///
/// When [`enabled`] is false the guard is inert: no clock read, no ring
/// touch.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::start($name, None)
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::SpanGuard::start($name, Some((stringify!($key), $val as u64)))
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that flip the global [`super::STATE`] or rely on
    /// exact global-registry deltas.
    pub fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_flip_the_static() {
        let _g = test_lock::lock();
        let was = enabled();
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
        if was {
            enable();
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const MetricsRegistry;
        let b = global() as *const MetricsRegistry;
        assert_eq!(a, b);
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
