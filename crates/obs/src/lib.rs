//! # obs — zero-dependency tracing and metrics for the pisort workspace
//!
//! The paper's performance study (Section 6.3, the Theorem 4.6/4.7 checks)
//! is entirely about *observing what the algorithm did*.  This crate is the
//! shared substrate for that observation at runtime: every subsystem — the
//! streaming engines, the spill pipeline, the merge prefetchers, the
//! work-stealing pool — records into one process-wide [`MetricsRegistry`]
//! and one span timeline, and anything (tests, benches, a future sort
//! server) can snapshot or export them without touching the subsystems.
//!
//! The crate is deliberately **shim-style**: no dependencies, hand-rolled
//! JSON (the same style the `BENCH_*.json` writers use), and a disabled
//! path that costs a single relaxed atomic load and a predictable branch.
//!
//! ## The three pieces
//!
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   fixed-bucket power-of-two latency histograms.  Handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) are cheap `Arc` clones; *recording* is
//!   lock-free (relaxed atomics), only *registration* takes a lock.
//!   [`MetricsRegistry::snapshot`] returns a plain-value
//!   [`MetricsSnapshot`] that serializes to JSON.
//! * **Spans** ([`span!`], [`SpanGuard`]) — wall-clock intervals recorded
//!   into per-thread ring buffers on guard drop.  [`drain_spans`] collects
//!   them across all threads (including threads that have since exited).
//! * **Export** ([`chrome_trace_json`], [`timeline_json`],
//!   [`write_chrome_trace`]) — the collected spans as a
//!   `chrome://tracing` / Perfetto-compatible trace file, or as a flat
//!   per-run pipeline timeline.
//!
//! ## Enabling
//!
//! Everything is **off by default**.  The master switch is one cached
//! static, resolved in priority order:
//!
//! 1. [`scoped_enable`] — refcounted RAII scopes; recording is on while
//!    any [`EnableGuard`] is alive.  `dtsort::StreamConfig::trace` holds
//!    one per traced engine, so tracing reverts when the engine drops
//!    instead of staying on for every later tenant of the process.
//! 2. [`enable`] / [`disable`] — the programmatic baseline, winning over
//!    the environment (whichever was called last).
//! 3. `OBS_TRACE` environment variable — any value except `0` or the
//!    empty string enables at first use.
//!
//! When disabled, [`Counter::add`] and friends return without touching
//! the registry (see [`MetricsRegistry::touches`], which the overhead
//! guard test pins to zero) and [`span!`] returns an inert guard.
//!
//! ```
//! let was = obs::enabled();
//! obs::enable();
//! let reg = obs::MetricsRegistry::new();
//! let c = reg.counter("demo.events");
//! let h = reg.histogram("demo.latency_ns");
//! c.add(3);
//! h.record(1500);
//! {
//!     let _span = obs::span!("demo_phase", run = 1);
//!     // ... timed work ...
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("demo.events"), 3);
//! assert!(snap.to_json().contains("\"demo.events\": 3"));
//! if !was {
//!     obs::disable();
//! }
//! ```

mod registry;
mod span;
mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{drain_spans, now_ns, SpanEvent, SpanGuard};
pub use trace::{chrome_trace_json, timeline_json, write_chrome_trace};

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

const STATE_UNINIT: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

/// The master switch: a *cache* of the resolved enable state, kept so the
/// disabled fast path stays one relaxed load.  `UNINIT` until the first
/// [`enabled`] call resolves it; every state mutation ([`enable`],
/// [`disable`], [`scoped_enable`] guard create/drop) recomputes it from
/// the inputs below.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Explicit process-wide override set by [`enable`] / [`disable`]
/// (`UNINIT` = neither has been called; the environment decides the
/// baseline).
static FORCED: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Live [`EnableGuard`]s.  While any guard is alive, recording is on
/// (unless nothing else — not even [`disable`] — turns it off; a scope
/// that asked for tracing always records).
static SCOPED: AtomicUsize = AtomicUsize::new(0);

/// Whether metrics recording and span capture are on.
///
/// This is **the** gate every hot path checks: one relaxed atomic load
/// plus a branch when the state is resolved, which it is after the first
/// call in the process.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => recompute(),
    }
}

/// The `OBS_TRACE` environment baseline, read once per process.
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("OBS_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Re-resolves the enable state into the [`STATE`] cache and returns it.
/// Resolution order: a live scoped guard enables; otherwise [`enable`] /
/// [`disable`] (whichever was called last) decides; otherwise the
/// `OBS_TRACE` environment variable.
///
/// Concurrent mutations race benignly: each mutator recomputes *after*
/// updating its input, so the cache converges to the final state — a
/// momentarily stale read can only mis-gate an individual sample, never
/// wedge the switch.
#[cold]
fn recompute() -> bool {
    let on = SCOPED.load(Ordering::Relaxed) > 0
        || match FORCED.load(Ordering::Relaxed) {
            STATE_ON => true,
            STATE_OFF => false,
            _ => env_enabled(),
        };
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Turns metrics recording and span capture on, process-wide, until
/// [`disable`] is called.
pub fn enable() {
    FORCED.store(STATE_ON, Ordering::Relaxed);
    recompute();
}

/// Turns the process-wide baseline off (overriding `OBS_TRACE` and any
/// earlier [`enable`]).  Scopes that asked for tracing still record:
/// recording stays on while any [`EnableGuard`] is alive.
pub fn disable() {
    FORCED.store(STATE_OFF, Ordering::Relaxed);
    recompute();
}

/// Turns recording on for the lifetime of the returned guard (refcounted:
/// recording stays on while *any* guard is alive and reverts to the
/// [`enable`]/[`disable`]/`OBS_TRACE` baseline when the last one drops).
///
/// This is how `dtsort::StreamConfig::trace` scopes tracing to one
/// engine's lifetime instead of flipping a sticky process-global: the
/// engine holds the guard, and a traced session followed by an untraced
/// one leaves the untraced one silent.
#[must_use = "recording reverts when the guard drops"]
pub fn scoped_enable() -> EnableGuard {
    SCOPED.fetch_add(1, Ordering::Relaxed);
    recompute();
    EnableGuard { _private: () }
}

/// RAII handle from [`scoped_enable`]: keeps recording on while alive.
#[derive(Debug)]
pub struct EnableGuard {
    _private: (),
}

impl Drop for EnableGuard {
    fn drop(&mut self) {
        SCOPED.fetch_sub(1, Ordering::Relaxed);
        recompute();
    }
}

/// The process-wide registry every instrumented subsystem records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Escapes a string for embedding in a JSON string literal (the same
/// minimal escaping the bench JSON writers use: metric and span names are
/// ASCII identifiers by convention).
pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Starts a [`SpanGuard`] recording a named wall-clock interval, with an
/// optional `key = value` integer argument (e.g. a run number):
///
/// ```
/// obs::enable();
/// {
///     let _g = obs::span!("spill_write", run = 3);
///     // ... the write ...
/// } // recorded here
/// let _ = obs::span!("flush"); // un-bound guard: records immediately
/// ```
///
/// When [`enabled`] is false the guard is inert: no clock read, no ring
/// touch.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::start($name, None)
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::SpanGuard::start($name, Some((stringify!($key), $val as u64)))
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that flip the global [`super::STATE`] or rely on
    /// exact global-registry deltas.
    pub fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_flip_the_static() {
        let _g = test_lock::lock();
        let was = enabled();
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
        if was {
            enable();
        }
    }

    #[test]
    fn scoped_enable_is_refcounted_and_reversible() {
        let _g = test_lock::lock();
        let was = enabled();
        // Baseline off: guards must turn recording on and fully revert.
        disable();
        assert!(!enabled());
        let a = scoped_enable();
        assert!(enabled(), "one live guard enables");
        let b = scoped_enable();
        drop(a);
        assert!(enabled(), "recording stays on while any guard lives");
        drop(b);
        assert!(!enabled(), "last guard drop reverts to the baseline");
        // A forced enable survives guard churn.
        enable();
        let c = scoped_enable();
        drop(c);
        assert!(enabled(), "guard drop must not undo an explicit enable()");
        if !was {
            disable();
        }
    }

    #[test]
    fn scoped_guard_wins_over_disabled_baseline() {
        let _g = test_lock::lock();
        let was = enabled();
        disable();
        let guard = scoped_enable();
        // A scope that asked for tracing records even though the baseline
        // is forced off: the scope's request is the more specific intent.
        assert!(enabled());
        drop(guard);
        assert!(!enabled());
        if was {
            enable();
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const MetricsRegistry;
        let b = global() as *const MetricsRegistry;
        assert_eq!(a, b);
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
