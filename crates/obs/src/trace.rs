//! Span export: chrome://tracing JSON and flat per-run timelines.
//!
//! The chrome format is the Trace Event Format's JSON-array-of-objects
//! flavor with complete (`"ph": "X"`) events — open the file at
//! `chrome://tracing` or <https://ui.perfetto.dev> and the per-thread
//! lanes show the sort ∥ write ∥ prefetch ∥ merge pipeline directly.

use std::io::Write;
use std::path::Path;

use crate::span::SpanEvent;

/// Renders spans as a chrome://tracing-compatible JSON document
/// (`{"traceEvents": [...]}`, timestamps and durations in microseconds).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!(
            "\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}",
            crate::json_escape(ev.name),
            ev.tid,
            ev.start_ns / 1_000,
            ev.duration_ns().div_ceil(1_000).max(1)
        ));
        if let Some((key, val)) = ev.arg {
            out.push_str(&format!(
                ", \"args\": {{\"{}\": {}}}",
                crate::json_escape(key),
                val
            ));
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders spans as a flat JSON array of rows sorted by start time — the
/// per-run pipeline timeline, convenient for scripted analysis where the
/// chrome format's envelope is in the way:
///
/// ```json
/// [
///   {"name": "sort_run", "run": 0, "tid": 1, "start_ns": 120, "end_ns": 89000},
///   {"name": "spill_write", "run": 0, "tid": 2, "start_ns": 90100, "end_ns": 240000}
/// ]
/// ```
pub fn timeline_json(events: &[SpanEvent]) -> String {
    let mut rows: Vec<&SpanEvent> = events.iter().collect();
    rows.sort_by_key(|e| (e.start_ns, e.tid));
    let mut out = String::from("[");
    for (i, ev) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"name\": \"{}\"", crate::json_escape(ev.name)));
        if let Some((key, val)) = ev.arg {
            out.push_str(&format!(", \"{}\": {}", crate::json_escape(key), val));
        }
        out.push_str(&format!(
            ", \"tid\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
            ev.tid, ev.start_ns, ev.end_ns
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path, events: &[SpanEvent]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(events).as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "sort_run",
                arg: Some(("run", 0)),
                tid: 1,
                start_ns: 2_000,
                end_ns: 9_000,
            },
            SpanEvent {
                name: "spill_write",
                arg: Some(("run", 0)),
                tid: 2,
                start_ns: 9_500,
                end_ns: 20_000,
            },
            SpanEvent {
                name: "merge",
                arg: None,
                tid: 1,
                start_ns: 21_000,
                end_ns: 21_001,
            },
        ]
    }

    #[test]
    fn chrome_trace_has_complete_events_in_micros() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\": ["), "{json}");
        assert!(json.contains("\"name\": \"sort_run\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ts\": 2, \"dur\": 7"), "{json}");
        assert!(json.contains("\"args\": {\"run\": 0}"), "{json}");
        // Sub-microsecond spans round up to 1µs so they stay visible.
        assert!(json.contains("\"name\": \"merge\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": 21, \"dur\": 1"),
            "{json}");
    }

    #[test]
    fn timeline_is_sorted_and_flat() {
        let mut events = sample();
        events.reverse();
        let json = timeline_json(&events);
        let sort_pos = json.find("sort_run").unwrap();
        let write_pos = json.find("spill_write").unwrap();
        assert!(sort_pos < write_pos, "rows must sort by start: {json}");
        assert!(json.contains("\"run\": 0, \"tid\": 2"), "{json}");
        assert!(json.contains("\"start_ns\": 9500"), "{json}");
    }

    #[test]
    fn write_chrome_trace_roundtrip() {
        let path = std::env::temp_dir().join(format!("obs-trace-{}.json", std::process::id()));
        write_chrome_trace(&path, &sample()).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, chrome_trace_json(&sample()));
        std::fs::remove_file(&path).ok();
    }
}
