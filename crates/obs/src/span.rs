//! Lightweight spans: named wall-clock intervals recorded into per-thread
//! ring buffers.
//!
//! A [`SpanGuard`] reads the monotonic clock twice (start/drop) and pushes
//! one [`SpanEvent`] into its thread's ring — no global synchronization on
//! the recording path except the thread's own ring mutex, which only
//! [`drain_spans`] ever contends.  Rings are bounded ([`RING_CAP`] events,
//! drop-oldest) so a long-running process with tracing left on cannot
//! grow without bound; each ring counts what it dropped.
//!
//! Rings are registered in a global list as `Arc`s, so spans recorded by
//! short-lived threads (the spill writer, the per-run prefetchers) survive
//! the thread's exit and still show up in [`drain_spans`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity, in events.  At 56 bytes per event this is
/// under 1 MiB per thread — bounded, like every other buffer in the
/// workspace.
const RING_CAP: usize = 1 << 14;

/// One completed span: a named `[start_ns, end_ns]` wall-clock interval on
/// thread `tid`, with an optional integer argument (e.g. `("run", 3)`).
/// Timestamps are nanoseconds since the process-wide epoch ([`now_ns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    pub arg: Option<(&'static str, u64)>,
    pub tid: u64,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanEvent {
    /// Whether the two spans' wall-clock intervals overlap (share more
    /// than an endpoint).  The overlap tests use this to prove the spill
    /// pipeline really ran sort, write, and prefetch concurrently.
    pub fn overlaps(&self, other: &SpanEvent) -> bool {
        self.start_ns < other.end_ns && other.start_ns < self.end_ns
    }

    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: Vec<SpanEvent>,
    /// Next write position once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < RING_CAP {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % RING_CAP;
            self.dropped += 1;
        }
    }
}

/// All rings ever created, including those of threads that have exited.
fn all_rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static THREAD_RING: (u64, Arc<Mutex<Ring>>) = {
        let ring = Arc::new(Mutex::new(Ring::default()));
        all_rings()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        (next_tid(), ring)
    };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide span epoch (first clock use).
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard for one span: created by [`crate::span!`], records a
/// [`SpanEvent`] into the current thread's ring when dropped.  Inert (no
/// clock read, no ring touch) when [`crate::enabled`] is false at start.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    arg: Option<(&'static str, u64)>,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    #[inline]
    pub fn start(name: &'static str, arg: Option<(&'static str, u64)>) -> Self {
        let active = crate::enabled();
        Self {
            name,
            arg,
            start_ns: if active { now_ns() } else { 0 },
            active,
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let ev = SpanEvent {
            name: self.name,
            arg: self.arg,
            tid: 0,
            start_ns: self.start_ns,
            end_ns: now_ns(),
        };
        // A thread-local access during TLS destruction would panic; spans
        // closing that late are dropped instead.
        let _ = THREAD_RING.try_with(|(tid, ring)| {
            let ev = SpanEvent { tid: *tid, ..ev };
            ring.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
        });
    }
}

/// Collects and clears every thread's recorded spans (including threads
/// that have exited), sorted by start time.  Returns the events and the
/// total number of events lost to ring overflow since the last drain.
pub fn drain_spans() -> (Vec<SpanEvent>, u64) {
    let rings = all_rings().lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings.iter() {
        let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        // Emit in record order: the oldest surviving event is at `head`.
        let head = ring.head;
        events.extend_from_slice(&ring.events[head..]);
        events.extend_from_slice(&ring.events[..head]);
        dropped += ring.dropped;
        ring.events.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
    drop(rings);
    events.sort_by_key(|e| (e.start_ns, e.tid));
    (events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn spans_record_on_drop_and_drain() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let _ = drain_spans(); // discard leftovers from other tests
        {
            let _a = crate::span!("outer", run = 7);
            let _b = crate::span!("inner");
        }
        let (events, dropped) = drain_spans();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"outer"), "{names:?}");
        assert!(names.contains(&"inner"), "{names:?}");
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.arg, Some(("run", 7)));
        assert!(outer.end_ns >= outer.start_ns);
        // Drained means gone.
        assert!(drain_spans().0.is_empty());
        if !was {
            crate::disable();
        }
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::disable();
        let _ = drain_spans();
        {
            let g = crate::span!("ghost");
            assert!(!g.is_active());
        }
        assert!(drain_spans().0.is_empty());
        if was {
            crate::enable();
        }
    }

    #[test]
    fn spans_from_exited_threads_survive() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let _ = drain_spans();
        std::thread::spawn(|| {
            let _s = crate::span!("short_lived", run = 1);
        })
        .join()
        .unwrap();
        let (events, _) = drain_spans();
        assert!(
            events.iter().any(|e| e.name == "short_lived"),
            "spans of dead threads must still drain: {events:?}"
        );
        if !was {
            crate::disable();
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = test_lock::lock();
        let was = crate::enabled();
        crate::enable();
        let _ = drain_spans();
        std::thread::spawn(|| {
            for _ in 0..RING_CAP + 10 {
                let _s = crate::span!("burst");
            }
        })
        .join()
        .unwrap();
        let (events, dropped) = drain_spans();
        let burst = events.iter().filter(|e| e.name == "burst").count();
        assert_eq!(burst, RING_CAP);
        assert_eq!(dropped, 10);
        if !was {
            crate::disable();
        }
    }

    #[test]
    fn overlap_predicate() {
        let mk = |s, e| SpanEvent {
            name: "x",
            arg: None,
            tid: 0,
            start_ns: s,
            end_ns: e,
        };
        assert!(mk(0, 10).overlaps(&mk(5, 15)));
        assert!(mk(5, 15).overlaps(&mk(0, 10)));
        assert!(!mk(0, 10).overlaps(&mk(10, 20)), "touching is not overlap");
        assert!(!mk(0, 10).overlaps(&mk(20, 30)));
    }
}
