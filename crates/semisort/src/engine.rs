//! The semisort engine: heavy keys to dedicated buckets, light keys to
//! hashed buckets, per-bucket grouping — no total order, no recursion.

use dtsort::{HeavyKeyModel, IntegerKey, SortConfig};
use parlay::pack::pack_ranges;
use parlay::par::parallel_for;
use parlay::random::hash64;
use parlay::scatter::scatter_by;
use parlay::slice::UnsafeSliceCell;

/// One group of a semisorted array: the common key and the half-open range
/// its records occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group<K> {
    /// The key shared by every record of the group.
    pub key: K,
    /// Start index of the group.
    pub start: usize,
    /// One past the last index of the group.
    pub end: usize,
}

impl<K> Group<K> {
    /// Number of records in the group (never 0 for produced groups).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the group is empty (never true for produced groups).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Tuning knobs of the semisort engine.
#[derive(Debug, Clone)]
pub struct SemisortConfig {
    /// Sampling / heavy-key-detection knobs and the base-case threshold,
    /// shared with the full sort.  Only the sampling fields and
    /// `base_case_threshold` are consulted; merge knobs are irrelevant here.
    pub sort: SortConfig,
    /// If set, use exactly this many bits of hashed light buckets
    /// (`2^bits` buckets) instead of the sort's `log2(∛n)` radix rule.
    pub light_bucket_bits: Option<u32>,
    /// Adaptive fallback (on by default): when sampling finds **no** heavy
    /// keys and the estimated key range is much larger than the input — a
    /// mostly-distinct dataset like the `Unif-1e9` control — the hashed
    /// scatter cannot beat the MSD sort's locality, so the engine delegates
    /// to [`dtsort`] and reads the groups off the sorted array (which then
    /// come out in ascending key order).
    pub adaptive_sort_fallback: bool,
    /// Minimum fraction of *distinct* sample values (in `[0, 1]`) at which
    /// the adaptive fallback fires, given no heavy keys (default `0.95`).
    ///
    /// The interesting operating region is the boundary: `Unif-1e5` inputs
    /// sample ~98–99% distinct and sit at rough parity between the two
    /// engines, so raising the threshold above that keeps them on the
    /// hashed path while `Unif-1e9` (essentially 100% distinct) still
    /// delegates.  Values above 1 disable the fallback entirely; 0 makes
    /// every heavy-key-free input delegate.
    pub sort_delegation_min_distinct: f64,
}

impl Default for SemisortConfig {
    fn default() -> Self {
        Self {
            sort: SortConfig::default(),
            light_bucket_bits: None,
            adaptive_sort_fallback: true,
            sort_delegation_min_distinct: 0.95,
        }
    }
}

impl SemisortConfig {
    /// Config with the given base-case threshold and defaults elsewhere
    /// (small thresholds force the full engine on small test inputs).
    pub fn with_base_case(threshold: usize) -> Self {
        Self {
            sort: SortConfig {
                base_case_threshold: threshold,
                ..SortConfig::default()
            },
            ..Self::default()
        }
    }
}

/// The adaptive-fallback routing decision: `true` when `model` found no
/// heavy keys **and** at least `min_distinct` (a fraction in `[0, 1]`,
/// [`SemisortConfig::sort_delegation_min_distinct`]) of its samples were
/// distinct values.
///
/// Near-total sample distinctness is the operational "large key range"
/// signal: a key universe much larger than the sample size (Unif-1e9 at
/// a few thousand samples) yields essentially no sample collisions, while
/// any duplicate structure worth grouping by hash (Unif-1e3: every sample
/// value repeats) collapses the distinct count far below the sample count.
/// The sample *maximum* cannot serve here — the paper's generators spread
/// even a 1000-value universe across the full 64-bit range.
pub fn delegates_to_sort(model: &HeavyKeyModel, min_distinct: f64) -> bool {
    model.is_empty()
        && model.num_samples() > 0
        && model.distinct_samples() as f64 >= min_distinct * model.num_samples() as f64
}

/// Semisorts `data` in place by an integer key projection: after the call,
/// every distinct key occupies one contiguous range, records within a range
/// keep their input order (stability), and the returned [`Group`]s describe
/// the ranges.  Groups appear in **no particular key order**.
pub fn semisort_by_key<T, K, F>(data: &mut [T], key: F) -> Vec<Group<K>>
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    semisort_by_key_with(data, key, &SemisortConfig::default())
}

/// [`semisort_by_key`] with an explicit configuration.
pub fn semisort_by_key_with<T, K, F>(data: &mut [T], key: F, cfg: &SemisortConfig) -> Vec<Group<K>>
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let okey = |r: &T| key(r).to_ordered_u64();

    // Base case: a stable sort groups (and orders) the whole input.
    if n <= cfg.sort.base_case_threshold.max(1) {
        data.sort_by_key(okey);
        return extract_groups(data, &key);
    }

    // Step 1: detect heavy keys by sampling.  The bucket width follows the
    // sort's `log2(∛n)` radix rule: enough buckets that a light bucket's
    // comparison sort is a small log factor, few enough that the scatter's
    // counting matrix stays cache-resident.
    let gamma = cfg
        .light_bucket_bits
        .unwrap_or_else(|| cfg.sort.radix_bits(n, 64))
        .clamp(1, 24);
    let model = HeavyKeyModel::detect(n, |i| okey(&data[i]), gamma, &cfg.sort);

    // Adaptive fallback (ROADMAP): a fully-distinct-looking input gains
    // nothing from hashed grouping — the MSD sort's locality wins — so
    // delegate and read the groups off the totally ordered result.
    if cfg.adaptive_sort_fallback && delegates_to_sort(&model, cfg.sort_delegation_min_distinct) {
        dtsort::sort_by_key_with(data, |r| okey(r), &cfg.sort);
        return extract_groups(data, &key);
    }

    let num_heavy = model.len();
    let num_light = 1usize << gamma;
    let shift = 64 - gamma;

    // Step 2: stable scatter — heavy key `k` to bucket `index_of(k)` (its
    // collision-free group), light key to a hashed bucket.  Scattering from
    // a copy back into `data` (rather than out of `data`) saves the
    // write-back pass: each record moves twice in total (copy + scatter),
    // and the per-bucket grouping below works in place.
    let scratch = data.to_vec();
    let plan = scatter_by(&scratch, data, num_heavy + num_light, |rec| {
        let k = okey(rec);
        match model.index_of(k) {
            Some(i) => i as usize,
            None => num_heavy + (hash64(k) >> shift) as usize,
        }
    });
    drop(scratch);

    // Step 3: each light bucket holds O(n / 2^γ) records in expectation and
    // no heavy keys; a stable per-bucket sort finishes the grouping, and the
    // same parallel task scans its bucket for group boundaries.  Heavy
    // buckets are already complete groups and are never touched again.
    let mut light_groups: Vec<Vec<Group<K>>> = vec![Vec::new(); num_light];
    {
        let cell = UnsafeSliceCell::new(&mut *data);
        let groups_cell = UnsafeSliceCell::new(&mut light_groups);
        let cfg_ref = &cfg.sort;
        let okey_ref = &okey;
        let key_ref = &key;
        parallel_for(0, num_light, |b| {
            let range = plan.bucket_range(num_heavy + b);
            if range.is_empty() {
                return;
            }
            let bucket = unsafe { cell.slice_mut(range.start, range.len()) };
            if bucket.len() > cfg_ref.base_case_threshold.max(1) {
                // A hash-flooded bucket (many distinct light keys colliding)
                // is still grouped correctly by the full stable sort.
                dtsort::sort_by_key_with(bucket, |r| okey_ref(r), cfg_ref);
            } else {
                bucket.sort_by_key(okey_ref);
            }
            let gs = scan_bucket_groups(bucket, range.start, key_ref);
            *unsafe { groups_cell.get_mut(b) } = gs;
        });
    }

    // Every non-empty heavy bucket IS one group, read off the plan.
    let mut groups: Vec<Group<K>> = Vec::with_capacity(num_heavy);
    for h in 0..num_heavy {
        let r = plan.bucket_range(h);
        if !r.is_empty() {
            groups.push(Group {
                key: key(&data[r.start]),
                start: r.start,
                end: r.end,
            });
        }
    }
    groups.extend(light_groups.into_iter().flatten());
    groups
}

/// Scans one grouped bucket (starting at `offset` in the full array) for
/// run boundaries and returns its groups.
fn scan_bucket_groups<T, K, F>(bucket: &[T], offset: usize, key: &F) -> Vec<Group<K>>
where
    T: Copy,
    K: IntegerKey,
    F: Fn(&T) -> K,
{
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=bucket.len() {
        if i == bucket.len() || key(&bucket[i]) != key(&bucket[i - 1]) {
            out.push(Group {
                key: key(&bucket[start]),
                start: offset + start,
                end: offset + i,
            });
            start = i;
        }
    }
    out
}

/// Semisorts `(key, value)` records in place; see [`semisort_by_key`].
pub fn semisort_pairs<K: IntegerKey, V: Copy + Send + Sync>(
    records: &mut [(K, V)],
) -> Vec<Group<K>> {
    semisort_by_key(records, |r| r.0)
}

/// [`semisort_pairs`] with an explicit configuration.
pub fn semisort_pairs_with<K: IntegerKey, V: Copy + Send + Sync>(
    records: &mut [(K, V)],
    cfg: &SemisortConfig,
) -> Vec<Group<K>> {
    semisort_by_key_with(records, |r| r.0, cfg)
}

/// Semisorts plain keys in place; see [`semisort_by_key`].
pub fn semisort_keys<K: IntegerKey>(keys: &mut [K]) -> Vec<Group<K>> {
    semisort_by_key(keys, |&k| k)
}

/// Scans the grouped array for run boundaries and materializes the groups.
fn extract_groups<T, K, F>(data: &[T], key: &F) -> Vec<Group<K>>
where
    T: Copy + Send + Sync,
    K: IntegerKey,
    F: Fn(&T) -> K + Sync,
{
    pack_ranges(data.len(), |i| key(&data[i]) != key(&data[i - 1]))
        .into_iter()
        .map(|r| Group {
            key: key(&data[r.start]),
            start: r.start,
            end: r.end,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::HashMap;

    /// Checks the semisort contract: output is a permutation of the input,
    /// every group is contiguous and covers exactly one distinct key, and
    /// records within a group keep input order.
    fn check_grouping(input: &[(u64, u32)], cfg: &SemisortConfig) {
        let mut data = input.to_vec();
        let groups = semisort_pairs_with(&mut data, cfg);

        let mut want: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(k, v) in input {
            want.entry(k).or_default().push(v);
        }
        assert_eq!(groups.len(), want.len(), "one group per distinct key");
        let mut covered = 0usize;
        for g in &groups {
            assert!(!g.is_empty());
            let vals: Vec<u32> = data[g.start..g.end]
                .iter()
                .map(|&(k, v)| {
                    assert_eq!(k, g.key, "group must be pure");
                    v
                })
                .collect();
            assert_eq!(vals, want[&g.key], "stability within group {}", g.key);
            covered += g.len();
        }
        assert_eq!(covered, input.len(), "groups must partition the input");
        // Groups tile the array contiguously.
        let mut by_start = groups.clone();
        by_start.sort_by_key(|g| g.start);
        let mut expect = 0usize;
        for g in &by_start {
            assert_eq!(g.start, expect);
            expect = g.end;
        }
    }

    fn small_cfg() -> SemisortConfig {
        SemisortConfig::with_base_case(64)
    }

    #[test]
    fn groups_uniform_small_range() {
        let rng = Rng::new(1);
        let input: Vec<(u64, u32)> = (0..60_000)
            .map(|i| (rng.ith_in(i, 300), i as u32))
            .collect();
        check_grouping(&input, &small_cfg());
    }

    #[test]
    fn groups_heavy_skew() {
        // 70% of records share one key: it must become a heavy bucket and
        // still form exactly one contiguous stable group.
        let rng = Rng::new(2);
        let input: Vec<(u64, u32)> = (0..80_000)
            .map(|i| {
                let k = if rng.ith_f64(i) < 0.7 {
                    42
                } else {
                    rng.ith_in(i, 1 << 40)
                };
                (k, i as u32)
            })
            .collect();
        check_grouping(&input, &small_cfg());
    }

    #[test]
    fn groups_mostly_distinct_keys() {
        let rng = Rng::new(3);
        let input: Vec<(u64, u32)> = (0..50_000).map(|i| (rng.ith(i), i as u32)).collect();
        check_grouping(&input, &small_cfg());
    }

    #[test]
    fn all_equal_keys_single_group() {
        let input: Vec<(u64, u32)> = (0..30_000).map(|i| (9, i as u32)).collect();
        let mut data = input.clone();
        let groups = semisort_pairs_with(&mut data, &small_cfg());
        assert_eq!(groups.len(), 1);
        assert_eq!((groups[0].start, groups[0].end), (0, input.len()));
        assert_eq!(data, input, "all-equal input must be untouched (stability)");
    }

    #[test]
    fn empty_single_and_tiny() {
        let mut empty: Vec<(u64, u32)> = vec![];
        assert!(semisort_pairs(&mut empty).is_empty());

        let mut one = vec![(5u64, 0u32)];
        let g = semisort_pairs(&mut one);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].key, 5);
        assert_eq!(g[0].len(), 1);

        let mut two = vec![(5u64, 0u32), (5, 1)];
        let g = semisort_pairs(&mut two);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len(), 2);
    }

    #[test]
    fn base_case_path_groups_too() {
        // Default config: 2^14 threshold, so this goes down the sort path.
        let rng = Rng::new(4);
        let input: Vec<(u64, u32)> = (0..1000).map(|i| (rng.ith_in(i, 7), i as u32)).collect();
        check_grouping(&input, &SemisortConfig::default());
    }

    #[test]
    fn signed_keys_group_correctly() {
        let rng = Rng::new(5);
        let mut data: Vec<(i64, u32)> = (0..40_000)
            .map(|i| ((rng.ith_in(i, 100) as i64) - 50, i as u32))
            .collect();
        let want_distinct: std::collections::HashSet<i64> = data.iter().map(|&(k, _)| k).collect();
        let groups = semisort_by_key_with(&mut data, |r| r.0, &small_cfg());
        assert_eq!(groups.len(), want_distinct.len());
        for g in &groups {
            assert!(data[g.start..g.end].iter().all(|&(k, _)| k == g.key));
        }
    }

    #[test]
    fn plain_keys_and_struct_projection() {
        let rng = Rng::new(6);
        let mut keys: Vec<u32> = (0..30_000).map(|i| rng.ith_in(i, 40) as u32).collect();
        let groups = semisort_keys(&mut keys);
        assert_eq!(groups.len(), 40);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 30_000);

        #[derive(Clone, Copy, Debug)]
        struct Rec {
            k: u16,
            _pad: u16,
        }
        let mut recs: Vec<Rec> = (0..20_000)
            .map(|i| Rec {
                k: (rng.fork(1).ith_in(i, 25)) as u16,
                _pad: 0,
            })
            .collect();
        let groups = semisort_by_key_with(&mut recs, |r| r.k, &small_cfg());
        assert_eq!(groups.len(), 25);
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let rng = Rng::new(7);
        let input: Vec<(u64, u32)> = (0..30_000)
            .map(|i| (rng.ith_in(i, 500), i as u32))
            .collect();
        let mut a = input.clone();
        let mut b = input.clone();
        let ga = semisort_pairs_with(&mut a, &small_cfg());
        let gb = semisort_pairs_with(&mut b, &small_cfg());
        assert_eq!(a, b);
        assert_eq!(ga, gb);
    }

    /// The `Unif-1e9` control: keys drawn from a universe vastly larger
    /// than `n`, spread over the full 64-bit range — the distribution
    /// where hashed grouping loses to the MSD sort (ROADMAP regression).
    fn unif_1e9_input(n: usize) -> Vec<(u64, u32)> {
        workloads::dist::generate_pairs_u64(
            &workloads::dist::Distribution::Uniform {
                distinct: 1_000_000_000,
            },
            n,
            42,
        )
        .into_iter()
        .map(|(k, v)| (k, v as u32))
        .collect()
    }

    #[test]
    fn adaptive_fallback_routes_unif_1e9_to_sort() {
        let n = 60_000;
        let input = unif_1e9_input(n);
        let cfg = small_cfg();
        let okey = |r: &(u64, u32)| r.0;
        let gamma = cfg
            .light_bucket_bits
            .unwrap_or_else(|| cfg.sort.radix_bits(n, 64))
            .clamp(1, 24);
        let model = HeavyKeyModel::detect(n, |i| okey(&input[i]), gamma, &cfg.sort);
        assert!(
            delegates_to_sort(&model, cfg.sort_delegation_min_distinct),
            "Unif-1e9 must route to the sort fallback \
             (heavy = {}, distinct = {}/{})",
            model.len(),
            model.distinct_samples(),
            model.num_samples()
        );
        // Observable effect of the delegation: the groups come back in
        // ascending key order (the hashed engine scrambles them), and the
        // full semisort contract still holds.
        let mut data = input.clone();
        let groups = semisort_pairs_with(&mut data, &cfg);
        assert!(
            groups.windows(2).all(|w| w[0].key < w[1].key),
            "fallback output must be totally ordered"
        );
        check_grouping(&input, &cfg);
    }

    #[test]
    fn adaptive_fallback_leaves_duplicate_heavy_inputs_alone() {
        // Unif-1e3 over the full 64-bit range: no heavy keys either, but
        // every sample value repeats ~samples/1000 times — the engine must
        // keep the hashed path (this is where semisort beats the sort).
        let n = 60_000;
        let rng = Rng::new(21);
        let input: Vec<(u64, u32)> = (0..n)
            .map(|i| {
                let v = rng.ith_in(i as u64, 1000);
                (v * (u64::MAX / 1000), i as u32)
            })
            .collect();
        let cfg = small_cfg();
        let gamma = cfg.sort.radix_bits(n, 64).clamp(1, 24);
        let model = HeavyKeyModel::detect(n, |i| input[i].0, gamma, &cfg.sort);
        assert!(
            !delegates_to_sort(&model, cfg.sort_delegation_min_distinct),
            "duplicate-heavy input must stay on the hashed engine \
             (distinct = {}/{})",
            model.distinct_samples(),
            model.num_samples()
        );
        check_grouping(&input, &cfg);
    }

    #[test]
    #[ignore = "bench-scale input; run explicitly with --ignored --release"]
    fn adaptive_fallback_routes_unif_1e9_at_bench_scale() {
        // The routing decision at the benchmark's exact operating point
        // (n = 2e6, default config): guards against a sample-size change
        // silently flipping the control distribution off the fallback.
        let n = 2_000_000;
        let input = unif_1e9_input(n);
        let cfg = SemisortConfig::default();
        let gamma = cfg.sort.radix_bits(n, 64).clamp(1, 24);
        let model = HeavyKeyModel::detect(n, |i| input[i].0, gamma, &cfg.sort);
        assert!(
            delegates_to_sort(&model, cfg.sort_delegation_min_distinct),
            "heavy = {}, distinct = {}/{}",
            model.len(),
            model.distinct_samples(),
            model.num_samples()
        );
    }

    #[test]
    fn fallback_can_be_disabled() {
        let n = 50_000;
        let input = unif_1e9_input(n);
        let cfg = SemisortConfig {
            adaptive_sort_fallback: false,
            ..SemisortConfig::with_base_case(64)
        };
        // The hashed engine must still produce a correct grouping on the
        // distribution it is slowest on.
        check_grouping(&input, &cfg);
    }

    #[test]
    fn delegation_threshold_is_configurable_at_the_unif_1e5_boundary() {
        // Unif-1e5 is the boundary distribution of the routing decision:
        // a 1e5-value universe sampled a few thousand times comes back
        // ~98–99% distinct — above the default 95% threshold (so it
        // delegates to the sort, at rough parity) but below full
        // distinctness.  The threshold is a config field, so a micro-sweep
        // can move the boundary without editing engine code.
        let n = 60_000;
        let input: Vec<(u64, u32)> = workloads::dist::generate_pairs_u64(
            &workloads::dist::Distribution::Uniform { distinct: 100_000 },
            n,
            42,
        )
        .into_iter()
        .map(|(k, v)| (k, v as u32))
        .collect();
        let cfg = small_cfg();
        let gamma = cfg.sort.radix_bits(n, 64).clamp(1, 24);
        let model = HeavyKeyModel::detect(n, |i| input[i].0, gamma, &cfg.sort);
        let distinct_frac = model.distinct_samples() as f64 / model.num_samples() as f64;
        assert!(
            (0.95..1.0).contains(&distinct_frac),
            "premise: Unif-1e5 must sit between the default threshold and \
             full distinctness (distinct = {}/{})",
            model.distinct_samples(),
            model.num_samples()
        );
        // Default 95%: delegates.  Raised above the observed fraction:
        // stays on the hashed engine.  Zero: everything heavy-key-free
        // delegates.  (Same model, different knob — no re-sampling.)
        assert!(delegates_to_sort(&model, cfg.sort_delegation_min_distinct));
        assert!(!delegates_to_sort(&model, 0.999));
        assert!(delegates_to_sort(&model, 0.0));
        // End-to-end: both routes must produce a correct grouping, and the
        // raised threshold observably changes the route (the sort fallback
        // returns groups in ascending key order; the hashed engine
        // scrambles them).
        check_grouping(&input, &cfg);
        let hashed_cfg = SemisortConfig {
            sort_delegation_min_distinct: 0.999,
            ..small_cfg()
        };
        check_grouping(&input, &hashed_cfg);
        let mut delegated = input.clone();
        let delegated_groups = semisort_pairs_with(&mut delegated, &cfg);
        assert!(
            delegated_groups.windows(2).all(|w| w[0].key < w[1].key),
            "default threshold must route Unif-1e5 to the sort fallback"
        );
        let mut hashed = input.clone();
        let hashed_groups = semisort_pairs_with(&mut hashed, &hashed_cfg);
        assert!(
            !hashed_groups.windows(2).all(|w| w[0].key < w[1].key),
            "raised threshold must keep Unif-1e5 on the hashed engine"
        );
    }

    #[test]
    fn light_bucket_override_is_respected() {
        let rng = Rng::new(8);
        let input: Vec<(u64, u32)> = (0..50_000)
            .map(|i| (rng.ith_in(i, 1000), i as u32))
            .collect();
        let cfg = SemisortConfig {
            light_bucket_bits: Some(4),
            ..SemisortConfig::with_base_case(64)
        };
        check_grouping(&input, &cfg);
    }
}
