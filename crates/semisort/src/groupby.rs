//! Aggregation layered on the semisort engine.
//!
//! [`GroupBy`] owns a set of `(key, value)` records, semisorts them once,
//! and then answers any number of aggregate queries (count, fold, collect)
//! over the contiguous groups — the relational group-by shape, served by
//! grouping instead of full sorting.

use crate::engine::{semisort_pairs_with, Group, SemisortConfig};
use dtsort::IntegerKey;
use parlay::par::parallel_for;
use parlay::slice::UnsafeSliceCell;

/// `(key, value)` records grouped by key, ready for aggregation.
///
/// Construction semisorts the records once (`O(n)` on duplicate-heavy
/// inputs); every aggregate afterwards is a parallel pass over the groups.
/// Group order is unspecified — sort the aggregate output by key if an
/// ordered result is needed.
#[derive(Debug, Clone)]
pub struct GroupBy<K: IntegerKey, V: Copy + Send + Sync> {
    records: Vec<(K, V)>,
    groups: Vec<Group<K>>,
}

impl<K: IntegerKey, V: Copy + Send + Sync> GroupBy<K, V> {
    /// Groups `records` by key with the default configuration.
    pub fn new(records: Vec<(K, V)>) -> Self {
        Self::with_config(records, &SemisortConfig::default())
    }

    /// Groups `records` by key with an explicit configuration.
    pub fn with_config(mut records: Vec<(K, V)>, cfg: &SemisortConfig) -> Self {
        let groups = semisort_pairs_with(&mut records, cfg);
        Self { records, groups }
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct keys.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The groups, in unspecified key order.
    pub fn groups(&self) -> &[Group<K>] {
        &self.groups
    }

    /// The grouped records (each group contiguous, input order within).
    pub fn records(&self) -> &[(K, V)] {
        &self.records
    }

    /// The records of one group.
    pub fn group_records(&self, g: &Group<K>) -> &[(K, V)] {
        &self.records[g.start..g.end]
    }

    /// Per-key record counts, in unspecified key order.
    pub fn counts(&self) -> Vec<(K, usize)> {
        self.groups.iter().map(|g| (g.key, g.len())).collect()
    }

    /// Folds every group's values into an accumulator, in parallel over
    /// groups: `(key, fold(init, values...))` per distinct key, in
    /// unspecified key order.  Values are folded in input order.
    pub fn fold<A, F>(&self, init: A, f: F) -> Vec<(K, A)>
    where
        A: Clone + Send + Sync,
        F: Fn(A, &V) -> A + Sync,
    {
        let Some(first) = self.groups.first() else {
            return Vec::new();
        };
        let mut out: Vec<(K, A)> = vec![(first.key, init.clone()); self.groups.len()];
        {
            let cell = UnsafeSliceCell::new(&mut out);
            let groups = &self.groups;
            let records = &self.records;
            let init = &init;
            let f = &f;
            parallel_for(0, groups.len(), |gi| {
                let g = &groups[gi];
                let mut acc = init.clone();
                for (_, v) in &records[g.start..g.end] {
                    acc = f(acc, v);
                }
                // `get_mut` + assignment drops the placeholder properly.
                *unsafe { cell.get_mut(gi) } = (g.key, acc);
            });
        }
        out
    }

    /// Per-key sums of a numeric projection of the values.
    pub fn sum_by<F>(&self, f: F) -> Vec<(K, u64)>
    where
        F: Fn(&V) -> u64 + Sync,
    {
        self.fold(0u64, |acc, v| acc + f(v))
    }

    /// Collects every group's values into an owned vector (input order).
    pub fn collect(&self) -> Vec<(K, Vec<V>)> {
        self.fold(Vec::new(), |mut acc, &v| {
            acc.push(v);
            acc
        })
    }

    /// Consumes the group-by, returning the grouped records and the groups.
    pub fn into_parts(self) -> (Vec<(K, V)>, Vec<Group<K>>) {
        (self.records, self.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlay::random::Rng;
    use std::collections::HashMap;

    fn skewed_input(n: usize, distinct: u64, seed: u64) -> Vec<(u64, u64)> {
        let rng = Rng::new(seed);
        (0..n)
            .map(|i| (rng.ith_in(i as u64, distinct), i as u64))
            .collect()
    }

    #[test]
    fn counts_match_hashmap() {
        let input = skewed_input(50_000, 123, 1);
        let mut want: HashMap<u64, usize> = HashMap::new();
        for &(k, _) in &input {
            *want.entry(k).or_default() += 1;
        }
        let g = GroupBy::new(input);
        assert_eq!(g.len(), 50_000);
        assert_eq!(g.num_groups(), want.len());
        for (k, c) in g.counts() {
            assert_eq!(c, want[&k], "key {k}");
        }
    }

    #[test]
    fn fold_and_sum_match_reference() {
        let input = skewed_input(40_000, 77, 2);
        let mut want: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &input {
            *want.entry(k).or_default() += v;
        }
        let g = GroupBy::with_config(input, &SemisortConfig::with_base_case(64));
        for (k, s) in g.sum_by(|&v| v) {
            assert_eq!(s, want[&k], "key {k}");
        }
        // fold with a non-Copy accumulator: max + count.
        for (k, (mx, cnt)) in g.fold((0u64, 0usize), |(mx, c), &v| (mx.max(v), c + 1)) {
            assert!(cnt > 0);
            assert!(mx <= 40_000, "key {k}");
        }
    }

    #[test]
    fn collect_preserves_input_order() {
        let records = vec![(5u32, 'a'), (3, 'x'), (5, 'b'), (3, 'y'), (5, 'c')];
        let g = GroupBy::new(records);
        let collected: HashMap<u32, Vec<char>> = g.collect().into_iter().collect();
        assert_eq!(collected[&5], vec!['a', 'b', 'c']);
        assert_eq!(collected[&3], vec!['x', 'y']);
    }

    #[test]
    fn group_records_are_pure() {
        let input = skewed_input(20_000, 9, 3);
        let g = GroupBy::with_config(input, &SemisortConfig::with_base_case(64));
        for grp in g.groups() {
            assert!(g.group_records(grp).iter().all(|&(k, _)| k == grp.key));
        }
    }

    #[test]
    fn empty_group_by() {
        let g: GroupBy<u64, u64> = GroupBy::new(Vec::new());
        assert!(g.is_empty());
        assert_eq!(g.num_groups(), 0);
        assert!(g.counts().is_empty());
        assert!(g.fold(0u64, |a, _| a).is_empty());
        assert!(g.collect().is_empty());
        let (records, groups) = g.into_parts();
        assert!(records.is_empty() && groups.is_empty());
    }
}
