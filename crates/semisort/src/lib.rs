//! # semisort — heavy-key semisort and group-by engine
//!
//! A *semisort* groups equal keys contiguously **without establishing a
//! total order** — the relaxation of sorting that group-by, dedup,
//! histogramming and join pre-passes actually need.  Dropping the order
//! requirement removes DovetailSort's recursion and dovetail merge
//! entirely: one sampling pass, one stable scatter, and a per-bucket
//! cleanup are enough.
//!
//! ## Algorithm
//!
//! The engine reuses the paper's central insight (heavy duplicate keys
//! deserve dedicated, collision-free buckets) through the stable
//! [`dtsort::HeavyKeyModel`] API:
//!
//! 1. **Sample** the input and detect heavy keys
//!    ([`dtsort::HeavyKeyModel::detect`], paper Alg. 2 / Section 2.5).
//! 2. **Scatter** every record, stably and in parallel
//!    ([`parlay::scatter::scatter_by`]): a heavy key goes to its own
//!    bucket (already one finished group!); a light key goes to one of
//!    `2^γ` *hashed* buckets selected by the top bits of `hash64(key)`.
//! 3. **Group each light bucket**: the expected bucket size is
//!    `O(n / 2^γ)` and no heavy key pollutes it, so a stable
//!    comparison sort of the bucket finishes the grouping.  (Sorting a
//!    bucket is a valid — if stronger — grouping of it; the *global*
//!    output carries no order.)
//!
//! Heavy records are touched exactly once after the scatter decision —
//! they skip step 3 entirely, which is where the win over
//! sort-then-scan comes from on duplicate-heavy inputs.
//!
//! The output is a grouped permutation of the input: every distinct key
//! occupies one contiguous range ([`Group`]), records inside a group keep
//! their input order (the engine is **stable**), but groups appear in no
//! particular key order.
//!
//! ## Quick start
//!
//! ```
//! let mut records = vec![(7u64, 'a'), (2, 'x'), (7, 'b'), (2, 'y'), (7, 'c')];
//! let groups = semisort::semisort_pairs(&mut records);
//! assert_eq!(groups.len(), 2);
//! for g in &groups {
//!     // Each group is contiguous and keeps input order.
//!     assert!(records[g.start..g.end].iter().all(|&(k, _)| k == g.key));
//! }
//! let g7 = groups.iter().find(|g| g.key == 7).unwrap();
//! let vals: Vec<char> = records[g7.start..g7.end].iter().map(|r| r.1).collect();
//! assert_eq!(vals, vec!['a', 'b', 'c']);
//! ```
//!
//! For aggregation, use the [`GroupBy`] API layered on top:
//!
//! ```
//! let records = vec![(1u32, 10u64), (2, 1), (1, 5), (2, 2)];
//! let g = semisort::GroupBy::new(records);
//! let mut sums = g.fold(0u64, |acc, &v| acc + v);
//! sums.sort_unstable();
//! assert_eq!(sums, vec![(1, 15), (2, 3)]);
//! ```

mod engine;
mod groupby;

pub use engine::{
    delegates_to_sort, semisort_by_key, semisort_by_key_with, semisort_keys, semisort_pairs,
    semisort_pairs_with, Group, SemisortConfig,
};
pub use groupby::GroupBy;
