//! Observability hooks for the streaming benches.
//!
//! When tracing is on (`OBS_TRACE=1`), the streaming engines record phase
//! timings into the global [`obs`] registry.  The benches surface three of
//! them per measured run — writer backpressure, fsync time, and merge
//! read-ahead stalls — by snapshotting the registry around the run and
//! differencing the histogram sums.  With tracing off the probes cost one
//! atomic load and report zeros, so the JSON schema is stable either way.

use obs::MetricsSnapshot;

/// Phase-time deltas (nanoseconds) attributed to one measured run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ObsPhaseDeltas {
    /// Time `push` spent blocked on the bounded spill-writer channel.
    pub backpressure_ns: u64,
    /// Time spent in `sync_data` making spilled runs durable.
    pub fsync_ns: u64,
    /// Time the merge spent waiting on read-ahead prefetcher threads.
    pub prefetch_stall_ns: u64,
}

/// Snapshots the global registry before a run; [`ObsProbe::finish`] returns
/// the per-run histogram-sum deltas.  Inert when tracing is disabled.
pub struct ObsProbe {
    before: Option<MetricsSnapshot>,
}

impl ObsProbe {
    pub fn start() -> Self {
        Self {
            before: obs::enabled().then(|| obs::global().snapshot()),
        }
    }

    pub fn finish(self) -> ObsPhaseDeltas {
        let Some(before) = self.before else {
            return ObsPhaseDeltas::default();
        };
        let after = obs::global().snapshot();
        let delta = |name: &str| {
            after
                .histogram_sum(name)
                .saturating_sub(before.histogram_sum(name))
        };
        ObsPhaseDeltas {
            backpressure_ns: delta("spill.backpressure_ns"),
            fsync_ns: delta("spill.fsync_ns"),
            prefetch_stall_ns: delta("prefetch.stall_ns"),
        }
    }
}

/// The three phase-delta fields as a JSON fragment (leading comma included)
/// for appending to a bench row object.
pub fn obs_json_fields(d: &ObsPhaseDeltas) -> String {
    format!(
        ", \"backpressure_ns\": {}, \"fsync_ns\": {}, \"prefetch_stall_ns\": {}",
        d.backpressure_ns, d.fsync_ns, d.prefetch_stall_ns
    )
}

/// Writes `TRACE_{tag}.json` (chrome://tracing format, from the spans
/// recorded so far) and `METRICS_{tag}.json` (full registry snapshot) in
/// the current directory.  No-op when tracing is disabled.
pub fn write_obs_artifacts(tag: &str) {
    if !obs::enabled() {
        return;
    }
    let (events, dropped) = obs::drain_spans();
    let trace_path = format!("TRACE_{tag}.json");
    let metrics_path = format!("METRICS_{tag}.json");
    if let Err(e) = obs::write_chrome_trace(std::path::Path::new(&trace_path), &events) {
        eprintln!("warning: could not write {trace_path}: {e}");
    }
    if let Err(e) = std::fs::write(&metrics_path, obs::global().snapshot().to_json()) {
        eprintln!("warning: could not write {metrics_path}: {e}");
    }
    println!(
        "\nobs: wrote {trace_path} ({} spans{}) and {metrics_path}",
        events.len(),
        if dropped > 0 {
            format!(", {dropped} dropped")
        } else {
            String::new()
        }
    );
}
