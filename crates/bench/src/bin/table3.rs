//! Reproduces **Table 3** of the paper: running time (seconds) of every
//! sorting algorithm on the 15 standard synthetic distributions and the 5
//! adversarial Bit-Exponential distributions, for 32-bit or 64-bit
//! key/value pairs.
//!
//! Usage: `cargo run -p bench --release --bin table3 -- [--n 1e7] [--bits 32|64] [--reps 3] [--verify]`

use bench::experiments::measure_distribution;
use bench::{format_row, geo_mean, Args, SorterKind, Table};
use workloads::dist::{bexp_instances, paper_instances};

fn run_block(
    title: &str,
    dists: &[workloads::dist::Distribution],
    args: &Args,
    sorters: &[SorterKind],
) {
    println!("\n=== {title} (n = {}, {}-bit keys) ===", args.n, args.bits);
    let mut headers = vec!["Instance".to_string()];
    headers.extend(sorters.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(headers);
    let mut per_sorter: Vec<Vec<f64>> = vec![Vec::new(); sorters.len()];
    for dist in dists {
        let times =
            measure_distribution(dist, args.n, args.bits, args.reps, sorters, args.verify, 42);
        for (i, &t) in times.iter().enumerate() {
            per_sorter[i].push(t);
        }
        table.add_row(format_row(&dist.label(), &times));
    }
    let avgs: Vec<f64> = per_sorter.iter().map(|v| geo_mean(v)).collect();
    table.add_row(format_row("Avg.(geomean)", &avgs));
    table.print();
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    let sorters = SorterKind::table3_lineup();
    println!(
        "Table 3 reproduction — {} threads, fastest entry per row marked with '*'",
        rayon::current_num_threads()
    );
    run_block(
        "Standard distributions",
        &paper_instances(),
        &args,
        &sorters,
    );
    run_block(
        "Adversarial Bit-Exponential distributions",
        &bexp_instances(),
        &args,
        &sorters,
    );
}
