//! Empirical check of the paper's theory section:
//!
//! * **Theorem 4.5** — DTSort performs `O(n √log r)` work: the number of
//!   record movements per input record should stay near
//!   `2 · (#levels) ≈ 2 · √log r / γ-factor`, far below the `log n`
//!   comparisons per record of a comparison sort.
//! * **Theorems 4.6/4.7** — on exponential inputs (with sufficiently heavy
//!   duplication) and on inputs with few distinct keys, the work is `O(n)`:
//!   the movements per record should approach 2 (one distribution + one
//!   merge at the root only) as duplication grows.
//!
//! The harness prints, for each instance, the detected heavy keys, the
//! fraction of records that bypassed recursion, and the records-moved-per-
//! record work proxy.
//!
//! Usage: `cargo run -p bench --release --bin theory_check -- [--n 1e7] [--bits 32]`

use bench::{Args, Table};
use workloads::dist::Distribution;

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    let instances = vec![
        (
            "few distinct (Thm 4.7)",
            Distribution::Uniform { distinct: 10 },
        ),
        (
            "few distinct (Thm 4.7)",
            Distribution::Uniform { distinct: 1_000 },
        ),
        (
            "exponential (Thm 4.6)",
            Distribution::Exponential { lambda: 10.0 },
        ),
        (
            "exponential (Thm 4.6)",
            Distribution::Exponential { lambda: 1.0 },
        ),
        ("zipfian heavy", Distribution::Zipfian { s: 1.5 }),
        (
            "uniform distinct (worst case)",
            Distribution::Uniform {
                distinct: 1_000_000_000,
            },
        ),
        ("adversarial", Distribution::BitExponential { t: 100.0 }),
    ];
    println!(
        "Theory check (Thms 4.5-4.7) — n = {}, {}-bit keys.  'moves/rec' is the records-moved work proxy; the comparison-sort equivalent is ~log2(n) = {:.1}.",
        args.n,
        args.bits,
        (args.n as f64).log2()
    );
    let mut table = Table::new(vec![
        "Instance",
        "Regime",
        "heavy keys",
        "heavy rec %",
        "base-case rec %",
        "levels",
        "moves/rec",
    ]);
    for (regime, dist) in &instances {
        let snap = bench::experiments::measure_work_counters(dist, args.n, args.bits, 42);
        let n = args.n as f64;
        table.add_row(vec![
            dist.label(),
            regime.to_string(),
            format!("{}", snap.heavy_keys),
            format!("{:.1}%", 100.0 * snap.heavy_records as f64 / n),
            format!("{:.1}%", 100.0 * snap.base_case_records as f64 / n),
            format!("{}", snap.max_depth),
            format!("{:.2}", snap.records_moved() as f64 / n),
        ]);
    }
    table.print();
    println!("\nExpectation: heavy-duplicate instances show moves/rec close to 2 (linear work, Thms 4.6/4.7);");
    println!("the distinct-key worst case shows moves/rec ≈ 2 × #levels ≈ 2·√(log r)/γ (Thm 4.5), still well below log2 n.");
}
