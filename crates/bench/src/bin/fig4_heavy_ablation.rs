//! Reproduces **Fig. 4(a)(b)** of the paper: DTSort with and without
//! heavy-key detection ("DTSort" vs "Plain") on the eight representative
//! distributions (lightest and heaviest of each family), for 32-bit and
//! 64-bit keys.
//!
//! Usage: `cargo run -p bench --release --bin fig4_heavy_ablation -- [--n 1e7] [--reps 3]`

use bench::experiments::measure_heavy_ablation;
use bench::{Args, Table};
use workloads::dist::ablation_instances;

fn run(bits: u32, args: &Args) {
    println!(
        "\n=== Heavy-key detection ablation, {bits}-bit keys (Fig. 4{}) ===",
        if bits == 32 { "a" } else { "b" }
    );
    let mut table = Table::new(vec!["Instance", "DTSort(s)", "Plain(s)", "Speedup"]);
    let mut speedups = Vec::new();
    for dist in ablation_instances() {
        let (with, without) = measure_heavy_ablation(&dist, args.n, bits, args.reps, 42);
        let speedup = without / with.max(1e-12);
        speedups.push(speedup);
        table.add_row(vec![
            dist.label(),
            format!("{with:.3}"),
            format!("{without:.3}"),
            format!("{speedup:.2}x"),
        ]);
    }
    let avg = bench::geo_mean(&speedups);
    table.add_row(vec![
        "Avg.(geomean)".to_string(),
        String::new(),
        String::new(),
        format!("{avg:.2}x"),
    ]);
    table.print();
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    println!(
        "Fig. 4(a)(b) reproduction — {} threads.  Paper reference: +25% average on 32-bit, 1.50x on 64-bit.",
        rayon::current_num_threads()
    );
    run(32, &args);
    run(64, &args);
}
