//! Reproduces **Fig. 4(f)** and the appendix **Figs. 21–36**: running time
//! as the input size grows, on a representative heavy and light instance of
//! each distribution family (both 32-bit and 64-bit unless `--bits` is
//! given).
//!
//! The paper sweeps n = 10^7 .. 2·10^9; the default here sweeps
//! n = 10^5 .. `--n` (geometric steps) so the experiment finishes on a
//! laptop while showing the same near-linear scaling curves.
//!
//! Usage: `cargo run -p bench --release --bin fig_scalability_size -- [--n 2e7] [--bits 32] [--reps 3]`

use bench::experiments::measure_distribution;
use bench::{Args, SorterKind, Table};
use workloads::dist::Distribution;

fn size_steps(max_n: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 100_000usize;
    while n < max_n {
        v.push(n);
        n *= 2;
    }
    v.push(max_n);
    v
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    let sorters = SorterKind::table3_lineup();
    let sizes = size_steps(args.n);
    let instances = vec![
        Distribution::Uniform {
            distinct: 10_000_000,
        },
        Distribution::Uniform { distinct: 1_000 },
        Distribution::Exponential { lambda: 2.0 },
        Distribution::Exponential { lambda: 7.0 },
        Distribution::Zipfian { s: 0.8 },
        Distribution::Zipfian { s: 1.2 },
        Distribution::BitExponential { t: 30.0 },
        Distribution::BitExponential { t: 100.0 },
    ];
    println!(
        "Figs. 4(f), 21-36 reproduction — running time vs input size ({}-bit keys, {} threads)",
        args.bits,
        rayon::current_num_threads()
    );
    for dist in &instances {
        println!("\n=== {} ===", dist.label());
        let mut headers = vec!["n".to_string()];
        headers.extend(sorters.iter().map(|s| s.name().to_string()));
        let mut table = Table::new(headers);
        for &n in &sizes {
            let times = measure_distribution(dist, n, args.bits, args.reps, &sorters, false, 42);
            let mut row = vec![format!("{n}")];
            row.extend(times.iter().map(|t| format!("{t:.4}")));
            table.add_row(row);
        }
        table.print();
    }
}
