//! Reproduces **Table 4** of the paper: running time of the sorting
//! algorithms inside two applications — directed-graph transpose and Morton
//! (z-order) sort — on synthetic stand-ins for the paper's datasets.
//!
//! Usage:
//! `cargo run -p bench --release --bin table4 -- [--app transpose|morton|all] [--scale 0.1] [--reps 3]`

use bench::experiments::{measure_morton, measure_transpose};
use bench::{format_row, geo_mean, Args, SorterKind, Table};
use workloads::graphs::{table4_graphs, Csr};
use workloads::points::{trace_points_2d, uniform_points_2d, varden_points_2d, VardenConfig};

fn run_transpose(args: &Args, sorters: &[SorterKind]) {
    println!("\n=== Graph transpose (scale {:.2}) ===", args.scale);
    let mut headers = vec!["Graph".to_string(), "|E|".to_string()];
    headers.extend(sorters.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(headers);
    let mut per_sorter: Vec<Vec<f64>> = vec![Vec::new(); sorters.len()];
    for (label, edges) in table4_graphs(args.scale, 42) {
        let g = Csr::from_unsorted_edges(edges.num_vertices, &edges.edges);
        let times = measure_transpose(&g, args.reps, sorters);
        for (i, &t) in times.iter().enumerate() {
            per_sorter[i].push(t);
        }
        let mut row = format_row(&label, &times);
        row.insert(1, format!("{}", g.num_edges()));
        table.add_row(row);
    }
    let avgs: Vec<f64> = per_sorter.iter().map(|v| geo_mean(v)).collect();
    let mut row = format_row("Avg.(geomean)", &avgs);
    row.insert(1, String::new());
    table.add_row(row);
    table.print();
}

fn run_morton(args: &Args, sorters: &[SorterKind]) {
    println!("\n=== Morton order (scale {:.2}) ===", args.scale);
    let base = (2_000_000.0 * args.scale) as usize;
    let instances: Vec<(String, Vec<workloads::points::Point2>)> = vec![
        (
            "GL-like (GPS traces)".into(),
            trace_points_2d(base, base / 500 + 1, 1),
        ),
        ("CM-like (uniform sim)".into(), uniform_points_2d(base, 2)),
        (
            "OSM-like (GPS traces)".into(),
            trace_points_2d(2 * base, base / 250 + 1, 3),
        ),
        (
            "Varden SS2d".into(),
            varden_points_2d(base, &VardenConfig::default(), 4),
        ),
        (
            "Varden SS2d'".into(),
            varden_points_2d(2 * base, &VardenConfig::default(), 5),
        ),
    ];
    let mut headers = vec!["Dataset".to_string(), "n".to_string()];
    headers.extend(sorters.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(headers);
    let mut per_sorter: Vec<Vec<f64>> = vec![Vec::new(); sorters.len()];
    for (label, pts) in &instances {
        let times = measure_morton(pts, args.reps, sorters);
        for (i, &t) in times.iter().enumerate() {
            per_sorter[i].push(t);
        }
        let mut row = format_row(label, &times);
        row.insert(1, format!("{}", pts.len()));
        table.add_row(row);
    }
    let avgs: Vec<f64> = per_sorter.iter().map(|v| geo_mean(v)).collect();
    let mut row = format_row("Avg.(geomean)", &avgs);
    row.insert(1, String::new());
    table.add_row(row);
    table.print();
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    let sorters = SorterKind::table3_lineup();
    println!(
        "Table 4 reproduction — {} threads, times in seconds, fastest per row marked with '*'",
        rayon::current_num_threads()
    );
    match args.app.as_str() {
        "transpose" => run_transpose(&args, &sorters),
        "morton" => run_morton(&args, &sorters),
        _ => {
            run_transpose(&args, &sorters);
            run_morton(&args, &sorters);
        }
    }
}
