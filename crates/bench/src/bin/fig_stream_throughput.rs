//! Streaming-sorter throughput: records/sec of `stream::StreamSorter` as
//! the memory budget shrinks (forcing more spilled runs), against the
//! in-memory DovetailSort baseline on the same input.
//!
//! Beyond the console table, results are appended as machine-readable JSON
//! to `BENCH_stream.json` in the current directory so successive PRs can
//! track the perf trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_stream_throughput -- [--n 2e6] [--reps 3]`

use bench::{json_escape, median_time_secs, write_bench_json, Args, Table};
use dtsort::StreamConfig;
use stream::StreamSorter;
use workloads::dist::Distribution;

struct Measurement {
    dist: String,
    budget_bytes: usize,
    runs: usize,
    spilled_bytes: u64,
    secs: f64,
    records_per_sec: f64,
}

/// Pushes the input in batches and drains the merged stream; returns the
/// run count and spilled bytes of the last repetition via `out_stats`.
fn stream_sort_once(
    input: &[(u32, u32)],
    budget: usize,
    batch: usize,
    out_stats: &mut (usize, u64),
) {
    let mut sorter: StreamSorter<u32, u32> =
        StreamSorter::with_config(StreamConfig::with_memory_budget(budget));
    for chunk in input.chunks(batch) {
        sorter.push(chunk).expect("push failed");
    }
    *out_stats = (sorter.run_count(), sorter.stats().spilled_bytes);
    let mut last = 0u32;
    for (k, _) in sorter.finish().expect("finish failed") {
        debug_assert!(k >= last);
        last = k;
        std::hint::black_box(k);
    }
}

fn write_json(path: &str, n: usize, batch: usize, threads: usize, rows: &[Measurement]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "{{\"dist\": \"{}\", \"budget_bytes\": {}, \"runs\": {}, \"spilled_bytes\": {}, \"secs\": {:.6}, \"records_per_sec\": {:.1}}}",
                json_escape(&m.dist),
                m.budget_bytes,
                m.runs,
                m.spilled_bytes,
                m.secs,
                m.records_per_sec,
            )
        })
        .collect();
    write_bench_json(
        path,
        "stream_throughput",
        &[
            ("n", n.to_string()),
            ("batch", batch.to_string()),
            ("threads", threads.to_string()),
        ],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    // Checking for the flag itself (not the default value) keeps an
    // explicit `--n 10000000` honest.
    let n = if std::env::args().any(|a| a == "--n") {
        args.n
    } else {
        2_000_000
    };
    let batch = 64 * 1024;
    let record_bytes = std::mem::size_of::<(u32, u32)>();
    let data_bytes = n * record_bytes;
    // From "everything in memory" down to an eighth of the dataset.  Half
    // the budget is sort scratch and a buffer exactly at capacity spills,
    // so 4·data is the comfortably spill-free configuration.
    let budgets = [
        ("mem", 4 * data_bytes),
        ("1/2", data_bytes / 2),
        ("1/4", data_bytes / 4),
        ("1/8", data_bytes / 8),
    ];
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
        Distribution::Uniform { distinct: 10 },
    ];
    println!(
        "Streaming sorter throughput — n = {n}, batch = {batch}, {} threads",
        rayon::current_num_threads()
    );
    let mut all = Vec::new();
    for dist in &instances {
        println!("\n=== {} ===", dist.label());
        let input = workloads::dist::generate_pairs_u32(dist, n, 42);
        let mut table = Table::new(vec![
            "budget".to_string(),
            "runs".to_string(),
            "spill MiB".to_string(),
            "sec".to_string(),
            "Mrec/s".to_string(),
        ]);
        // In-memory baseline for context.
        let base = median_time_secs(&input, args.reps, |v| dtsort::sort_pairs(v));
        table.add_row(vec![
            "dtsort".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{base:.4}"),
            format!("{:.2}", n as f64 / base / 1e6),
        ]);
        for &(label, budget) in &budgets {
            let mut stats = (0usize, 0u64);
            let secs = median_time_secs(&input, args.reps, |v| {
                stream_sort_once(v, budget, batch, &mut stats)
            });
            let rps = n as f64 / secs;
            table.add_row(vec![
                label.to_string(),
                format!("{}", stats.0),
                format!("{:.1}", stats.1 as f64 / (1 << 20) as f64),
                format!("{secs:.4}"),
                format!("{:.2}", rps / 1e6),
            ]);
            all.push(Measurement {
                dist: dist.label(),
                budget_bytes: budget,
                runs: stats.0,
                spilled_bytes: stats.1,
                secs,
                records_per_sec: rps,
            });
        }
        table.print();
    }
    write_json(
        "BENCH_stream.json",
        n,
        batch,
        rayon::current_num_threads(),
        &all,
    );
}
