//! Streaming-sorter throughput: records/sec of `stream::StreamSorter` as
//! the memory budget shrinks (forcing more spilled runs), against the
//! in-memory DovetailSort baseline on the same input — measured in three
//! spill modes: **synchronous** (`StreamConfig::synchronous_spill`, the
//! pre-pipelining behavior), **pipelined** (background spill writer +
//! merge read-ahead, the default), and **compressed** (pipelined +
//! `SpillCompression::DeltaLz` delta/LZ spill blocks), so every run
//! re-baselines both the overlap win and the compression trade on the
//! current host.  Each mode is additionally measured under **both spill
//! I/O backends** (`StreamConfig::spill_io`): the blocking reference and
//! the batched worker-pool scheduler, paired per rep so the reported
//! blocking-vs-batched ratio is a median of same-rep pairs.
//!
//! Each row reports the spill-phase wall time (pushing, sorting and
//! writing every run, i.e. `push` loop + `flush_spills`) and the merge
//! wall time (`finish` + drain) separately, plus the bytes written to
//! spill files — the pipelining win lives in the spill phase, where disk
//! time hides behind sort time.  Compressed rows additionally report the
//! pre-compression byte count and the achieved on-disk ratio.
//!
//! Beyond the console table, results are appended as machine-readable JSON
//! to `BENCH_stream.json` in the current directory so successive PRs can
//! track the perf trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_stream_throughput -- [--n 2e6] [--reps 3]`

use bench::{
    json_escape, median_time_secs, obs_json_fields, write_bench_json, write_obs_artifacts, Args,
    ObsPhaseDeltas, ObsProbe, Table,
};
use dtsort::{SpillCompression, SpillIoMode, StreamConfig};
use std::time::Instant;
use stream::StreamSorter;
use workloads::dist::Distribution;

struct Measurement {
    dist: String,
    mode: &'static str,
    spill_io: &'static str,
    budget_label: String,
    budget_bytes: usize,
    runs: usize,
    spilled_bytes: u64,
    spilled_raw_bytes: u64,
    spill_secs: f64,
    merge_secs: f64,
    secs: f64,
    records_per_sec: f64,
    /// Median of paired pipelined-vs-synchronous speedups (pipelined rows
    /// only).
    pipe_sync_ratio: Option<f64>,
    /// Median of paired blocking-vs-batched speedups for the same spill
    /// mode (batched rows only).
    io_ratio: Option<f64>,
    /// Phase-time deltas from the obs registry (zero unless `OBS_TRACE=1`).
    obs: ObsPhaseDeltas,
}

/// One (spill mode, I/O backend) cell of the measurement matrix.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    sync: bool,
    compression: SpillCompression,
    io: SpillIoMode,
}

/// The three spill modes under the blocking backend first, then the same
/// three under the batched backend; `median_modes` pairs cell `i` with
/// cell `i + 3` for the per-rep blocking-vs-batched ratio.
const MODES: [Mode; 6] = [
    Mode {
        name: "synchronous",
        sync: true,
        compression: SpillCompression::Off,
        io: SpillIoMode::Blocking,
    },
    Mode {
        name: "pipelined",
        sync: false,
        compression: SpillCompression::Off,
        io: SpillIoMode::Blocking,
    },
    Mode {
        name: "compressed",
        sync: false,
        compression: SpillCompression::DeltaLz,
        io: SpillIoMode::Blocking,
    },
    Mode {
        name: "synchronous",
        sync: true,
        compression: SpillCompression::Off,
        io: SpillIoMode::Batched,
    },
    Mode {
        name: "pipelined",
        sync: false,
        compression: SpillCompression::Off,
        io: SpillIoMode::Batched,
    },
    Mode {
        name: "compressed",
        sync: false,
        compression: SpillCompression::DeltaLz,
        io: SpillIoMode::Batched,
    },
];

fn io_label(io: SpillIoMode) -> &'static str {
    match io {
        SpillIoMode::Blocking => "blocking",
        SpillIoMode::Batched => "batched",
    }
}

struct Phases {
    spill_secs: f64,
    merge_secs: f64,
    runs: usize,
    spilled_bytes: u64,
    spilled_raw_bytes: u64,
    obs: ObsPhaseDeltas,
}

/// One full streaming sort, phase-timed: returns the spill-phase wall time
/// (pushes + flush) and the merge wall time (finish + drain) separately.
fn stream_sort_phases(input: &[(u32, u32)], budget: usize, batch: usize, mode: Mode) -> Phases {
    let cfg = StreamConfig {
        memory_budget_bytes: budget,
        synchronous_spill: mode.sync,
        spill_compression: mode.compression,
        spill_io: mode.io,
        ..StreamConfig::default()
    };
    let mut sorter: StreamSorter<u32, u32> = StreamSorter::with_config(cfg);
    let probe = ObsProbe::start();
    let spill_start = Instant::now();
    for chunk in input.chunks(batch) {
        sorter.push(chunk).expect("push failed");
    }
    // Waiting for the writer here charges residual in-flight writes to the
    // spill phase, so the two modes' phase splits are comparable.
    sorter.flush_spills().expect("flush failed");
    let spill_secs = spill_start.elapsed().as_secs_f64();
    let runs = sorter.run_count();
    let spilled_bytes = sorter.stats().spilled_bytes;
    let spilled_raw_bytes = sorter.stats().spilled_raw_bytes;
    let merge_start = Instant::now();
    let mut last = 0u32;
    for (k, _) in sorter.finish().expect("finish failed") {
        debug_assert!(k >= last);
        last = k;
        std::hint::black_box(k);
    }
    let merge_secs = merge_start.elapsed().as_secs_f64();
    Phases {
        spill_secs,
        merge_secs,
        runs,
        spilled_bytes,
        spilled_raw_bytes,
        obs: probe.finish(),
    }
}

/// Measures every mode `reps` times, **interleaved** (sync, pipelined,
/// compressed, sync, ...) so drifting background load on a shared host
/// hits all modes alike, and returns the per-mode median-total reps plus
/// the median of the per-pair pipelined-vs-synchronous speedup ratios —
/// the statistically meaningful overlap estimate under noisy timing.
fn median_modes(
    input: &[(u32, u32)],
    budget: usize,
    batch: usize,
    reps: usize,
) -> (Vec<Phases>, f64, [f64; 3]) {
    let reps = reps.max(1);
    let mut mode_runs: Vec<Vec<Phases>> = MODES.iter().map(|_| Vec::with_capacity(reps)).collect();
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut io_ratios: [Vec<f64>; 3] = [
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
    ];
    let total = |p: &Phases| p.spill_secs + p.merge_secs;
    for _ in 0..reps {
        for (mi, &mode) in MODES.iter().enumerate() {
            mode_runs[mi].push(stream_sort_phases(input, budget, batch, mode));
        }
        let s = mode_runs[0].last().unwrap();
        let p = mode_runs[1].last().unwrap();
        ratios.push(total(s) / total(p));
        // Pair each blocking cell with the batched run of the same spill
        // mode from the *same rep* (cells i and i + 3).
        for (mi, r) in io_ratios.iter_mut().enumerate() {
            r.push(total(mode_runs[mi].last().unwrap()) / total(mode_runs[mi + 3].last().unwrap()));
        }
    }
    let median = |mut v: Vec<Phases>| -> Phases {
        v.sort_by(|a, b| total(a).partial_cmp(&total(b)).unwrap());
        v.swap_remove(v.len() / 2)
    };
    let median_f = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let ratio = median_f(ratios);
    let io_medians = io_ratios.map(median_f);
    (
        mode_runs.into_iter().map(median).collect(),
        ratio,
        io_medians,
    )
}

fn write_json(path: &str, n: usize, batch: usize, threads: usize, rows: &[Measurement]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|m| {
            let extra = format!(
                "{}{}{}",
                match m.pipe_sync_ratio {
                    Some(r) => format!(", \"pipe_sync_ratio\": {r:.3}"),
                    None => String::new(),
                },
                match m.io_ratio {
                    Some(r) => format!(", \"io_blk_bat_ratio\": {r:.3}"),
                    None => String::new(),
                },
                obs_json_fields(&m.obs),
            );
            let comp_ratio = if m.spilled_bytes > 0 {
                m.spilled_raw_bytes as f64 / m.spilled_bytes as f64
            } else {
                1.0
            };
            format!(
                "{{\"dist\": \"{}\", \"mode\": \"{}\", \"spill_io\": \"{}\", \"budget\": \"{}\", \"budget_bytes\": {}, \"runs\": {}, \"spilled_bytes\": {}, \"spilled_raw_bytes\": {}, \"comp_ratio\": {comp_ratio:.3}, \"spill_secs\": {:.6}, \"merge_secs\": {:.6}, \"secs\": {:.6}, \"records_per_sec\": {:.1}{}}}",
                json_escape(&m.dist),
                m.mode,
                m.spill_io,
                json_escape(&m.budget_label),
                m.budget_bytes,
                m.runs,
                m.spilled_bytes,
                m.spilled_raw_bytes,
                m.spill_secs,
                m.merge_secs,
                m.secs,
                m.records_per_sec,
                extra,
            )
        })
        .collect();
    write_bench_json(
        path,
        "stream_throughput",
        &[
            ("n", n.to_string()),
            ("batch", batch.to_string()),
            ("threads", threads.to_string()),
        ],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    // Checking for the flag itself (not the default value) keeps an
    // explicit `--n 10000000` honest.
    let n = if std::env::args().any(|a| a == "--n") {
        args.n
    } else {
        2_000_000
    };
    let batch = 64 * 1024;
    let record_bytes = std::mem::size_of::<(u32, u32)>();
    let data_bytes = n * record_bytes;
    // From "everything in memory" down to an eighth of the dataset.  The
    // budget is split into spill shares (buffer, scratch, in-flight runs),
    // so 8·data is the comfortably spill-free configuration in both modes.
    let budgets = [
        ("mem", 8 * data_bytes),
        ("1/2", data_bytes / 2),
        ("1/4", data_bytes / 4),
        ("1/8", data_bytes / 8),
    ];
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
        Distribution::Uniform { distinct: 10 },
    ];
    println!(
        "Streaming sorter throughput — n = {n}, batch = {batch}, {} threads",
        rayon::current_num_threads()
    );
    let mut all = Vec::new();
    for dist in &instances {
        println!("\n=== {} ===", dist.label());
        let input = workloads::dist::generate_pairs_u32(dist, n, 42);
        let mut table = Table::new(vec![
            "budget".to_string(),
            "mode".to_string(),
            "io".to_string(),
            "runs".to_string(),
            "spill MiB".to_string(),
            "comp".to_string(),
            "spill s".to_string(),
            "merge s".to_string(),
            "sec".to_string(),
            "Mrec/s".to_string(),
            "pipe/sync".to_string(),
            "blk/bat".to_string(),
        ]);
        // In-memory baseline for context.
        let base = median_time_secs(&input, args.reps, |v| dtsort::sort_pairs(v));
        table.add_row(vec![
            "dtsort".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{base:.4}"),
            format!("{:.2}", n as f64 / base / 1e6),
            "-".to_string(),
            "-".to_string(),
        ]);
        for &(label, budget) in &budgets {
            let (medians, ratio, io_medians) = median_modes(&input, budget, batch, args.reps);
            for (mi, (mode, p)) in MODES.iter().zip(&medians).enumerate() {
                let pair_ratio =
                    (mode.name == "pipelined" && mode.io == SpillIoMode::Blocking).then_some(ratio);
                let ratio_cell = match pair_ratio {
                    Some(r) => format!("{r:.2}x"),
                    None => "-".to_string(),
                };
                // Batched rows carry the blocking/batched ratio of their
                // spill mode (cells pair as i and i + 3).
                let io_ratio =
                    (mode.io == SpillIoMode::Batched).then(|| io_medians[mi - MODES.len() / 2]);
                let io_ratio_cell = match io_ratio {
                    Some(r) => format!("{r:.2}x"),
                    None => "-".to_string(),
                };
                let comp_cell = if p.spilled_bytes > 0 && p.spilled_raw_bytes != p.spilled_bytes {
                    format!(
                        "{:.2}x",
                        p.spilled_raw_bytes as f64 / p.spilled_bytes as f64
                    )
                } else {
                    "-".to_string()
                };
                let secs = p.spill_secs + p.merge_secs;
                let rps = n as f64 / secs;
                table.add_row(vec![
                    label.to_string(),
                    mode.name.to_string(),
                    io_label(mode.io).to_string(),
                    format!("{}", p.runs),
                    format!("{:.1}", p.spilled_bytes as f64 / (1 << 20) as f64),
                    comp_cell,
                    format!("{:.4}", p.spill_secs),
                    format!("{:.4}", p.merge_secs),
                    format!("{secs:.4}"),
                    format!("{:.2}", rps / 1e6),
                    ratio_cell,
                    io_ratio_cell,
                ]);
                all.push(Measurement {
                    dist: dist.label(),
                    mode: mode.name,
                    spill_io: io_label(mode.io),
                    budget_label: label.to_string(),
                    budget_bytes: budget,
                    runs: p.runs,
                    spilled_bytes: p.spilled_bytes,
                    spilled_raw_bytes: p.spilled_raw_bytes,
                    spill_secs: p.spill_secs,
                    merge_secs: p.merge_secs,
                    secs,
                    records_per_sec: rps,
                    pipe_sync_ratio: pair_ratio,
                    io_ratio,
                    obs: p.obs,
                });
            }
        }
        table.print();
    }
    write_json(
        "BENCH_stream.json",
        n,
        batch,
        rayon::current_num_threads(),
        &all,
    );
    write_obs_artifacts("stream");
}
