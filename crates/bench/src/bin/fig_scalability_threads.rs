//! Reproduces **Fig. 4(e)** and the appendix **Figs. 5–20**: self-speedup of
//! every algorithm as the thread count grows, on a representative heavy and
//! light instance of each distribution family.
//!
//! On the paper's 96-core machine the sweep goes up to 192 hyper-threads;
//! here the sweep always includes `{1, 2, 4}` workers (the work-stealing
//! pool happily runs more workers than cores — oversubscription on a small
//! host is visible in the recorded `host_cpus`) and extends toward the
//! host's logical CPU count (or `--threads` to force a larger cap).
//!
//! Beyond the console tables, results are written as machine-readable JSON
//! to `BENCH_scalability.json` in the current directory so successive PRs
//! can track the parallel-speedup trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_scalability_threads -- [--n 1e7] [--bits 32] [--reps 3] [--threads 8]`

use bench::experiments::measure_with_threads;
use bench::{json_escape, write_bench_json, Args, SorterKind, Table};
use workloads::dist::Distribution;

/// Thread counts to sweep: always 1, 2 and 4 (the determinism matrix and
/// the acceptance speedup are defined on those), plus powers up to `cap`.
fn thread_counts(cap: usize) -> Vec<usize> {
    let mut v = vec![1usize, 2, 4];
    for &t in &[8usize, 16, 24, 48, 96, 192] {
        if t <= cap {
            v.push(t);
        }
    }
    if cap > 4 && !v.contains(&cap) {
        v.push(cap);
    }
    v.sort_unstable();
    v.dedup();
    v
}

struct Measurement {
    dist: String,
    sorter: &'static str,
    threads: usize,
    secs: f64,
    speedup_vs_1: f64,
}

fn write_json(path: &str, n: usize, bits: u32, host_cpus: usize, rows: &[Measurement]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "{{\"dist\": \"{}\", \"sorter\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \"speedup_vs_1\": {:.3}}}",
                json_escape(&m.dist),
                m.sorter,
                m.threads,
                m.secs,
                m.speedup_vs_1,
            )
        })
        .collect();
    write_bench_json(
        path,
        "scalability_threads",
        &[
            ("n", n.to_string()),
            ("bits", bits.to_string()),
            ("host_cpus", host_cpus.to_string()),
        ],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cap = if args.threads > 0 {
        args.threads
    } else {
        host_cpus
    };
    let counts = thread_counts(cap);
    let sorters = SorterKind::table3_lineup();
    let instances = vec![
        Distribution::Uniform {
            distinct: 10_000_000,
        },
        Distribution::Uniform { distinct: 1_000 },
        Distribution::Exponential { lambda: 2.0 },
        Distribution::Exponential { lambda: 7.0 },
        Distribution::Zipfian { s: 0.8 },
        Distribution::Zipfian { s: 1.2 },
        Distribution::BitExponential { t: 30.0 },
        Distribution::BitExponential { t: 100.0 },
    ];
    println!(
        "Figs. 4(e), 5-20 reproduction — self-speedup vs thread count (n = {}, {}-bit keys, host has {host_cpus} logical CPUs)",
        args.n, args.bits,
    );
    let mut all: Vec<Measurement> = Vec::new();
    for dist in &instances {
        println!("\n=== {} ===", dist.label());
        let mut headers = vec!["Threads".to_string()];
        headers.extend(sorters.iter().map(|s| s.name().to_string()));
        let mut time_table = Table::new(headers.clone());
        let mut speedup_table = Table::new(headers);
        let mut base: Vec<f64> = Vec::new();
        for &t in &counts {
            let times = measure_with_threads(dist, args.n, args.bits, args.reps, t, &sorters, 42);
            if base.is_empty() {
                base = times.clone();
            }
            let mut trow = vec![format!("{t}")];
            let mut srow = vec![format!("{t}")];
            for (i, &x) in times.iter().enumerate() {
                let speedup = base[i] / x.max(1e-12);
                trow.push(format!("{x:.3}"));
                srow.push(format!("{speedup:.2}"));
                all.push(Measurement {
                    dist: dist.label(),
                    sorter: sorters[i].name(),
                    threads: t,
                    secs: x,
                    speedup_vs_1: speedup,
                });
            }
            time_table.add_row(trow);
            speedup_table.add_row(srow);
        }
        println!("-- running time (s) --");
        time_table.print();
        println!("-- self-speedup (relative to 1 thread) --");
        speedup_table.print();
    }
    write_json("BENCH_scalability.json", args.n, args.bits, host_cpus, &all);
}
