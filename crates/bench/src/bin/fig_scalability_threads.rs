//! Reproduces **Fig. 4(e)** and the appendix **Figs. 5–20**: self-speedup of
//! every algorithm as the thread count grows, on a representative heavy and
//! light instance of each distribution family.
//!
//! On the paper's 96-core machine the sweep goes up to 192 hyper-threads;
//! here the sweep is capped at the number of logical CPUs of the host
//! (pass `--threads` to force a larger cap and observe oversubscription).
//!
//! Usage: `cargo run -p bench --release --bin fig_scalability_threads -- [--n 1e7] [--bits 32] [--reps 3]`

use bench::experiments::measure_with_threads;
use bench::{Args, SorterKind, Table};
use workloads::dist::Distribution;

fn thread_counts(max_threads: usize) -> Vec<usize> {
    let mut v = vec![1usize, 2, 4, 8, 16, 24, 48, 96, 192];
    v.retain(|&t| t <= max_threads.max(1));
    if !v.contains(&max_threads) && max_threads > 1 {
        v.push(max_threads);
    }
    v
}

fn main() {
    let args = Args::parse();
    let max_threads = if args.threads > 0 {
        args.threads
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    let counts = thread_counts(max_threads);
    let sorters = SorterKind::table3_lineup();
    let instances = vec![
        Distribution::Uniform {
            distinct: 10_000_000,
        },
        Distribution::Uniform { distinct: 1_000 },
        Distribution::Exponential { lambda: 2.0 },
        Distribution::Exponential { lambda: 7.0 },
        Distribution::Zipfian { s: 0.8 },
        Distribution::Zipfian { s: 1.2 },
        Distribution::BitExponential { t: 30.0 },
        Distribution::BitExponential { t: 100.0 },
    ];
    println!(
        "Figs. 4(e), 5-20 reproduction — self-speedup vs thread count (n = {}, {}-bit keys, host has {} logical CPUs)",
        args.n,
        args.bits,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for dist in &instances {
        println!("\n=== {} ===", dist.label());
        let mut headers = vec!["Threads".to_string()];
        headers.extend(sorters.iter().map(|s| s.name().to_string()));
        let mut time_table = Table::new(headers.clone());
        let mut speedup_table = Table::new(headers);
        let mut base: Vec<f64> = Vec::new();
        for &t in &counts {
            let times = measure_with_threads(dist, args.n, args.bits, args.reps, t, &sorters, 42);
            if base.is_empty() {
                base = times.clone();
            }
            let mut trow = vec![format!("{t}")];
            let mut srow = vec![format!("{t}")];
            for (i, &x) in times.iter().enumerate() {
                trow.push(format!("{x:.3}"));
                srow.push(format!("{:.2}", base[i] / x.max(1e-12)));
            }
            time_table.add_row(trow);
            speedup_table.add_row(srow);
        }
        println!("-- running time (s) --");
        time_table.print();
        println!("-- self-speedup (relative to 1 thread) --");
        speedup_table.print();
    }
}
