//! Variable-length value streaming throughput: records/sec and payload
//! MB/sec of `stream::StreamSorter<u64, String>` across payload-size
//! classes and memory budgets, against the fixed-size pod-value sorter on
//! the same keys (which isolates the cost of the length-prefixed format).
//!
//! Beyond the console table, results are appended as machine-readable JSON
//! to `BENCH_varlen.json` in the current directory so successive PRs can
//! track the perf trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_varlen_throughput -- [--n 3e5] [--reps 3]`

use bench::{json_escape, median_time_secs, write_bench_json, Args, Table};
use dtsort::StreamConfig;
use stream::StreamSorter;
use workloads::dist::Distribution;
use workloads::generate_string_pairs;

struct Measurement {
    dist: String,
    payload: String,
    budget_label: String,
    budget_bytes: usize,
    runs: usize,
    spilled_bytes: u64,
    secs: f64,
    records_per_sec: f64,
    payload_mb_per_sec: f64,
}

/// Pushes the string input in batches and drains the merged stream;
/// returns the run count and spilled bytes of the last repetition.
fn stream_sort_strings_once(
    input: &[(u64, String)],
    budget: usize,
    batch: usize,
    out_stats: &mut (usize, u64),
) {
    let mut sorter: StreamSorter<u64, String> =
        StreamSorter::with_config(StreamConfig::with_memory_budget(budget));
    for chunk in input.chunks(batch) {
        sorter.push(chunk).expect("push failed");
    }
    *out_stats = (sorter.run_count(), sorter.stats().spilled_bytes);
    let mut last = 0u64;
    for (k, v) in sorter.finish().expect("finish failed") {
        debug_assert!(k >= last);
        last = k;
        std::hint::black_box(v.len());
    }
}

fn write_json(path: &str, n: usize, batch: usize, threads: usize, rows: &[Measurement]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "{{\"dist\": \"{}\", \"payload\": \"{}\", \"budget\": \"{}\", \"budget_bytes\": {}, \"runs\": {}, \"spilled_bytes\": {}, \"secs\": {:.6}, \"records_per_sec\": {:.1}, \"payload_mb_per_sec\": {:.2}}}",
                json_escape(&m.dist),
                json_escape(&m.payload),
                json_escape(&m.budget_label),
                m.budget_bytes,
                m.runs,
                m.spilled_bytes,
                m.secs,
                m.records_per_sec,
                m.payload_mb_per_sec,
            )
        })
        .collect();
    write_bench_json(
        path,
        "varlen_throughput",
        &[
            ("n", n.to_string()),
            ("batch", batch.to_string()),
            ("threads", threads.to_string()),
        ],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    // Strings are far heavier per record than pod values; default to a
    // smaller instance than the pod-value benches.  Checking for the flag
    // itself (not the default value) keeps an explicit `--n 10000000`
    // honest.
    let n = if std::env::args().any(|a| a == "--n") {
        args.n
    } else {
        300_000
    };
    let batch = 16 * 1024;
    // Payload-size classes: short tags, URL-ish, log-line-ish.
    let payloads = [
        ("8-16B", 8usize, 16usize),
        ("32-128B", 32, 128),
        ("256-1KiB", 256, 1024),
    ];
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
    ];
    println!(
        "Variable-length streaming sorter throughput — n = {n}, batch = {batch}, {} threads",
        rayon::current_num_threads()
    );
    let mut all = Vec::new();
    for dist in &instances {
        for &(plabel, min_len, max_len) in &payloads {
            let input = generate_string_pairs(dist, n, 32, 42, min_len, max_len);
            let payload_bytes: usize = input.iter().map(|(_, v)| v.len()).sum();
            let data_bytes = payload_bytes + input.len() * 12;
            println!(
                "\n=== {} · payload {plabel} ({} MiB on disk) ===",
                dist.label(),
                data_bytes >> 20
            );
            let mut table = Table::new(vec![
                "budget".to_string(),
                "runs".to_string(),
                "spill MiB".to_string(),
                "sec".to_string(),
                "Mrec/s".to_string(),
                "MB/s".to_string(),
            ]);
            // Pod-value baseline on the same keys: the varlen overhead is
            // the gap between this row and the in-memory string row.
            let keys: Vec<(u64, u64)> = input.iter().map(|(k, _)| (*k, 0u64)).collect();
            let base = median_time_secs(&keys, args.reps, |v| {
                let mut s: StreamSorter<u64, u64> =
                    StreamSorter::with_config(StreamConfig::with_memory_budget(4 * data_bytes));
                s.push(v).expect("push");
                for r in s.finish().expect("finish") {
                    std::hint::black_box(r);
                }
            });
            table.add_row(vec![
                "pod-keys".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("{base:.4}"),
                format!("{:.2}", n as f64 / base / 1e6),
                "-".to_string(),
            ]);
            // From "everything in memory" down to an eighth of the dataset.
            let budgets = [
                ("mem", 4 * data_bytes),
                ("1/4", data_bytes / 4),
                ("1/8", data_bytes / 8),
            ];
            for &(blabel, budget) in &budgets {
                let mut stats = (0usize, 0u64);
                let secs = median_time_secs(&input, args.reps, |v| {
                    stream_sort_strings_once(v, budget, batch, &mut stats)
                });
                let rps = n as f64 / secs;
                let mbps = payload_bytes as f64 / secs / 1e6;
                table.add_row(vec![
                    blabel.to_string(),
                    format!("{}", stats.0),
                    format!("{:.1}", stats.1 as f64 / (1 << 20) as f64),
                    format!("{secs:.4}"),
                    format!("{:.2}", rps / 1e6),
                    format!("{mbps:.1}"),
                ]);
                all.push(Measurement {
                    dist: dist.label(),
                    payload: plabel.to_string(),
                    budget_label: blabel.to_string(),
                    budget_bytes: budget,
                    runs: stats.0,
                    spilled_bytes: stats.1,
                    secs,
                    records_per_sec: rps,
                    payload_mb_per_sec: mbps,
                });
            }
            table.print();
        }
    }
    write_json(
        "BENCH_varlen.json",
        n,
        batch,
        rayon::current_num_threads(),
        &all,
    );
}
