//! Variable-length value streaming throughput: records/sec and payload
//! MB/sec of `stream::StreamSorter<u64, String>` across payload-size
//! classes and memory budgets, against the fixed-size pod-value sorter on
//! the same keys (which isolates the cost of the length-prefixed format).
//! Spill-bound rows are measured in three spill modes — **synchronous**
//! (`StreamConfig::synchronous_spill`), **pipelined** (background writer +
//! read-ahead, the default) and **compressed** (pipelined +
//! `SpillCompression::DeltaLz`) — with the spill-phase wall time, bytes
//! written and achieved compression ratio reported per row.  Each mode is
//! additionally measured under **both spill I/O backends**
//! (`StreamConfig::spill_io`), paired per rep so the reported
//! blocking-vs-batched ratio is a median of same-rep pairs.
//!
//! A final **web-log sessionization** section exercises the string-*key*
//! engines end to end: a synthetic web log (`workloads::strings`) is
//! sorted by session key (`StringStreamSorter`) and aggregated into
//! per-session byte totals (`StringStreamGroupBy`), under both spill
//! encodings, reporting the on-disk reduction the prefix-heavy keys get
//! from the delta/LZ block format.
//!
//! Beyond the console table, results are appended as machine-readable JSON
//! to `BENCH_varlen.json` in the current directory so successive PRs can
//! track the perf trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_varlen_throughput -- [--n 3e5] [--reps 3]`

use bench::{
    json_escape, median_time_secs, obs_json_fields, write_bench_json, write_obs_artifacts, Args,
    ObsPhaseDeltas, ObsProbe, Table,
};
use dtsort::{SpillCompression, SpillIoMode, StreamConfig};
use std::time::Instant;
use stream::{StreamSorter, StringStreamGroupBy, StringStreamSorter, SumAgg};
use workloads::dist::Distribution;
use workloads::{generate_string_pairs, generate_weblog_records};

struct Measurement {
    dist: String,
    payload: String,
    mode: &'static str,
    spill_io: &'static str,
    budget_label: String,
    budget_bytes: usize,
    runs: usize,
    spilled_bytes: u64,
    spilled_raw_bytes: u64,
    spill_secs: f64,
    merge_secs: f64,
    secs: f64,
    records_per_sec: f64,
    payload_mb_per_sec: f64,
    /// Median of paired pipelined-vs-synchronous speedups (pipelined rows
    /// only).
    pipe_sync_ratio: Option<f64>,
    /// Median of paired blocking-vs-batched speedups for the same spill
    /// mode (batched rows only).
    io_ratio: Option<f64>,
    /// Phase-time deltas from the obs registry (zero unless `OBS_TRACE=1`).
    obs: ObsPhaseDeltas,
}

/// One (spill mode, I/O backend) cell of the measurement matrix.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    sync: bool,
    compression: SpillCompression,
    io: SpillIoMode,
}

/// The three spill modes under the blocking backend first, then the same
/// three under the batched backend; `median_modes` pairs cell `i` with
/// cell `i + 3` for the per-rep blocking-vs-batched ratio.
const MODES: [Mode; 6] = [
    Mode {
        name: "synchronous",
        sync: true,
        compression: SpillCompression::Off,
        io: SpillIoMode::Blocking,
    },
    Mode {
        name: "pipelined",
        sync: false,
        compression: SpillCompression::Off,
        io: SpillIoMode::Blocking,
    },
    Mode {
        name: "compressed",
        sync: false,
        compression: SpillCompression::DeltaLz,
        io: SpillIoMode::Blocking,
    },
    Mode {
        name: "synchronous",
        sync: true,
        compression: SpillCompression::Off,
        io: SpillIoMode::Batched,
    },
    Mode {
        name: "pipelined",
        sync: false,
        compression: SpillCompression::Off,
        io: SpillIoMode::Batched,
    },
    Mode {
        name: "compressed",
        sync: false,
        compression: SpillCompression::DeltaLz,
        io: SpillIoMode::Batched,
    },
];

fn io_label(io: SpillIoMode) -> &'static str {
    match io {
        SpillIoMode::Blocking => "blocking",
        SpillIoMode::Batched => "batched",
    }
}

struct Phases {
    spill_secs: f64,
    merge_secs: f64,
    runs: usize,
    spilled_bytes: u64,
    spilled_raw_bytes: u64,
    obs: ObsPhaseDeltas,
}

/// One full string streaming sort, phase-timed (pushes + flush vs finish +
/// drain).
fn stream_sort_strings_phases(
    input: &[(u64, String)],
    budget: usize,
    batch: usize,
    mode: Mode,
) -> Phases {
    let cfg = StreamConfig {
        memory_budget_bytes: budget,
        synchronous_spill: mode.sync,
        spill_compression: mode.compression,
        spill_io: mode.io,
        ..StreamConfig::default()
    };
    let mut sorter: StreamSorter<u64, String> = StreamSorter::with_config(cfg);
    let probe = ObsProbe::start();
    let spill_start = Instant::now();
    for chunk in input.chunks(batch) {
        sorter.push(chunk).expect("push failed");
    }
    sorter.flush_spills().expect("flush failed");
    let spill_secs = spill_start.elapsed().as_secs_f64();
    let runs = sorter.run_count();
    let spilled_bytes = sorter.stats().spilled_bytes;
    let spilled_raw_bytes = sorter.stats().spilled_raw_bytes;
    let merge_start = Instant::now();
    let mut last = 0u64;
    for (k, v) in sorter.finish().expect("finish failed") {
        debug_assert!(k >= last);
        last = k;
        std::hint::black_box(v.len());
    }
    let merge_secs = merge_start.elapsed().as_secs_f64();
    Phases {
        spill_secs,
        merge_secs,
        runs,
        spilled_bytes,
        spilled_raw_bytes,
        obs: probe.finish(),
    }
}

/// Measures every mode `reps` times, interleaved (so drifting background
/// load hits all alike), returning the per-mode median-total reps and the
/// median of the per-pair pipelined-vs-synchronous speedup ratios.
fn median_modes(
    input: &[(u64, String)],
    budget: usize,
    batch: usize,
    reps: usize,
) -> (Vec<Phases>, f64, [f64; 3]) {
    let reps = reps.max(1);
    let mut mode_runs: Vec<Vec<Phases>> = MODES.iter().map(|_| Vec::with_capacity(reps)).collect();
    let mut ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut io_ratios: [Vec<f64>; 3] = [
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
        Vec::with_capacity(reps),
    ];
    let total = |p: &Phases| p.spill_secs + p.merge_secs;
    for _ in 0..reps {
        for (mi, &mode) in MODES.iter().enumerate() {
            mode_runs[mi].push(stream_sort_strings_phases(input, budget, batch, mode));
        }
        let s = mode_runs[0].last().unwrap();
        let p = mode_runs[1].last().unwrap();
        ratios.push(total(s) / total(p));
        // Pair each blocking cell with the batched run of the same spill
        // mode from the *same rep* (cells i and i + 3).
        for (mi, r) in io_ratios.iter_mut().enumerate() {
            r.push(total(mode_runs[mi].last().unwrap()) / total(mode_runs[mi + 3].last().unwrap()));
        }
    }
    let median = |mut v: Vec<Phases>| -> Phases {
        v.sort_by(|a, b| total(a).partial_cmp(&total(b)).unwrap());
        v.swap_remove(v.len() / 2)
    };
    let median_f = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let ratio = median_f(ratios);
    let io_medians = io_ratios.map(median_f);
    (
        mode_runs.into_iter().map(median).collect(),
        ratio,
        io_medians,
    )
}

fn write_json(path: &str, n: usize, batch: usize, threads: usize, rows: &[Measurement]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|m| {
            let extra = format!(
                "{}{}{}",
                match m.pipe_sync_ratio {
                    Some(r) => format!(", \"pipe_sync_ratio\": {r:.3}"),
                    None => String::new(),
                },
                match m.io_ratio {
                    Some(r) => format!(", \"io_blk_bat_ratio\": {r:.3}"),
                    None => String::new(),
                },
                obs_json_fields(&m.obs),
            );
            let comp_ratio = if m.spilled_bytes > 0 {
                m.spilled_raw_bytes as f64 / m.spilled_bytes as f64
            } else {
                1.0
            };
            format!(
                "{{\"dist\": \"{}\", \"payload\": \"{}\", \"mode\": \"{}\", \"spill_io\": \"{}\", \"budget\": \"{}\", \"budget_bytes\": {}, \"runs\": {}, \"spilled_bytes\": {}, \"spilled_raw_bytes\": {}, \"comp_ratio\": {comp_ratio:.3}, \"spill_secs\": {:.6}, \"merge_secs\": {:.6}, \"secs\": {:.6}, \"records_per_sec\": {:.1}, \"payload_mb_per_sec\": {:.2}{}}}",
                json_escape(&m.dist),
                json_escape(&m.payload),
                m.mode,
                m.spill_io,
                json_escape(&m.budget_label),
                m.budget_bytes,
                m.runs,
                m.spilled_bytes,
                m.spilled_raw_bytes,
                m.spill_secs,
                m.merge_secs,
                m.secs,
                m.records_per_sec,
                m.payload_mb_per_sec,
                extra,
            )
        })
        .collect();
    write_bench_json(
        path,
        "varlen_throughput",
        &[
            ("n", n.to_string()),
            ("batch", batch.to_string()),
            ("threads", threads.to_string()),
        ],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    // Strings are far heavier per record than pod values; default to a
    // smaller instance than the pod-value benches.  Checking for the flag
    // itself (not the default value) keeps an explicit `--n 10000000`
    // honest.
    let n = if std::env::args().any(|a| a == "--n") {
        args.n
    } else {
        300_000
    };
    let batch = 16 * 1024;
    // Payload-size classes: short tags, URL-ish, log-line-ish.
    let payloads = [
        ("8-16B", 8usize, 16usize),
        ("32-128B", 32, 128),
        ("256-1KiB", 256, 1024),
    ];
    let instances = vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
    ];
    println!(
        "Variable-length streaming sorter throughput — n = {n}, batch = {batch}, {} threads",
        rayon::current_num_threads()
    );
    let mut all = Vec::new();
    for dist in &instances {
        for &(plabel, min_len, max_len) in &payloads {
            let input = generate_string_pairs(dist, n, 32, 42, min_len, max_len);
            let payload_bytes: usize = input.iter().map(|(_, v)| v.len()).sum();
            let data_bytes = payload_bytes + input.len() * 12;
            println!(
                "\n=== {} · payload {plabel} ({} MiB on disk) ===",
                dist.label(),
                data_bytes >> 20
            );
            let mut table = Table::new(vec![
                "budget".to_string(),
                "mode".to_string(),
                "io".to_string(),
                "runs".to_string(),
                "spill MiB".to_string(),
                "spill s".to_string(),
                "sec".to_string(),
                "Mrec/s".to_string(),
                "MB/s".to_string(),
                "pipe/sync".to_string(),
                "blk/bat".to_string(),
            ]);
            // Pod-value baseline on the same keys: the varlen overhead is
            // the gap between this row and the in-memory string row.
            let keys: Vec<(u64, u64)> = input.iter().map(|(k, _)| (*k, 0u64)).collect();
            let base = median_time_secs(&keys, args.reps, |v| {
                let mut s: StreamSorter<u64, u64> =
                    StreamSorter::with_config(StreamConfig::with_memory_budget(8 * data_bytes));
                s.push(v).expect("push");
                for r in s.finish().expect("finish") {
                    std::hint::black_box(r);
                }
            });
            table.add_row(vec![
                "pod-keys".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("{base:.4}"),
                format!("{:.2}", n as f64 / base / 1e6),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            // From "everything in memory" down to an eighth of the dataset.
            let budgets = [
                ("mem", 8 * data_bytes),
                ("1/4", data_bytes / 4),
                ("1/8", data_bytes / 8),
            ];
            for &(blabel, budget) in &budgets {
                let (medians, ratio, io_medians) = median_modes(&input, budget, batch, args.reps);
                for (mi, (mode, p)) in MODES.iter().zip(&medians).enumerate() {
                    let pair_ratio = (mode.name == "pipelined" && mode.io == SpillIoMode::Blocking)
                        .then_some(ratio);
                    let ratio_cell = match pair_ratio {
                        Some(r) => format!("{r:.2}x"),
                        None => "-".to_string(),
                    };
                    let io_ratio =
                        (mode.io == SpillIoMode::Batched).then(|| io_medians[mi - MODES.len() / 2]);
                    let io_ratio_cell = match io_ratio {
                        Some(r) => format!("{r:.2}x"),
                        None => "-".to_string(),
                    };
                    let secs = p.spill_secs + p.merge_secs;
                    let rps = n as f64 / secs;
                    let mbps = payload_bytes as f64 / secs / 1e6;
                    table.add_row(vec![
                        blabel.to_string(),
                        mode.name.to_string(),
                        io_label(mode.io).to_string(),
                        format!("{}", p.runs),
                        format!("{:.1}", p.spilled_bytes as f64 / (1 << 20) as f64),
                        format!("{:.4}", p.spill_secs),
                        format!("{secs:.4}"),
                        format!("{:.2}", rps / 1e6),
                        format!("{mbps:.1}"),
                        ratio_cell,
                        io_ratio_cell,
                    ]);
                    all.push(Measurement {
                        dist: dist.label(),
                        payload: plabel.to_string(),
                        mode: mode.name,
                        spill_io: io_label(mode.io),
                        budget_label: blabel.to_string(),
                        budget_bytes: budget,
                        runs: p.runs,
                        spilled_bytes: p.spilled_bytes,
                        spilled_raw_bytes: p.spilled_raw_bytes,
                        spill_secs: p.spill_secs,
                        merge_secs: p.merge_secs,
                        secs,
                        records_per_sec: rps,
                        payload_mb_per_sec: mbps,
                        pipe_sync_ratio: pair_ratio,
                        io_ratio,
                        obs: p.obs,
                    });
                }
            }
            table.print();
        }
    }
    all.extend(weblog_sessionization(n, batch, args.reps));
    write_json(
        "BENCH_varlen.json",
        n,
        batch,
        rayon::current_num_threads(),
        &all,
    );
    write_obs_artifacts("varlen");
}

/// Web-log sessionization on the string-key engines: sort the log by
/// session key, and aggregate per-session payload bytes — under both
/// spill encodings, at a budget that forces heavy spilling.  The
/// prefix-heavy session keys are the reference workload for the delta/LZ
/// spill blocks, and the `comp_ratio` of these rows is the headline
/// bytes-on-disk reduction.
fn weblog_sessionization(n: usize, batch: usize, reps: usize) -> Vec<Measurement> {
    let dist = Distribution::Zipfian { s: 1.1 };
    let log = generate_weblog_records(&dist, n, 32, 42);
    let payload_bytes: usize = log.iter().map(|(k, v)| k.len() + v.len()).sum();
    let budget = (payload_bytes / 8).max(64 << 10);
    println!(
        "\n=== web-log sessionization · {} sessions keyed by string ({} MiB of log) ===",
        log.iter()
            .map(|(k, _)| k)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        payload_bytes >> 20
    );
    let mut table = Table::new(vec![
        "job".to_string(),
        "mode".to_string(),
        "runs".to_string(),
        "spill MiB".to_string(),
        "comp".to_string(),
        "sec".to_string(),
        "Mrec/s".to_string(),
        "MB/s".to_string(),
    ]);
    let modes = [
        ("pipelined", SpillCompression::Off),
        ("compressed", SpillCompression::DeltaLz),
    ];
    let cfg = |compression| StreamConfig {
        memory_budget_bytes: budget,
        spill_compression: compression,
        // Pinned so the rows' "blocking" label stays truthful under a
        // `PISORT_SPILL_IO` override.
        spill_io: SpillIoMode::Blocking,
        ..StreamConfig::default()
    };
    let mut rows = Vec::new();
    for (job, runner) in [
        ("sort", true),   // sort the raw log by session key
        ("group", false), // per-session byte totals
    ] {
        for &(mode, compression) in &modes {
            let reps = reps.max(1);
            let mut timed: Vec<(f64, usize, u64, u64)> = (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    let (runs, bytes, raw) = if runner {
                        let mut s: StringStreamSorter<String, String> =
                            StringStreamSorter::with_config(cfg(compression));
                        for chunk in log.chunks(batch) {
                            s.push(chunk).expect("push failed");
                        }
                        let st = (
                            s.stats().spilled_runs,
                            s.stats().spilled_bytes,
                            s.stats().spilled_raw_bytes,
                        );
                        for (k, v) in s.finish().expect("finish failed") {
                            std::hint::black_box((k.len(), v.len()));
                        }
                        st
                    } else {
                        let mut g: StringStreamGroupBy<String, SumAgg> =
                            StringStreamGroupBy::with_config(SumAgg, cfg(compression));
                        for (k, v) in &log {
                            g.push_record(k.clone(), v.len() as u64)
                                .expect("push failed");
                        }
                        let st = (
                            g.stats().spilled_runs,
                            g.stats().spilled_bytes,
                            g.stats().spilled_raw_bytes,
                        );
                        for (k, total) in g.finish().expect("finish failed") {
                            std::hint::black_box((k.len(), total));
                        }
                        st
                    };
                    (start.elapsed().as_secs_f64(), runs, bytes, raw)
                })
                .collect();
            timed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let (secs, runs, spilled_bytes, spilled_raw_bytes) = timed[timed.len() / 2];
            let rps = n as f64 / secs;
            let mbps = payload_bytes as f64 / secs / 1e6;
            let comp_cell = if spilled_bytes > 0 && spilled_raw_bytes != spilled_bytes {
                format!("{:.2}x", spilled_raw_bytes as f64 / spilled_bytes as f64)
            } else {
                "-".to_string()
            };
            table.add_row(vec![
                job.to_string(),
                mode.to_string(),
                format!("{runs}"),
                format!("{:.1}", spilled_bytes as f64 / (1 << 20) as f64),
                comp_cell,
                format!("{secs:.4}"),
                format!("{:.2}", rps / 1e6),
                format!("{mbps:.1}"),
            ]);
            rows.push(Measurement {
                dist: "weblog-zipf-1.1".to_string(),
                payload: format!("weblog-{job}"),
                mode,
                spill_io: "blocking",
                budget_label: "1/8".to_string(),
                budget_bytes: budget,
                runs,
                spilled_bytes,
                spilled_raw_bytes,
                spill_secs: 0.0,
                merge_secs: 0.0,
                secs,
                records_per_sec: rps,
                payload_mb_per_sec: mbps,
                pipe_sync_ratio: None,
                io_ratio: None,
                obs: ObsPhaseDeltas::default(),
            });
        }
    }
    table.print();
    rows
}
