//! Session-completion latency of the multi-session sort service
//! (`server::SortServer`) under hundreds of interleaved bursty clients.
//!
//! A fixed population of client sessions (each a full open → push bursts →
//! finish → drain cycle over `workloads::batches`) is driven by a pool of
//! client threads at two **client-concurrency levels** (1 and 4 by
//! default).  The governor's global ceiling is sized so that concurrent
//! sessions crowd each other: every admission reclaims budget from the
//! live grants, the engines react by spilling early, and the per-session
//! completion latency absorbs both the contention and the shared
//! work-stealing pool.  Each row reports the p50 / p99 / mean session
//! latency at one concurrency level, plus total throughput, governor
//! reclaim count and durable spill volume — the service-level view the
//! per-engine throughput figures (`fig_stream_throughput`) cannot see.
//!
//! Results are appended as machine-readable JSON to `BENCH_server.json`
//! in the current directory so successive PRs can track the trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_server_latency -- [--n 2e6] [--reps 3]`

use bench::{write_bench_json, write_obs_artifacts, Args, Table};
use dtsort::StreamConfig;
use server::{AdmissionPolicy, GovernorConfig, ServerConfig, SortServer, SpillManagerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use workloads::dist::Distribution;

/// Client-thread counts of the measurement matrix.
const CLIENT_LEVELS: [usize; 2] = [1, 4];
/// Total sessions per measured run ("hundreds of clients").
const SESSIONS: usize = 200;

/// The session mix: each client cycles through these distributions, so
/// every concurrency level sees the same blend of uniform, skewed and
/// duplicate-heavy streams.
fn session_dists() -> Vec<Distribution> {
    vec![
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
        Distribution::Zipfian { s: 1.2 },
        Distribution::Uniform { distinct: 100 },
    ]
}

struct LevelResult {
    clients: usize,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    total_secs: f64,
    records_per_sec: f64,
    reclaims: u64,
    spilled_bytes: u64,
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// One full client session: open, push the batch stream in bursts, finish
/// and drain.  Returns (latency, spilled bytes).
fn run_session(
    server: &SortServer,
    id: usize,
    per_session: usize,
    batch: usize,
    request_bytes: usize,
    dists: &[Distribution],
) -> (u64, u64) {
    let dist = &dists[id % dists.len()];
    let start = Instant::now();
    let mut session = server
        .open_sort::<u32, u32>(&format!("client-{}", id % 16), request_bytes)
        .expect("admission failed");
    for (i, chunk) in
        workloads::batches::batches_u32(dist, per_session, batch, id as u64).enumerate()
    {
        session.push(&chunk).expect("push failed");
        // Bursty arrival: yield between bursts so concurrent clients
        // interleave at batch granularity rather than running to completion.
        if i % 2 == 1 {
            std::thread::yield_now();
        }
    }
    let spilled = session.stats().spilled_bytes;
    let mut last = 0u32;
    let mut n = 0usize;
    for (k, _) in session.finish().expect("finish failed") {
        debug_assert!(k >= last);
        last = k;
        n += 1;
    }
    assert_eq!(n, per_session, "session {id} lost records");
    (start.elapsed().as_nanos() as u64, spilled)
}

/// Runs the whole session population at one client-concurrency level and
/// returns the per-session latency distribution.
fn run_level(clients: usize, per_session: usize, batch: usize) -> LevelResult {
    let record_bytes = std::mem::size_of::<(u32, u32)>();
    let session_bytes = per_session * record_bytes;
    // Sized for contention: a lone session is granted its full request, but
    // a crowd shares ~2.5 sessions' worth — every admission past the second
    // reclaims budget from the live grants.
    let request_bytes = session_bytes.max(32 << 10);
    let floor = (session_bytes / 8).clamp(16 << 10, request_bytes);
    let global = (request_bytes * 5 / 2).max(8 * floor);
    let server = SortServer::new(ServerConfig {
        governor: GovernorConfig {
            global_budget_bytes: global,
            session_floor_bytes: floor,
            admission: AdmissionPolicy::Queue,
        },
        spill: SpillManagerConfig::default(),
        base: StreamConfig::default(),
    })
    .expect("server construction failed");

    let dists = session_dists();
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::with_capacity(SESSIONS));
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let id = next.fetch_add(1, Ordering::Relaxed);
                if id >= SESSIONS {
                    break;
                }
                let sample = run_session(&server, id, per_session, batch, request_bytes, &dists);
                samples.lock().unwrap().push(sample);
            });
        }
    });
    let total_secs = wall.elapsed().as_secs_f64();
    let (mut lat_ns, spilled): (Vec<u64>, Vec<u64>) =
        samples.into_inner().unwrap().into_iter().unzip();
    lat_ns.sort_unstable();
    let mean_ms = lat_ns.iter().sum::<u64>() as f64 / lat_ns.len() as f64 / 1e6;
    LevelResult {
        clients,
        p50_ms: percentile_ms(&lat_ns, 0.50),
        p99_ms: percentile_ms(&lat_ns, 0.99),
        mean_ms,
        total_secs,
        records_per_sec: (SESSIONS * per_session) as f64 / total_secs,
        reclaims: server.governor().reclaims(),
        spilled_bytes: spilled.iter().sum(),
    }
}

fn write_json(path: &str, n: usize, per_session: usize, threads: usize, rows: &[LevelResult]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\": {}, \"sessions\": {SESSIONS}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4}, \"total_secs\": {:.4}, \"records_per_sec\": {:.1}, \"reclaims\": {}, \"spilled_bytes\": {}}}",
                r.clients, r.p50_ms, r.p99_ms, r.mean_ms, r.total_secs, r.records_per_sec,
                r.reclaims, r.spilled_bytes,
            )
        })
        .collect();
    write_bench_json(
        path,
        "server_latency",
        &[
            ("n", n.to_string()),
            ("sessions", SESSIONS.to_string()),
            ("per_session", per_session.to_string()),
            ("threads", threads.to_string()),
        ],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    // Checking for the flag itself (not the default value) keeps an
    // explicit `--n 2000000` honest.
    let n = if std::env::args().any(|a| a == "--n") {
        args.n
    } else {
        2_000_000
    };
    let per_session = (n / SESSIONS).max(1);
    let batch = (per_session / 8).max(256);
    println!(
        "Sort-service session latency — {SESSIONS} sessions × {per_session} records, batch = {batch}, {} pool threads",
        rayon::current_num_threads()
    );
    let mut table = Table::new(vec![
        "clients".to_string(),
        "p50 ms".to_string(),
        "p99 ms".to_string(),
        "mean ms".to_string(),
        "total s".to_string(),
        "Mrec/s".to_string(),
        "reclaims".to_string(),
        "spill MiB".to_string(),
    ]);
    let mut rows = Vec::new();
    for &clients in &CLIENT_LEVELS {
        // Median-total rep: interleaving reps per level would thrash the
        // governor meters, so each rep is a fresh server.
        let mut reps: Vec<LevelResult> = (0..args.reps.max(1))
            .map(|_| run_level(clients, per_session, batch))
            .collect();
        reps.sort_by(|a, b| a.total_secs.partial_cmp(&b.total_secs).unwrap());
        let r = reps.swap_remove(reps.len() / 2);
        table.add_row(vec![
            format!("{}", r.clients),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.2}", r.mean_ms),
            format!("{:.3}", r.total_secs),
            format!("{:.2}", r.records_per_sec / 1e6),
            format!("{}", r.reclaims),
            format!("{:.1}", r.spilled_bytes as f64 / (1 << 20) as f64),
        ]);
        rows.push(r);
    }
    table.print();
    write_json(
        "BENCH_server.json",
        n,
        per_session,
        rayon::current_num_threads(),
        &rows,
    );
    write_obs_artifacts("server");
}
