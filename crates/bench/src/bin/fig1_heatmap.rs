//! Reproduces **Fig. 1** of the paper: a heatmap of running times relative
//! to the fastest algorithm on each of the 15 standard 32-bit distributions
//! (1.00 = fastest on that row), plus the per-algorithm geometric mean.
//!
//! Usage: `cargo run -p bench --release --bin fig1_heatmap -- [--n 1e7] [--reps 3]`

use bench::experiments::measure_distribution;
use bench::{geo_mean, print_heatmap_cell, Args, SorterKind, Table};
use workloads::dist::paper_instances;

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    let sorters = SorterKind::table3_lineup();
    println!(
        "Fig. 1 reproduction — relative running time (1.00 = fastest), n = {}, 32-bit keys, {} threads",
        args.n,
        rayon::current_num_threads()
    );
    let mut headers = vec!["Instance".to_string()];
    headers.extend(sorters.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(headers);
    let mut rel_per_sorter: Vec<Vec<f64>> = vec![Vec::new(); sorters.len()];
    for dist in paper_instances() {
        let times = measure_distribution(&dist, args.n, 32, args.reps, &sorters, args.verify, 42);
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        let mut row = vec![dist.label()];
        for (i, &t) in times.iter().enumerate() {
            rel_per_sorter[i].push(t / best);
            row.push(print_heatmap_cell(t, best));
        }
        table.add_row(row);
    }
    let mut avg_row = vec!["Avg.(geomean)".to_string()];
    for rel in &rel_per_sorter {
        avg_row.push(format!("{:5.2}", geo_mean(rel)));
    }
    table.add_row(avg_row);
    table.print();
    println!("\nPaper reference (Fig. 1, 96-core machine): Ours 1.01, PLIS 1.29, IPS2Ra 1.49, RS 1.46, PLSS 2.39, IPS4o 1.35");
}
