//! Reproduces **Fig. 4(c)(d)** of the paper: the cost of the dovetail
//! merging step.  For each representative distribution we time DTSort with
//! (1) the DTMerge algorithm, (2) the parallel-merge baseline (PLMerge), and
//! (3) the merge step skipped entirely ("Others", a lower bound that does
//! not produce fully sorted output), for 32-bit and 64-bit keys.
//!
//! Usage: `cargo run -p bench --release --bin fig4_merge_ablation -- [--n 1e7] [--reps 3]`

use bench::experiments::measure_merge_ablation;
use bench::{Args, Table};
use workloads::dist::merge_ablation_instances;

fn run(bits: u32, args: &Args) {
    println!(
        "\n=== Dovetail merge ablation, {bits}-bit keys (Fig. 4{}) ===",
        if bits == 32 { "c" } else { "d" }
    );
    let mut table = Table::new(vec![
        "Instance",
        "DTMerge(s)",
        "PLMerge(s)",
        "NoMerge(s)",
        "merge% (DT)",
        "merge% (PL)",
        "merge speedup",
    ]);
    for dist in merge_ablation_instances() {
        let (dt, pl, none) = measure_merge_ablation(&dist, args.n, bits, args.reps, 42);
        let dt_merge = (dt - none).max(0.0);
        let pl_merge = (pl - none).max(0.0);
        table.add_row(vec![
            dist.label(),
            format!("{dt:.3}"),
            format!("{pl:.3}"),
            format!("{none:.3}"),
            format!("{:.0}%", 100.0 * dt_merge / dt.max(1e-12)),
            format!("{:.0}%", 100.0 * pl_merge / pl.max(1e-12)),
            format!("{:.2}x", pl_merge / dt_merge.max(1e-12)),
        ]);
    }
    table.print();
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    println!(
        "Fig. 4(c)(d) reproduction — {} threads.  Paper reference: DTMerge accelerates the merge step by 1.7-2.8x on heavy/BExp inputs.",
        rayon::current_num_threads()
    );
    run(32, &args);
    run(64, &args);
}
