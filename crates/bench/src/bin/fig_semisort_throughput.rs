//! Semisort vs sort-then-scan throughput on the paper's key distributions.
//!
//! A group-by only needs equal keys to meet, not a total order; this
//! benchmark quantifies what dropping the order requirement buys.  For each
//! distribution it measures:
//!
//! * `sort+scan` — the classic pipeline: full DovetailSort of the records,
//!   then a linear scan for group boundaries;
//! * `semisort`  — the `semisort` engine: heavy keys to dedicated buckets,
//!   light keys to hashed buckets, per-bucket grouping only.
//!
//! Beyond the console table, results are appended as machine-readable JSON
//! to `BENCH_semisort.json` in the current directory so successive PRs can
//! track the perf trajectory.
//!
//! Usage: `cargo run -p bench --release --bin fig_semisort_throughput -- [--n 2e6] [--reps 3]`

use bench::{json_escape, median_time_secs, write_bench_json, Args, Table};
use workloads::dist::Distribution;

struct Measurement {
    dist: String,
    method: &'static str,
    groups: usize,
    secs: f64,
    records_per_sec: f64,
    speedup_vs_sort: f64,
}

/// Full sort, then scan for group boundaries (the baseline pipeline).
fn sort_then_scan(records: &mut [(u64, u64)]) -> usize {
    dtsort::sort_pairs(records);
    let mut groups = 0usize;
    for i in 0..records.len() {
        if i == 0 || records[i].0 != records[i - 1].0 {
            groups += 1;
        }
    }
    groups
}

fn write_json(path: &str, n: usize, threads: usize, rows: &[Measurement]) {
    let rendered: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "{{\"dist\": \"{}\", \"method\": \"{}\", \"groups\": {}, \"secs\": {:.6}, \"records_per_sec\": {:.1}, \"speedup_vs_sort\": {:.3}}}",
                json_escape(&m.dist),
                m.method,
                m.groups,
                m.secs,
                m.records_per_sec,
                m.speedup_vs_sort,
            )
        })
        .collect();
    write_bench_json(
        path,
        "semisort_throughput",
        &[("n", n.to_string()), ("threads", threads.to_string())],
        &rendered,
    );
}

fn main() {
    let args = Args::parse();
    args.apply_thread_limit();
    let n = if args.n == 10_000_000 {
        2_000_000
    } else {
        args.n
    };
    // Duplicate-heavy instances (where semisort should win) plus a
    // mostly-distinct control (where the two should be comparable).
    let instances = vec![
        Distribution::Uniform { distinct: 10 },
        Distribution::Uniform { distinct: 1_000 },
        Distribution::Uniform { distinct: 100_000 },
        Distribution::Zipfian { s: 1.0 },
        Distribution::Zipfian { s: 1.5 },
        Distribution::Exponential { lambda: 10.0 },
        Distribution::Uniform {
            distinct: 1_000_000_000,
        },
    ];
    println!(
        "Semisort vs sort-then-scan — n = {n}, {} threads",
        rayon::current_num_threads()
    );
    let mut all = Vec::new();
    let mut table = Table::new(vec![
        "distribution".to_string(),
        "groups".to_string(),
        "sort+scan Mrec/s".to_string(),
        "semisort Mrec/s".to_string(),
        "speedup".to_string(),
    ]);
    for dist in &instances {
        let input = workloads::dist::generate_pairs_u64(dist, n, 42);

        let mut groups_sort = 0usize;
        let sort_secs = median_time_secs(&input, args.reps, |v| {
            groups_sort = sort_then_scan(v);
        });
        let mut groups_semi = 0usize;
        let semi_secs = median_time_secs(&input, args.reps, |v| {
            groups_semi = semisort::semisort_pairs(v).len();
        });
        assert_eq!(
            groups_sort,
            groups_semi,
            "group counts must agree on {}",
            dist.label()
        );
        let speedup = sort_secs / semi_secs;
        table.add_row(vec![
            dist.label(),
            format!("{groups_semi}"),
            format!("{:.2}", n as f64 / sort_secs / 1e6),
            format!("{:.2}", n as f64 / semi_secs / 1e6),
            format!("{speedup:.2}x"),
        ]);
        all.push(Measurement {
            dist: dist.label(),
            method: "sort_then_scan",
            groups: groups_sort,
            secs: sort_secs,
            records_per_sec: n as f64 / sort_secs,
            speedup_vs_sort: 1.0,
        });
        all.push(Measurement {
            dist: dist.label(),
            method: "semisort",
            groups: groups_semi,
            secs: semi_secs,
            records_per_sec: n as f64 / semi_secs,
            speedup_vs_sort: speedup,
        });
    }
    table.print();
    write_json("BENCH_semisort.json", n, rayon::current_num_threads(), &all);
}
