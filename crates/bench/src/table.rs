//! Plain-text table and heatmap formatting for the harness binaries.
//!
//! The binaries print the same rows/columns as the paper's tables (running
//! time in seconds, fastest entry marked, geometric means per block), plus
//! Fig. 1-style relative-time heatmap cells.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut r: Vec<String> = row.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a row of timings: the minimum is marked with `*` (the paper
/// underlines the fastest entry).
pub fn format_row(label: &str, times: &[f64]) -> Vec<String> {
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mut row = vec![label.to_string()];
    for &t in times {
        let cell = if (t - min).abs() < 1e-12 {
            format!("{t:.3}*")
        } else {
            format!("{t:.3}")
        };
        row.push(cell);
    }
    row
}

/// Geometric mean of a sequence of positive values (the paper's "Avg." rows).
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a Fig. 1-style heatmap cell: the running time relative to the
/// fastest algorithm on this instance (1.00 = fastest).
pub fn print_heatmap_cell(time: f64, best: f64) -> String {
    if best <= 0.0 {
        return "  -  ".to_string();
    }
    format!("{:5.2}", time / best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["Instance", "A", "B"]);
        t.add_row(vec!["Unif-1e9", "0.500", "0.537"]);
        t.add_row(vec!["Zipf-1.5", "0.446", "0.946"]);
        let s = t.render();
        assert!(s.contains("Instance"));
        assert!(s.contains("Zipf-1.5"));
        assert_eq!(t.num_rows(), 2);
        // Every line has the same number of column separators.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn row_padding() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn format_row_marks_fastest() {
        let row = format_row("X", &[0.5, 0.4, 0.6]);
        assert_eq!(row[0], "X");
        assert!(row[2].ends_with('*'));
        assert!(!row[1].ends_with('*'));
    }

    #[test]
    fn geo_mean_matches_hand_computation() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn heatmap_cells() {
        assert_eq!(print_heatmap_cell(1.0, 1.0), " 1.00");
        assert_eq!(print_heatmap_cell(2.5, 1.0), " 2.50");
        assert_eq!(print_heatmap_cell(1.0, 0.0), "  -  ");
    }
}
